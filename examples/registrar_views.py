"""The three XML views of Figure 1 side by side, plus their static analysis.

The registrar office of Example 1.1 wants three different exports of the same
database; this example publishes all three, classifies them into the fragments
``PT(L, S, O)`` and runs the decision procedures that are available for each
class (emptiness is decidable for the CQ view, undecidable for the FO ones).

Run with::

    python examples/registrar_views.py
"""

from __future__ import annotations

from repro.analysis import UndecidableProblemError, is_empty
from repro.core import classify, publish
from repro.workloads.registrar import (
    example_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.serialize import to_compact_xml


def main() -> None:
    instance = example_registrar_instance()
    views = {
        "tau1 (Figure 1a): recursive prerequisite hierarchy": tau1_prerequisite_hierarchy(),
        "tau2 (Figure 1b): flattened prerequisite closure": tau2_prerequisite_closure(),
        "tau3 (Figure 1c): courses without a DB prerequisite": tau3_courses_without_db_prereq(),
    }

    for title, transducer in views.items():
        print("=" * 80)
        print(title)
        print(f"  fragment: {classify(transducer)}")
        try:
            verdict = is_empty(transducer)
            print(f"  emptiness: {'empty' if verdict.empty else 'non-empty'} (decidable)")
        except UndecidableProblemError as error:
            print(f"  emptiness: {error}")
        tree = publish(transducer, instance)
        print(f"  output: {tree.size()} nodes, depth {tree.depth()}")
        xml = to_compact_xml(tree)
        print(f"  {xml[:160]}{'...' if len(xml) > 160 else ''}")
    print("=" * 80)


if __name__ == "__main__":
    main()
