"""Static analysis of publishing transducers: emptiness, membership, equivalence.

Section 5 of the paper studies three compile-time questions about a view
definition.  This example demonstrates each on small transducers, including
the 3SAT gadget that makes emptiness of virtual-node transducers NP-hard.

Run with::

    python examples/static_analysis.py
"""

from __future__ import annotations

from repro.analysis import are_equivalent, is_empty, is_member
from repro.analysis.reductions import cnf, three_sat_emptiness_gadget
from repro.core import RuleQuery, classify
from repro.core.rules import RuleItem, TransductionRule
from repro.core.transducer import make_transducer
from repro.logic import parse_cq
from repro.query import plan_query
from repro.xmltree.tree import tree


def build(start: str, child: str | None = None):
    rules = [
        TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(parse_cq(start), parse_cq(start).arity)),))
    ]
    if child:
        rules.append(
            TransductionRule("q", "a", (RuleItem("q", "b", RuleQuery(parse_cq(child), parse_cq(child).arity)),))
        )
        rules.append(TransductionRule("q", "b", ()))
    else:
        rules.append(TransductionRule("q", "a", ()))
    return make_transducer(rules, start_state="q0", root_tag="r")


def main() -> None:
    print("-- emptiness -------------------------------------------------------")
    fine = build("ans(x) :- R(x, y)")
    broken = build("ans(x) :- R(x, y), x = 'a', x != 'a'")
    print(f"  satisfiable view : empty = {is_empty(fine).empty}")
    print(f"  contradictory view: empty = {is_empty(broken).empty}")

    print("-- emptiness with virtual nodes = 3SAT -----------------------------")
    satisfiable = cnf(3, [[(0, True), (1, True), (2, False)], [(0, False), (1, True), (2, True)]])
    unsatisfiable = cnf(1, [[(0, True)], [(0, False)]])
    for name, formula in (("satisfiable", satisfiable), ("unsatisfiable", unsatisfiable)):
        gadget = three_sat_emptiness_gadget(formula)
        print(
            f"  {name:13s} formula -> gadget in {classify(gadget)}, "
            f"empty = {is_empty(gadget).empty}"
        )

    print("-- membership ------------------------------------------------------")
    two_level = build("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
    target = tree("r", tree("a", "b"))
    verdict = is_member(two_level, target)
    print(f"  r(a(b)) member of tau(R)? {verdict.status.value} (witness: {verdict.witness})")

    print("-- equivalence -----------------------------------------------------")
    left = build("ans(x) :- R(x, y)")
    right = build("ans(u) :- R(u, w)")
    different = build("ans(x) :- R(x, y), x != 'a'")
    print(f"  renamed copies equivalent?   {are_equivalent(left, right).equivalent}")
    print(f"  extra selection equivalent?  {are_equivalent(left, different).equivalent}")

    print("-- query planning --------------------------------------------------")
    query = parse_cq("ans(c, t) :- Reg_prereq(cp), prereq(cp, c), course(c, t, d)")
    plan = plan_query(query)
    print("  the analyses and the engine share one planned form per rule query:")
    for line in plan.explain().splitlines():
        print(f"    {line}")
    print(f"  plan stats: {plan.operator_counts()} after {plan.executions} execution(s)")


if __name__ == "__main__":
    main()
