"""Theorem 3(2): publishing transducers as a relational query language.

A tuple-register CQ transducer, read as a relational query, is exactly linear
Datalog.  This example translates the transitive-closure LinDatalog program
into a transducer and back, and checks that all three formulations agree on a
random graph.

Run with::

    python examples/datalog_expressiveness.py
"""

from __future__ import annotations

from repro.core.relational_query import output_relation
from repro.datalog import (
    DatalogProgram,
    DatalogRule,
    evaluate_program,
    lindatalog_to_transducer,
    transducer_to_lindatalog,
)
from repro.logic.cq import RelationAtom
from repro.logic.terms import Variable
from repro.workloads.random_instances import random_graph_instance


def main() -> None:
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    program = DatalogProgram(
        [
            DatalogRule(RelationAtom("S", (x, y)), (RelationAtom("E", (x, y)),)),
            DatalogRule(
                RelationAtom("S", (x, y)),
                (RelationAtom("S", (x, z)), RelationAtom("E", (z, y))),
            ),
            DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("S", (x, y)),)),
        ]
    )
    print("LinDatalog program (transitive closure):")
    print(program)
    print()

    instance = random_graph_instance(8, 14, seed=42)
    datalog_answer = evaluate_program(program, instance)

    transducer = lindatalog_to_transducer(program)
    transducer_answer = output_relation(transducer, instance, "ao")

    back = transducer_to_lindatalog(transducer, "ao")
    round_trip_answer = evaluate_program(back, instance)

    print(f"graph: {len(instance['E'])} edges over {len(instance.active_domain())} nodes")
    print(f"datalog answer size:        {len(datalog_answer)}")
    print(f"transducer answer size:     {len(transducer_answer)}")
    print(f"round-tripped answer size:  {len(round_trip_answer)}")
    print(f"all three agree: {datalog_answer == transducer_answer == round_trip_answer}")


if __name__ == "__main__":
    main()
