"""The serving layer end to end: one server, every view, live subscribers.

A :class:`~repro.serve.server.ViewServer` is stood up over the registrar
database of Example 1.1 with the three Figure 1 views registered as
*parameterized* views (the department / banned title bound per request, the
bound constant pushed into the query plans' indexed scans).  The demo then
walks the serving feature set:

* one ``publish`` call routing output form, execution backend and
  maintenance strategy;
* MVCC snapshots: a reader pinned to the pre-update version keeps reading
  it, byte-for-byte, while commits advance the source;
* subscriptions: each commit delivers an
  :class:`~repro.xmltree.diff.EditScript` instead of a re-published
  document;
* the aggregated ``stats()`` / ``explain()`` observability.

Run with::

    python examples/serve_registrar.py
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.serve import ViewServer
from repro.workloads.registrar import (
    example_registrar_instance,
    registrar_view_suite,
)


def main() -> None:
    server = ViewServer()
    for name, (factory, params) in registrar_view_suite().items():
        server.register_view(name, factory, params=params)
    handle = server.attach(example_registrar_instance(), name="registrar")

    # -- one call, every routing axis ------------------------------------
    cs = {"department": "CS"}
    tree = server.publish("hierarchy", params=cs)  # materialised Σ-tree
    print(f"hierarchy(CS): {tree.size()} nodes")
    compact = server.publish(
        "hierarchy", params={"department": "Math"}, output="compact"
    )
    print(f"hierarchy(Math), compact: {compact}")
    columnar = server.publish(
        "closure", params=cs, output="bytes", backend="columnar"
    )
    row = server.publish("closure", params=cs, output="bytes", backend="row")
    print(f"closure(CS): columnar == row byte-for-byte: {columnar == row}")

    # -- snapshots: readers keep their version ---------------------------
    snapshot = handle.snapshot()
    before = server.publish("no_db_prereq", params={"banned_title": "Databases"}, output="bytes")
    handle.commit(Delta.insert("course", ("cs500", "Compilers", "CS")))
    handle.commit(Delta.insert("prereq", ("cs500", "cs450")))
    pinned = server.publish(
        "no_db_prereq",
        params={"banned_title": "Databases"},
        source=snapshot,
        output="bytes",
    )
    print(
        f"snapshot isolation: version {snapshot.index} reader unchanged "
        f"across {handle.version - snapshot.index} commit(s): {pinned == before}"
    )

    # -- subscriptions: ship diffs, not documents ------------------------
    subscription = server.subscribe("hierarchy", params=cs)
    handle.commit(Delta.insert("prereq", ("cs500", "cs340")))
    handle.commit(Delta.delete("prereq", ("cs240", "cs101")))
    for event in subscription:
        script = event.edits.describe() or "(view unaffected)"
        print(f"commit v{event.version} delivered {len(event.edits)} edit(s):")
        for line in script.splitlines():
            print(f"   {line[:100]}{'...' if len(line) > 100 else ''}")

    # -- aggregated observability ----------------------------------------
    print()
    print(server.stats().describe())
    print()
    print(server.explain("hierarchy", params=cs).describe())


if __name__ == "__main__":
    main()
