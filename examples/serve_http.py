"""The network tier end to end: serve, subscribe, crash, recover.

A :class:`~repro.serve.net.app.NetServerThread` is stood up on a loopback
port with a write-ahead log directory, and a :class:`~repro.serve.net.client.NetClient`
drives the whole HTTP surface:

* register the paper's ``tau1`` view and attach the registrar database as a
  *durable* source;
* publish over HTTP with ETags -- an unchanged document answers ``304 Not
  Modified`` before any evaluation work;
* subscribe over WebSocket: each commit pushes one wire-encoded
  :class:`~repro.xmltree.diff.EditScript`, which the client replays against
  its local copy of the document;
* stop the server ("crash"), start a fresh one over the same log directory,
  and verify the source resumes at the exact pre-crash version with a
  byte-identical document.

This doubles as the CI smoke test for the tier (CI runs every example).

Run with::

    python examples/serve_http.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.relational.delta import Delta
from repro.serve.net import NetClient, NetServerThread, edits_of
from repro.workloads.registrar import example_registrar_instance
from repro.xmltree.diff import tree_from_wire, trees_equal


def main() -> None:
    wal_dir = Path(tempfile.mkdtemp(prefix="repro-wal-"))

    # -- first life: serve, publish, subscribe ---------------------------
    with NetServerThread("127.0.0.1", 0, wal_dir=wal_dir) as srv:
        host, port = srv.address
        print(f"serving on http://{host}:{port}  (wal: {wal_dir})")
        client = NetClient(host, port, namespace="registrar")

        client.register_view("tau1")
        client.attach(example_registrar_instance(), name="db", durable=True)

        first = client.publish("tau1", source="db")
        print(f"GET publish -> {first.status}, version {first.version}, "
              f"etag {first.etag}, {len(first.document)} bytes")

        cached = client.publish("tau1", source="db", etag=first.etag)
        print(f"GET publish (If-None-Match) -> {cached.status} Not Modified")
        assert cached.not_modified

        with client.subscribe("tau1", source="db") as subscription:
            init = subscription.recv()
            document = tree_from_wire(init["document"])
            print(f"WS subscribe -> init at version {init['version']}")

            commits = [
                Delta.insert("course", ("CS999", "Research Topics", "CS")),
                Delta.insert("prereq", ("CS999", "CS240")),
            ]
            for delta in commits:
                out = client.commit("db", delta)
                message = subscription.recv()
                document = edits_of(message).apply(document)
                print(f"commit -> version {out['version']}, "
                      f"{len(message['edits']['edits'])} edit(s) pushed to "
                      f"{out['delivered']} subscriber(s)")

        final = client.publish("tau1", source="db")
        assert final.version == 2
        # the client's edit-replayed document tracks the server's
        with client.subscribe("tau1", source="db") as check:
            assert trees_equal(document, tree_from_wire(check.recv()["document"]))
        print("edit-replayed client document matches the served document")

    # -- second life: recover from the write-ahead log -------------------
    print("\nserver stopped; starting a fresh one over the same log ...")
    with NetServerThread("127.0.0.1", 0, wal_dir=wal_dir) as srv:
        client = NetClient(*srv.address, namespace="registrar")
        client.register_view("tau1")  # views are code; sources are replayed

        sources = client.sources()
        print(f"recovered sources: {[s['name'] for s in sources]}")
        replayed = client.publish("tau1", source="db")
        print(f"GET publish -> {replayed.status}, version {replayed.version}")
        assert replayed.version == final.version
        assert replayed.document == final.document
        print("recovered document is byte-identical at the pre-crash version")

        out = client.commit("db", Delta.insert("course", ("CS1000", "Beyond", "CS")))
        assert out["version"] == 3
        print(f"and the recovered source keeps going: version {out['version']}")


if __name__ == "__main__":
    main()
