"""Incremental maintenance: a stream of enrollment-office updates.

The registrar database of Example 1.1 is published once as the recursive
prerequisite hierarchy of Figure 1(a); afterwards the enrollment office
streams in updates -- new courses, added and dropped prerequisites, a
curriculum purge that empties the ``prereq`` relation -- and the view is
maintained delta-by-delta through :class:`~repro.incremental.IncrementalPublisher`
instead of being republished from scratch.

Every step prints the shipped :class:`~repro.xmltree.diff.EditScript` and the
engine's invalidated/retained memo counters, and the final state is verified
byte-for-byte against the full-publish oracle.

Run with::

    python examples/incremental_registrar.py
"""

from __future__ import annotations

import time

from repro.engine import compile_plan
from repro.incremental import Delta, IncrementalPublisher
from repro.workloads.registrar import (
    example_registrar_instance,
    tau1_prerequisite_hierarchy,
)

#: The update stream: one (description, Delta) event per enrollment decision.
UPDATE_STREAM = [
    (
        "new course: cs500 Compilers",
        Delta.insert("course", ("cs500", "Compilers", "CS")),
    ),
    (
        "cs500 requires cs340 and cs450",
        Delta.insert("prereq", ("cs500", "cs340"), ("cs500", "cs450")),
    ),
    (
        "cs450 now also requires cs340",
        Delta.insert("prereq", ("cs450", "cs340")),
    ),
    (
        "cs240 no longer requires cs101",
        Delta.delete("prereq", ("cs240", "cs101")),
    ),
    (
        "math101 is retired",
        Delta.delete("course", ("math101", "Calculus", "Math")),
    ),
]


def main() -> None:
    tau = tau1_prerequisite_hierarchy()
    instance = example_registrar_instance()
    publisher = IncrementalPublisher(tau, instance)
    print(f"initial view: {publisher.tree.size()} nodes\n")

    for description, delta in UPDATE_STREAM:
        step = publisher.apply(delta)
        print(f"-- {description}")
        print(f"   memo: {step.invalidated} invalidated, {step.retained} retained")
        edits = step.edits.describe() or "(no visible change)"
        for line in edits.splitlines():
            print(f"   {line[:100]}{'...' if len(line) > 100 else ''}")
        print()

    print("-- curriculum purge: drop every prerequisite")
    purge = Delta.delete("prereq", *publisher.instance["prereq"].tuples)
    step = publisher.apply(purge)
    print(f"   {len(step.edits)} edits; prereq relation is now empty\n")

    # The differential oracle: a cold full publish must agree byte-for-byte.
    publisher.verify()
    print("verified: incremental view == full republish (tree- and byte-wise)")

    # And the point of it all: maintaining beats recomputing.
    final_delta = Delta.insert("prereq", ("cs500", "cs240"))
    start = time.perf_counter()
    publisher.apply(final_delta)
    incremental = time.perf_counter() - start
    start = time.perf_counter()
    compile_plan(tau).publish(publisher.instance)
    full = time.perf_counter() - start
    print(
        f"last update: incremental {incremental * 1e3:.2f} ms "
        f"vs full republish {full * 1e3:.2f} ms ({full / incremental:.1f}x)"
    )
    print(f"cache stats: {publisher.plan.cache_stats.as_dict()}")


if __name__ == "__main__":
    main()
