"""Table I in action: the same database exported through ten publishing languages.

Every commercial / research publishing language of Section 4 (FOR-XML,
annotated XSD, SQL/XML, DAD, DBMS_XMLGEN, XPERANTO, TreeQL, ATG) is modelled
as a front-end that compiles into a publishing transducer; this example
compiles the Figures 2-6 views, verifies the Table I classification and
publishes each one over the registrar database.

Run with::

    python examples/publishing_languages.py
"""

from __future__ import annotations

from repro.core import classify, publish
from repro.languages import TABLE_I
from repro.workloads.registrar import example_registrar_instance


def main() -> None:
    instance = example_registrar_instance()
    print(f"{'vendor / language':<48} {'Table I class':<28} {'observed':<28} nodes")
    print("-" * 120)
    for entry in TABLE_I:
        compiled = entry.build_example()
        observed = classify(compiled)
        tree = publish(compiled, instance, max_nodes=200_000)
        within = "ok" if entry.expected_class.contains(observed) else "MISMATCH"
        print(
            f"{entry.vendor + ': ' + entry.language:<48} "
            f"{str(entry.expected_class):<28} {str(observed):<28} {tree.size():>5}  {within}"
        )


if __name__ == "__main__":
    main()
