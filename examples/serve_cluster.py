"""The sharded serving cluster end to end: route, subscribe, rebalance.

A :class:`~repro.serve.net.shard.ShardCluster` stands up two worker
processes -- each a full :class:`~repro.serve.net.app.NetServer` with its
own write-ahead log directory -- behind one router front door, and a
plain :class:`~repro.serve.net.client.NetClient` drives it without ever
knowing the cluster exists:

* every namespace is routed to its crc32-sticky shard; registrations,
  commits and publishes proxy through the router unchanged;
* a WebSocket subscription tunnels through the router to the owning
  shard -- each commit still pushes one wire-encoded edit script;
* ``rebalance`` migrates a namespace to the other shard live: the new
  shard replays the WAL, the routing table flips, and the published
  document is byte-identical across the move;
* ``cluster_stats`` aggregates per-shard counters behind one endpoint.

This doubles as the CI smoke test for the shard tier (CI runs every
example).

Run with::

    python examples/serve_cluster.py
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.serve.net import NetClient, ShardCluster
from repro.workloads.registrar import example_registrar_instance


def main() -> None:
    with ShardCluster(shards=2) as cluster:
        host, port = cluster.address
        print(f"router on http://{host}:{port} fronting 2 shard workers")

        # -- two tenants, transparently routed to their shards -----------
        for namespace in ("acme", "globex"):
            client = NetClient(host, port, namespace=namespace)
            client.register_view("tau1")
            client.attach(example_registrar_instance(), name="db", durable=True)
            served = client.publish("tau1", source="db")
            owner = cluster.router.owner(namespace)
            print(f"{namespace}: shard {owner}, version {served.version}, "
                  f"{len(served.document)} bytes")
            client.close()

        # -- subscribe through the router's WebSocket tunnel --------------
        client = NetClient(host, port, namespace="acme")
        with client.subscribe("tau1", source="db") as subscription:
            init = subscription.recv()
            print(f"WS tunnel -> init at version {init['version']}")
            out = client.commit(
                "db", Delta.insert("course", ("CS600", "Distributed", "CS"))
            )
            pushed = subscription.recv()
            print(f"commit v{out['version']} -> pushed {pushed['type']} "
                  f"v{pushed['version']}")
            assert pushed["version"] == out["version"]

        # -- live migration: WAL replay + routing-table flip ---------------
        before = client.publish("tau1", source="db")
        target = 1 - cluster.router.owner("acme")
        moved = client.rebalance("acme", target)
        print(f"rebalance acme -> shard {moved['shard']}: "
              f"moved {[s['name'] for s in moved['sources']]}")
        after = client.publish("tau1", source="db")
        assert after.document == before.document
        assert after.version == before.version
        print(f"byte-identical across the move at version {after.version}")

        # the namespace keeps committing on its new shard
        out = client.commit(
            "db", Delta.insert("course", ("CS601", "Consensus", "CS"))
        )
        print(f"post-move commit -> version {out['version']}")

        # -- one stats endpoint for the whole cluster ----------------------
        stats = client.cluster_stats()
        print(f"cluster: {len(stats['shards'])} shards, "
              f"{stats['totals']['requests']} upstream requests, "
              f"{stats['totals']['commits']} commits, "
              f"table {stats['table']}")
        client.close()
    print("cluster example OK")


if __name__ == "__main__":
    main()
