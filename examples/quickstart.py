"""Quickstart: build a publishing transducer with the fluent DSL and serve it
through a :class:`~repro.serve.ViewServer`.

This reproduces Example 3.1 of the paper: the registrar database (courses and
their immediate prerequisites) is published as the recursive prerequisite
hierarchy of Figure 1(a).  The view is declared with
:class:`~repro.engine.TransducerBuilder`, registered on a server (which
compiles it once against the source schema), and evaluated as a materialised
tree, a serialised document and a streamed event sequence through the single
``publish`` call.  See ``examples/serve_registrar.py`` for the full serving
feature set (versions, snapshots, subscriptions, parameters).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import classify
from repro.engine import TransducerBuilder
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.serve import ViewServer
from repro.workloads.registrar import REGISTRAR_SCHEMA, example_registrar_instance


def build_prerequisite_view():
    """Example 3.1 written in the builder DSL (class ``PT(CQ, tuple, normal)``)."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, t, d, cp = Variable("c"), Variable("t"), Variable("d"), Variable("cp")

    cs_courses = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant("CS")),),
    )
    course_cno = ConjunctiveQuery((cno,), (RelationAtom("Reg_course", (cno, title)),))
    course_title = ConjunctiveQuery((title,), (RelationAtom("Reg_course", (cno, title)),))
    prereq_courses = ConjunctiveQuery(
        (c, t),
        (
            RelationAtom("Reg_prereq", (cp,)),
            RelationAtom("prereq", (cp, c)),
            RelationAtom("course", (c, t, d)),
        ),
    )
    cno_text = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    title_text = ConjunctiveQuery((t,), (RelationAtom("Reg_title", (t,)),))

    builder = TransducerBuilder("prereq-hierarchy", root="db")
    builder.start().emit("q", "course", cs_courses)
    (
        builder.state("q")
        .on("course")
        .emit("q", "cno", course_cno)
        .emit("q", "title", course_title)
        .emit("q", "prereq", course_cno)
    )
    builder.state("q").on("prereq").emit("q", "course", prereq_courses)
    builder.state("q").on("cno").emit_text(cno_text)
    builder.state("q").on("title").emit_text(title_text)
    return builder.build()


def main() -> None:
    instance = example_registrar_instance()
    view = build_prerequisite_view()

    print(f"transducer class: {classify(view)}")
    print(f"source database:  {instance}")
    print()

    # Register once (compiled and schema-validated eagerly); serve repeatedly.
    server = ViewServer()
    server.register_view("hierarchy", view, schema=REGISTRAR_SCHEMA)
    server.attach(instance)

    # Materialised, serialised and streamed -- one call, three output forms.
    tree = server.publish("hierarchy")
    print(server.publish("hierarchy", output="bytes"))
    print()
    print(f"output tree: {tree.size()} nodes, depth {tree.depth()}")
    events = sum(1 for _ in server.publish("hierarchy", output="events"))
    print(f"streamed:    {events} events")
    print(server.stats().describe())


if __name__ == "__main__":
    main()
