"""Quickstart: define a publishing transducer and export a relational database as XML.

This reproduces Example 3.1 of the paper: the registrar database (courses and
their immediate prerequisites) is published as the recursive prerequisite
hierarchy of Figure 1(a).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import classify, publish
from repro.workloads.registrar import example_registrar_instance, tau1_prerequisite_hierarchy
from repro.xmltree.serialize import to_xml


def main() -> None:
    instance = example_registrar_instance()
    transducer = tau1_prerequisite_hierarchy()

    print(f"transducer class: {classify(transducer)}")
    print(f"source database:  {instance}")
    print()

    tree = publish(transducer, instance)
    print(to_xml(tree))
    print()
    print(f"output tree: {tree.size()} nodes, depth {tree.depth()}")


if __name__ == "__main__":
    main()
