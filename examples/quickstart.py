"""Quickstart: build a publishing transducer with the fluent DSL and run it
through the compiled engine.

This reproduces Example 3.1 of the paper: the registrar database (courses and
their immediate prerequisites) is published as the recursive prerequisite
hierarchy of Figure 1(a).  The view is declared with
:class:`~repro.engine.TransducerBuilder`, compiled once with
:class:`~repro.engine.Engine`, and evaluated both as a materialised tree and
as a streamed event sequence.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import classify
from repro.engine import Engine, TransducerBuilder
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.workloads.registrar import REGISTRAR_SCHEMA, example_registrar_instance


def build_prerequisite_view():
    """Example 3.1 written in the builder DSL (class ``PT(CQ, tuple, normal)``)."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, t, d, cp = Variable("c"), Variable("t"), Variable("d"), Variable("cp")

    cs_courses = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant("CS")),),
    )
    course_cno = ConjunctiveQuery((cno,), (RelationAtom("Reg_course", (cno, title)),))
    course_title = ConjunctiveQuery((title,), (RelationAtom("Reg_course", (cno, title)),))
    prereq_courses = ConjunctiveQuery(
        (c, t),
        (
            RelationAtom("Reg_prereq", (cp,)),
            RelationAtom("prereq", (cp, c)),
            RelationAtom("course", (c, t, d)),
        ),
    )
    cno_text = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    title_text = ConjunctiveQuery((t,), (RelationAtom("Reg_title", (t,)),))

    builder = TransducerBuilder("prereq-hierarchy", root="db")
    builder.start().emit("q", "course", cs_courses)
    (
        builder.state("q")
        .on("course")
        .emit("q", "cno", course_cno)
        .emit("q", "title", course_title)
        .emit("q", "prereq", course_cno)
    )
    builder.state("q").on("prereq").emit("q", "course", prereq_courses)
    builder.state("q").on("cno").emit_text(cno_text)
    builder.state("q").on("title").emit_text(title_text)
    return builder.build()


def main() -> None:
    instance = example_registrar_instance()
    view = build_prerequisite_view()

    print(f"transducer class: {classify(view)}")
    print(f"source database:  {instance}")
    print()

    # Compile once; evaluate as often as you like.
    plan = Engine().compile(view, REGISTRAR_SCHEMA)

    # Materialised evaluation.
    tree = plan.publish(instance)
    print(plan.publish_xml(instance))
    print()
    print(f"output tree: {tree.size()} nodes, depth {tree.depth()}")

    # Streaming evaluation: count events without materialising anything.
    events = sum(1 for _ in plan.publish_events(instance))
    print(f"streamed:    {events} events")
    print(f"cache:       {plan.cache_stats}")


if __name__ == "__main__":
    main()
