"""Oracle 10g XML DB ``DBMS_XMLGEN`` with ``CONNECT BY`` recursion.

``dbms_xmlgen.newContextFromHierarchy`` evaluates a SQL query and expands a
hierarchy through the SQL'99 ``connect by prior`` linear recursion; each step
passes the current row to its children through the connect-by join.  With the
stop condition of Section 3 imposed, such views are expressible in
``PT(IFP, tuple, normal)`` -- the only commercial language in the paper that
supports recursive XML views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.languages.common import TemplateError, text_leaf_query
from repro.logic.base import Query, QueryLogic
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Variable
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class ConnectBy:
    """``CONNECT BY PRIOR parent_column = child_column`` over ``table``.

    ``parent_column`` refers to a column of the row stored at the current
    node (by 0-based position in the row query's head); ``child_column`` and
    ``columns`` refer to attributes of ``table``.
    """

    table: str
    parent_column: int
    child_column: str


@dataclass(frozen=True)
class DbmsXmlgenView:
    """A ``DBMS_XMLGEN`` view: a row query, element/column tags and a CONNECT BY."""

    root_tag: str
    row_tag: str
    row_query: Query
    column_tags: tuple[str, ...]
    schema: RelationalSchema
    connect_by: "ConnectBy | Query | None" = None
    name: str = "dbms-xmlgen-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "column_tags", tuple(self.column_tags))
        if len(self.column_tags) != self.row_query.arity:
            raise TemplateError("one column tag per row-query column is required")
        if self.row_query.logic > QueryLogic.IFP:
            raise TemplateError("DBMS_XMLGEN row queries are (recursive) SQL, i.e. at most IFP")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PT(IFP, tuple, normal)`` transducer (recursive when CONNECT BY)."""
        arity = self.row_query.arity
        row_vars = tuple(Variable(f"r{i}") for i in range(arity))

        builder = TransducerBuilder(self.name, root=self.root_tag, start="q0")
        builder.start().emit("q", self.row_tag, self.row_query)
        row_rule = builder.state("q").on(self.row_tag)
        for index, tag in enumerate(self.column_tags):
            query = ConjunctiveQuery(
                (row_vars[index],), (RelationAtom(f"Reg_{self.row_tag}", row_vars),)
            )
            row_rule.emit("q", tag, query)
            builder.state("q").on(tag).emit_text(text_leaf_query(tag, 1, 0))
        if self.connect_by is not None:
            join = self._connect_by_query(arity, row_vars)
            if join.arity != arity:
                raise TemplateError("the CONNECT BY query must return rows of the row-query arity")
            row_rule.emit("q", self.row_tag, join)
        return builder.build()

    def _connect_by_query(self, arity: int, row_vars: tuple[Variable, ...]) -> Query:
        """The query producing the child rows of the current row.

        A raw :class:`~repro.logic.base.Query` is used as-is (it may read the
        current row through ``Reg_<row_tag>``); a structured :class:`ConnectBy`
        is expanded into the corresponding key join against its table.
        """
        if isinstance(self.connect_by, ConnectBy):
            relation = self.schema[self.connect_by.table]
            if not relation.attributes:
                raise TemplateError("CONNECT BY needs named attributes on the hierarchy table")
            child_vars = tuple(Variable(f"c_{c}") for c in relation.attributes)
            child_index = relation.attributes.index(self.connect_by.child_column)
            return ConjunctiveQuery(
                child_vars[:arity],
                (
                    RelationAtom(f"Reg_{self.row_tag}", row_vars),
                    RelationAtom(self.connect_by.table, child_vars),
                ),
                (equality(row_vars[self.connect_by.parent_column], child_vars[child_index]),),
            )
        return self.connect_by

def dbms_xmlgen(
    root_tag: str,
    row_tag: str,
    row_query: Query,
    column_tags: Sequence[str],
    schema: RelationalSchema,
    connect_by: ConnectBy | None = None,
    name: str = "dbms-xmlgen-view",
) -> DbmsXmlgenView:
    """Terse constructor."""
    return DbmsXmlgenView(root_tag, row_tag, row_query, tuple(column_tags), schema, connect_by, name)
