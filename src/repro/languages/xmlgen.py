"""Oracle 10g XML DB ``DBMS_XMLGEN`` with ``CONNECT BY`` recursion.

``dbms_xmlgen.newContextFromHierarchy`` evaluates a SQL query and expands a
hierarchy through the SQL'99 ``connect by prior`` linear recursion; each step
passes the current row to its children through the connect-by join.  With the
stop condition of Section 3 imposed, such views are expressible in
``PT(IFP, tuple, normal)`` -- the only commercial language in the paper that
supports recursive XML views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.languages.common import TemplateError, text_leaf_query
from repro.logic.base import Query, QueryLogic
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Variable
from repro.relational.schema import RelationalSchema
from repro.xmltree.tree import TEXT_TAG


@dataclass(frozen=True)
class ConnectBy:
    """``CONNECT BY PRIOR parent_column = child_column`` over ``table``.

    ``parent_column`` refers to a column of the row stored at the current
    node (by 0-based position in the row query's head); ``child_column`` and
    ``columns`` refer to attributes of ``table``.
    """

    table: str
    parent_column: int
    child_column: str


@dataclass(frozen=True)
class DbmsXmlgenView:
    """A ``DBMS_XMLGEN`` view: a row query, element/column tags and a CONNECT BY."""

    root_tag: str
    row_tag: str
    row_query: Query
    column_tags: tuple[str, ...]
    schema: RelationalSchema
    connect_by: "ConnectBy | Query | None" = None
    name: str = "dbms-xmlgen-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "column_tags", tuple(self.column_tags))
        if len(self.column_tags) != self.row_query.arity:
            raise TemplateError("one column tag per row-query column is required")
        if self.row_query.logic > QueryLogic.IFP:
            raise TemplateError("DBMS_XMLGEN row queries are (recursive) SQL, i.e. at most IFP")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PT(IFP, tuple, normal)`` transducer (recursive when CONNECT BY)."""
        arity = self.row_query.arity
        row_vars = tuple(Variable(f"r{i}") for i in range(arity))

        column_items: list[RuleItem] = []
        rules: list[TransductionRule] = []
        for index, tag in enumerate(self.column_tags):
            query = ConjunctiveQuery(
                (row_vars[index],), (RelationAtom(f"Reg_{self.row_tag}", row_vars),)
            )
            column_items.append(RuleItem("q", tag, RuleQuery(query, 1)))
            rules.append(
                TransductionRule(
                    "q", tag, (RuleItem("q", TEXT_TAG, RuleQuery(text_leaf_query(tag, 1, 0), 1)),)
                )
            )

        row_items = list(column_items)
        if self.connect_by is not None:
            join = self._connect_by_query(arity, row_vars)
            if join.arity != arity:
                raise TemplateError("the CONNECT BY query must return rows of the row-query arity")
            row_items.append(RuleItem("q", self.row_tag, RuleQuery(join, join.arity)))

        rules.insert(
            0,
            TransductionRule(
                "q0",
                self.root_tag,
                (RuleItem("q", self.row_tag, RuleQuery(self.row_query, arity)),),
            ),
        )
        rules.insert(1, TransductionRule("q", self.row_tag, tuple(row_items)))
        rules.append(TransductionRule("q", TEXT_TAG, ()))
        return make_transducer(
            rules,
            start_state="q0",
            root_tag=self.root_tag,
            name=self.name,
        )

    def _connect_by_query(self, arity: int, row_vars: tuple[Variable, ...]) -> Query:
        """The query producing the child rows of the current row.

        A raw :class:`~repro.logic.base.Query` is used as-is (it may read the
        current row through ``Reg_<row_tag>``); a structured :class:`ConnectBy`
        is expanded into the corresponding key join against its table.
        """
        if isinstance(self.connect_by, ConnectBy):
            relation = self.schema[self.connect_by.table]
            if not relation.attributes:
                raise TemplateError("CONNECT BY needs named attributes on the hierarchy table")
            child_vars = tuple(Variable(f"c_{c}") for c in relation.attributes)
            child_index = relation.attributes.index(self.connect_by.child_column)
            return ConjunctiveQuery(
                child_vars[:arity],
                (
                    RelationAtom(f"Reg_{self.row_tag}", row_vars),
                    RelationAtom(self.connect_by.table, child_vars),
                ),
                (equality(row_vars[self.connect_by.parent_column], child_vars[child_index]),),
            )
        return self.connect_by

def dbms_xmlgen(
    root_tag: str,
    row_tag: str,
    row_query: Query,
    column_tags: Sequence[str],
    schema: RelationalSchema,
    connect_by: ConnectBy | None = None,
    name: str = "dbms-xmlgen-view",
) -> DbmsXmlgenView:
    """Terse constructor."""
    return DbmsXmlgenView(root_tag, row_tag, row_query, tuple(column_tags), schema, connect_by, name)
