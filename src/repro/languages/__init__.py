"""Front-ends for the existing XML publishing languages of Section 4.

Each commercial or research language the paper analyses is modelled as a
small, typed specification object that *compiles into a publishing
transducer* of exactly the class Table I assigns to it:

==============================  =================================
Language                        Smallest containing class
==============================  =================================
Microsoft FOR-XML               ``PTnr(FO, tuple, normal)``
Microsoft annotated XSD         ``PTnr(CQ, tuple, normal)``
IBM SQL/XML                     ``PTnr(IFP, tuple, normal)``
IBM DAD (SQL mapping)           ``PTnr(IFP, tuple, normal)``
IBM DAD (RDB mapping)           ``PTnr(CQ, tuple, normal)``
Oracle SQL/XML                  ``PTnr(FO, tuple, normal)``
Oracle DBMS_XMLGEN              ``PT(IFP, tuple, normal)``
XPERANTO                        ``PTnr(FO, tuple, normal)``
TreeQL                          ``PTnr(CQ, tuple, virtual)``
ATG                             ``PT(FO, relation, virtual)``
==============================  =================================

The specifications capture the features the paper's analysis relies on (query
language, information passing, tree template vs. recursion, virtual nodes);
they are not SQL parsers -- the paper itself abstracts SQL as FO and recursive
SQL as IFP, and so do we.
"""

from repro.languages.annotated_xsd import AnnotatedXsdView
from repro.languages.atg import AtgProduction, AtgView
from repro.languages.common import TemplateElement, TemplateError
from repro.languages.dad import DadRdbMappingView, DadSqlMappingView
from repro.languages.forxml import ForXmlView
from repro.languages.registry import TABLE_I, LanguageEntry, characterize, example_views
from repro.languages.sqlxml import SqlXmlView
from repro.languages.treeql import TreeQLView
from repro.languages.xmlgen import DbmsXmlgenView
from repro.languages.xperanto import XperantoView

__all__ = [
    "AnnotatedXsdView",
    "AtgProduction",
    "AtgView",
    "DadRdbMappingView",
    "DadSqlMappingView",
    "DbmsXmlgenView",
    "ForXmlView",
    "LanguageEntry",
    "SqlXmlView",
    "TABLE_I",
    "TemplateElement",
    "TemplateError",
    "TreeQLView",
    "XperantoView",
    "characterize",
    "example_views",
]
