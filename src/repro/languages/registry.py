"""Table I: characterisation of the existing publishing languages.

For every language of Section 4 the registry records the smallest transducer
class the paper assigns to it and provides an example view over the registrar
database of Example 1.1 (the views of Figures 2-6 where the paper gives one).
The Table I benchmark compiles every example and checks that the resulting
transducer indeed falls inside the declared class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.classes import TransducerClass, classify
from repro.core.transducer import PublishingTransducer
from repro.languages.annotated_xsd import AnnotatedXsdView, XsdElement
from repro.languages.atg import AtgProduction, AtgView
from repro.languages.common import element
from repro.languages.dad import DadRdbMappingView, DadSqlMappingView
from repro.languages.forxml import ForXmlView
from repro.languages.sqlxml import SqlXmlView
from repro.languages.treeql import TreeQLView
from repro.languages.xmlgen import DbmsXmlgenView
from repro.languages.xperanto import XperantoView
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.fo import And, Eq, Exists, FormulaQuery, Not, Rel
from repro.logic.terms import Constant, Variable
from repro.workloads.registrar import REGISTRAR_SCHEMA
from repro.xmltree.dtd import DTD, concat, star


@dataclass(frozen=True)
class LanguageEntry:
    """One row of Table I."""

    language: str
    vendor: str
    expected_class: TransducerClass
    build_example: Callable[[], PublishingTransducer]

    def check_example(self) -> bool:
        """Whether the example view compiles into the declared class (or smaller)."""
        compiled = self.build_example()
        return self.expected_class.contains(classify(compiled))


# ---------------------------------------------------------------------------
# Example views over the registrar database (Figures 2-6).
# ---------------------------------------------------------------------------


def _no_db_prereq_query() -> FormulaQuery:
    """The SQL query of Figures 2-4: courses without a 'Databases' immediate prereq."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c2, t2, d2 = Variable("c2"), Variable("t2"), Variable("d2")
    return FormulaQuery(
        (cno, title),
        Exists(
            (dept,),
            And(
                (
                    Rel("course", (cno, title, dept)),
                    Not(
                        Exists(
                            (c2, t2, d2),
                            And(
                                (
                                    Rel("prereq", (cno, c2)),
                                    Rel("course", (c2, t2, d2)),
                                    Eq(t2, Constant("Databases")),
                                )
                            ),
                        )
                    ),
                )
            ),
        ),
    )


def _course_column_elements(parent_tag: str = "course"):
    """``cno`` / ``title`` children copying one column of the parent register."""
    c, t = Variable("c"), Variable("t")
    return (
        element(
            "cno",
            ConjunctiveQuery((c,), (RelationAtom(f"Reg_{parent_tag}", (c, t)),)),
            text_column=0,
        ),
        element(
            "title",
            ConjunctiveQuery((t,), (RelationAtom(f"Reg_{parent_tag}", (c, t)),)),
            text_column=0,
        ),
    )


def example_forxml() -> PublishingTransducer:
    """Figure 2: the FOR-XML view of the courses without a DB prerequisite."""
    view = ForXmlView(
        "db",
        (element("course", _no_db_prereq_query(), _course_column_elements()),),
        name="figure2-for-xml",
    )
    return view.compile()


def example_annotated_xsd() -> PublishingTransducer:
    """An annotated XSD exporting CS courses with their cno / title attributes."""
    view = AnnotatedXsdView(
        "db",
        REGISTRAR_SCHEMA,
        (XsdElement("course", "course", ("cno", "title"), condition=("dept", "CS")),),
        name="annotated-xsd-cs-courses",
    )
    return view.compile()


def example_sqlxml() -> PublishingTransducer:
    """Figure 3: the same view as Figure 2 written with SQL/XML constructors."""
    view = SqlXmlView(
        "db",
        (element("course", _no_db_prereq_query(), _course_column_elements()),),
        allow_recursive_sql=True,
        name="figure3-sqlxml",
    )
    return view.compile()


def example_dad_sql_mapping() -> PublishingTransducer:
    """Figure 4: the DAD SQL-mapping view grouping the query result by cno then title."""
    view = DadSqlMappingView(
        "db",
        _no_db_prereq_query(),
        ("cno", "title"),
        name="figure4-dad-sql-mapping",
    )
    return view.compile()


def example_dad_rdb_mapping() -> PublishingTransducer:
    """A DAD RDB-mapping view: the CS courses with their columns (CQ template)."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    cs_courses = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant("CS")),),
    )
    view = DadRdbMappingView(
        "db",
        (element("course", cs_courses, _course_column_elements()),),
        name="dad-rdb-mapping-cs-courses",
    )
    return view.compile()


def example_xmlgen() -> PublishingTransducer:
    """Figure 5: the recursive DBMS_XMLGEN view expanding the prerequisite hierarchy."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    all_courses = ConjunctiveQuery((cno, title), (RelationAtom("course", (cno, title, dept)),))
    pc, pt, c, t, d = Variable("pc"), Variable("pt"), Variable("c"), Variable("t"), Variable("d")
    connect_by = ConjunctiveQuery(
        (c, t),
        (
            RelationAtom("Reg_course", (pc, pt)),
            RelationAtom("prereq", (pc, c)),
            RelationAtom("course", (c, t, d)),
        ),
    )
    view = DbmsXmlgenView(
        "db",
        "course",
        all_courses,
        ("cno", "title"),
        REGISTRAR_SCHEMA,
        connect_by=connect_by,
        name="figure5-dbms-xmlgen",
    )
    return view.compile()


def example_xperanto() -> PublishingTransducer:
    """An XPERANTO view equivalent to the Figure 2 query."""
    view = XperantoView(
        "db",
        (element("course", _no_db_prereq_query(), _course_column_elements()),),
        name="xperanto-no-db-prereq",
    )
    return view.compile()


def example_treeql() -> PublishingTransducer:
    """A TreeQL view using a virtual wrapper node around the course list."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    cs_courses = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant("CS")),),
    )
    c, t = Variable("c"), Variable("t")
    copy_course = ConjunctiveQuery((c, t), (RelationAtom("Reg_group", (c, t)),))
    view = TreeQLView(
        "db",
        (
            element(
                "group",
                cs_courses,
                (element("course", copy_course, _course_column_elements()),),
                virtual=True,
            ),
        ),
        name="treeql-virtual-group",
    )
    return view.compile()


def example_atg() -> PublishingTransducer:
    """Figure 6: the ATG listing every course with its recursive prerequisite hierarchy."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, t, d, pc, pt = Variable("c"), Variable("t"), Variable("d"), Variable("pc"), Variable("pt")

    dtd = DTD(
        "db",
        {
            "db": star("course"),
            "course": concat("cno", "title", "prereq"),
            "prereq": star("course"),
        },
    )
    all_courses = ConjunctiveQuery((cno, title), (RelationAtom("course", (cno, title, dept)),))
    course_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_course", (c, t)),))
    course_title = ConjunctiveQuery((t,), (RelationAtom("Reg_course", (c, t)),))
    prereq_courses = ConjunctiveQuery(
        (c, t),
        (
            RelationAtom("Reg_prereq", (pc,)),
            RelationAtom("prereq", (pc, c)),
            RelationAtom("course", (c, t, d)),
        ),
    )
    text_of = lambda tag: ConjunctiveQuery((c,), (RelationAtom(f"Reg_{tag}", (c,)),))  # noqa: E731

    productions = (
        AtgProduction("db", {"course": all_courses}),
        AtgProduction(
            "course",
            {"cno": course_cno, "title": course_title, "prereq": course_cno},
        ),
        AtgProduction("prereq", {"course": prereq_courses}, group_arities={"course": 2}),
        AtgProduction("cno", {}, text_query=text_of("cno")),
        AtgProduction("title", {}, text_query=text_of("title")),
    )
    return AtgView(dtd, productions, name="figure6-atg").compile()


# ---------------------------------------------------------------------------
# Table I.
# ---------------------------------------------------------------------------


TABLE_I: tuple[LanguageEntry, ...] = (
    LanguageEntry("FOR XML", "Microsoft SQL Server 2005", TransducerClass.parse("PTnr(FO, tuple, normal)"), example_forxml),
    LanguageEntry("annotated XSD", "Microsoft SQL Server 2005", TransducerClass.parse("PTnr(CQ, tuple, normal)"), example_annotated_xsd),
    LanguageEntry("SQL/XML", "IBM DB2 XML Extender", TransducerClass.parse("PTnr(IFP, tuple, normal)"), example_sqlxml),
    LanguageEntry("DAD (SQL mapping)", "IBM DB2 XML Extender", TransducerClass.parse("PTnr(IFP, tuple, normal)"), example_dad_sql_mapping),
    LanguageEntry("DAD (RDB mapping)", "IBM DB2 XML Extender", TransducerClass.parse("PTnr(CQ, tuple, normal)"), example_dad_rdb_mapping),
    LanguageEntry("SQL/XML", "Oracle 10g XML DB", TransducerClass.parse("PTnr(FO, tuple, normal)"), example_xperanto),
    LanguageEntry("DBMS_XMLGEN", "Oracle 10g XML DB", TransducerClass.parse("PT(IFP, tuple, normal)"), example_xmlgen),
    LanguageEntry("XPERANTO", "IBM Research", TransducerClass.parse("PTnr(FO, tuple, normal)"), example_xperanto),
    LanguageEntry("TreeQL", "SilkRoute", TransducerClass.parse("PTnr(CQ, tuple, virtual)"), example_treeql),
    LanguageEntry("ATG", "PRATA", TransducerClass.parse("PT(FO, relation, virtual)"), example_atg),
)


#: Language names of the front-end view classes, for the serving layer's
#: bookkeeping (``ViewServer.register_view`` detects the language of a
#: source automatically through :func:`frontend_language`).
FRONTEND_LANGUAGES: dict[type, str] = {
    ForXmlView: "FOR XML",
    AnnotatedXsdView: "annotated XSD",
    SqlXmlView: "SQL/XML",
    DadSqlMappingView: "DAD (SQL mapping)",
    DadRdbMappingView: "DAD (RDB mapping)",
    DbmsXmlgenView: "DBMS_XMLGEN",
    XperantoView: "XPERANTO",
    TreeQLView: "TreeQL",
    AtgView: "ATG",
}


def frontend_language(source) -> str | None:
    """The Table I language name of a view source, when recognisable.

    Recognises the language front-end classes, raw transducers and the
    builder DSL; returns ``None`` for anything else (the serving layer then
    records the language as unknown unless told explicitly).
    """
    from repro.engine.builder import TransducerBuilder

    for cls, language in FRONTEND_LANGUAGES.items():
        if isinstance(source, cls):
            return language
    if isinstance(source, PublishingTransducer):
        return "transducer"
    if isinstance(source, TransducerBuilder):
        return "builder DSL"
    return None


def compile_frontend(source) -> PublishingTransducer:
    """Normalise any view front-end into a :class:`PublishingTransducer`.

    Accepts a transducer (returned as-is), a
    :class:`~repro.engine.builder.TransducerBuilder` (built), or any object
    exposing a ``compile()`` method returning a transducer -- which covers
    every language front-end of this package.  This is the single
    entry-point normalisation used by ``ViewServer.register_view``.
    """
    from repro.engine.builder import TransducerBuilder

    if isinstance(source, PublishingTransducer):
        return source
    if isinstance(source, TransducerBuilder):
        return source.build()
    compile_method = getattr(source, "compile", None)
    if callable(compile_method):
        compiled = compile_method()
        if not isinstance(compiled, PublishingTransducer):
            raise TypeError(
                f"{type(source).__name__}.compile() returned "
                f"{type(compiled).__name__}, not a PublishingTransducer"
            )
        return compiled
    raise TypeError(
        f"cannot compile a view from {type(source).__name__}: expected a "
        f"PublishingTransducer, a TransducerBuilder, or a front-end with a "
        f"compile() method"
    )


def characterize(transducer: PublishingTransducer) -> TransducerClass:
    """The smallest fragment containing a compiled view (alias of :func:`classify`)."""
    return classify(transducer)


def example_views() -> dict[str, PublishingTransducer]:
    """Compile every Table I example view, keyed by ``vendor: language``."""
    return {f"{entry.vendor}: {entry.language}": entry.build_example() for entry in TABLE_I}
