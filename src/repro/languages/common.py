"""Shared machinery of the publishing-language front-ends.

Most of the non-recursive languages of Section 4 describe an XML view through
a *tree template*: a fixed-depth nesting of elements, each annotated with a
query that populates it from the source (and from its parent's bindings).
:class:`TemplateElement` captures one template node and
:func:`compile_template` turns a template into a publishing transducer whose
class is determined by the queries used (CQ / FO / IFP), the presence of
virtual elements and the grouping mode of each query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.rules import RuleQuery
from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.logic.base import Query
from repro.logic.cq import ConjunctiveQuery, RelationAtom
from repro.logic.terms import Variable
from repro.xmltree.tree import TEXT_TAG


class TemplateError(ValueError):
    """Raised when a template specification is malformed."""


@dataclass(frozen=True)
class TemplateElement:
    """One node of a tree template.

    Parameters
    ----------
    tag:
        The element tag.
    query:
        The query populating this element: one element instance is created per
        answer tuple (tuple registers) unless ``group_arity`` says otherwise.
        ``None`` means the element is a structural wrapper that inherits its
        parent's bindings (one copy per parent).
    children:
        Child template elements.
    text_column:
        When set, the element additionally gets a ``text`` child carrying the
        value of that column of its own register (0-based).
    virtual:
        Whether the element is virtual (removed from the final tree).
    group_arity:
        ``None`` (default) means group by the entire tuple (tuple register);
        an integer ``g`` groups by the first ``g`` head variables, producing
        relation registers when ``g`` is smaller than the query arity.
    """

    tag: str
    query: Query | None = None
    children: tuple["TemplateElement", ...] = ()
    text_column: int | None = None
    virtual: bool = False
    group_arity: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def depth(self) -> int:
        """Depth of the template (a single element has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def walk(self):
        """Pre-order traversal of the template."""
        yield self
        for child in self.children:
            yield from child.walk()


def element(
    tag: str,
    query: Query | None = None,
    children: Sequence[TemplateElement] = (),
    text_column: int | None = None,
    virtual: bool = False,
    group_arity: int | None = None,
) -> TemplateElement:
    """Terse :class:`TemplateElement` constructor."""
    return TemplateElement(tag, query, tuple(children), text_column, virtual, group_arity)


def text_leaf_query(parent_tag: str, register_arity: int, column: int) -> ConjunctiveQuery:
    """A CQ selecting one column of the parent register (for ``text`` children)."""
    variables = tuple(Variable(f"t{i}") for i in range(register_arity))
    if not 0 <= column < register_arity:
        raise TemplateError(f"text column {column} out of range for arity {register_arity}")
    return ConjunctiveQuery(
        (variables[column],), (RelationAtom(f"Reg_{parent_tag}", variables),)
    )


def inherit_query(parent_tag: str, register_arity: int) -> ConjunctiveQuery:
    """A CQ copying the parent register (for structural wrapper elements)."""
    variables = tuple(Variable(f"t{i}") for i in range(register_arity))
    return ConjunctiveQuery(variables, (RelationAtom(f"Reg_{parent_tag}", variables),))


def compile_template(
    root_tag: str,
    elements: Sequence[TemplateElement],
    name: str,
) -> PublishingTransducer:
    """Compile a tree template into a publishing transducer.

    Every template element gets its own state so that identically-tagged
    elements at different template positions keep distinct rules; virtual
    elements are collected into the transducer's virtual-tag set.  Tags reused
    at several positions must have registers of one arity (a template
    restriction shared by all the languages modelled here).
    """
    counter = itertools.count()
    register_arities: dict[str, int] = {}
    builder = TransducerBuilder(name, root=root_tag, start="q0")

    def element_arity(elem: TemplateElement, parent_arity: int) -> int:
        if elem.query is not None:
            return elem.query.arity
        return parent_arity

    def compile_element(elem: TemplateElement, state: str, parent_tag: str, parent_arity: int) -> None:
        arity = element_arity(elem, parent_arity)
        existing = register_arities.get(elem.tag)
        if existing is not None and existing != arity:
            raise TemplateError(
                f"tag {elem.tag!r} is used with register arities {existing} and {arity}"
            )
        register_arities[elem.tag] = arity
        if elem.virtual:
            builder.virtual(elem.tag)
        rule_builder = builder.state(state).on(elem.tag)
        child_states: list[tuple[TemplateElement, str]] = []
        for child in elem.children:
            child_state = f"s{next(counter)}"
            child_query = child.query if child.query is not None else inherit_query(elem.tag, arity)
            group = child.group_arity if child.group_arity is not None else child_query.arity
            rule_builder.emit(child_state, child.tag, child_query, group=group)
            child_states.append((child, child_state))
        if elem.text_column is not None:
            query = text_leaf_query(elem.tag, arity, elem.text_column)
            rule_builder.emit_text(RuleQuery(query, 1), state=f"s{next(counter)}")
        for child, child_state in child_states:
            compile_element(child, child_state, elem.tag, arity)

    start_rule = builder.start()
    top_level: list[tuple[TemplateElement, str]] = []
    for elem in elements:
        if elem.query is None:
            raise TemplateError("top-level template elements need a populating query")
        state = f"s{next(counter)}"
        group = elem.group_arity if elem.group_arity is not None else elem.query.arity
        start_rule.emit(state, elem.tag, elem.query, group=group)
        top_level.append((elem, state))
    for elem, state in top_level:
        compile_element(elem, state, root_tag, 0)

    builder.register_arity(TEXT_TAG, 1)
    for tag, arity in register_arities.items():
        builder.register_arity(tag, arity)
    return builder.build()
