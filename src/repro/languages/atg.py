"""ATG -- attribute transformation grammars (PRATA; Benedikt et al. 2002,
Bohannon et al. 2004).

An ATG is DTD-directed publishing: every element type of a (possibly
recursive) DTD carries an inherited attribute (a *relation* register) and
every production ``a -> alpha`` is annotated, for each sub-element type ``b``
occurring in ``alpha``, with a query that populates the ``b`` children of an
``a`` element from the source and the register of ``a``.  The revised ATGs
use FO queries, relation registers, virtual nodes (to cope with entities) and
the stop condition of Section 3 -- hence the class ``PT(FO, relation,
virtual)`` of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.languages.common import TemplateError
from repro.logic.base import Query, QueryLogic
from repro.xmltree.dtd import DTD
from repro.xmltree.tree import TEXT_TAG


@dataclass(frozen=True)
class AtgProduction:
    """The annotation of one DTD production ``tag -> ...``.

    ``child_queries`` maps each sub-element tag occurring in the production's
    content model to the query populating those children; ``group_arities``
    optionally grants a child a *relation* register by grouping on a strict
    prefix of its query head (default: group on the full tuple).
    """

    tag: str
    child_queries: Mapping[str, Query]
    group_arities: Mapping[str, int] | None = None
    text_query: Query | None = None

    def group_arity(self, child: str) -> int:
        query = self.child_queries[child]
        if self.group_arities and child in self.group_arities:
            return self.group_arities[child]
        return query.arity


@dataclass(frozen=True)
class AtgView:
    """An ATG: a DTD, per-production query annotations and optional virtual tags."""

    dtd: DTD
    productions: tuple[AtgProduction, ...]
    virtual_tags: frozenset[str] = frozenset()
    name: str = "atg-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "productions", tuple(self.productions))
        object.__setattr__(self, "virtual_tags", frozenset(self.virtual_tags))
        self.validate()

    def validate(self) -> None:
        """Check that annotations stay within the ATG fragment (FO queries, DTD tags)."""
        alphabet = self.dtd.alphabet() | {TEXT_TAG}
        for production in self.productions:
            if production.tag not in alphabet:
                raise TemplateError(f"production for unknown tag {production.tag!r}")
            allowed = self.dtd.content_model(production.tag).symbols() | {TEXT_TAG}
            for child, query in production.child_queries.items():
                if child not in allowed and child not in self.virtual_tags:
                    raise TemplateError(
                        f"production {production.tag!r} spawns {child!r}, which its "
                        f"content model does not allow"
                    )
                if query.logic > QueryLogic.FO:
                    raise TemplateError("ATG queries are FO")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PT(FO, relation, virtual)`` transducer."""
        builder = TransducerBuilder(self.name, root=self.dtd.root, start="q0")
        builder.virtual(*self.virtual_tags)
        builder.register_arity(TEXT_TAG, 1)
        productions = {p.tag: p for p in self.productions}

        for tag in sorted(self.dtd.alphabet() | set(productions) | self.virtual_tags):
            production = productions.get(tag)
            state = "q0" if tag == self.dtd.root else "q"
            if production is None:
                if tag != self.dtd.root:
                    builder.state("q").on(tag).leaf()
                continue
            rule_builder = builder.state(state).on(tag)
            for child, query in production.child_queries.items():
                rule_builder.emit("q", child, query, group=production.group_arity(child))
                builder.register_arity(child, query.arity)
            if production.text_query is not None:
                rule_builder.emit("q", TEXT_TAG, production.text_query)
        if not any(tag == TEXT_TAG for _, tag in builder.declared):
            builder.state("q").on(TEXT_TAG).leaf()
        return builder.build()


def atg(
    dtd: DTD,
    productions: Sequence[AtgProduction],
    virtual_tags: Sequence[str] = (),
    name: str = "atg-view",
) -> AtgView:
    """Terse constructor."""
    return AtgView(dtd, tuple(productions), frozenset(virtual_tags), name)
