"""Microsoft SQL Server annotated XSD schemas.

An annotated XSD maps elements to tables and attributes to columns and passes
information between parent and child through key-based ``relationship``
annotations; it supports only simple condition tests, no virtual nodes, and a
fixed tree template.  The paper places it in ``PTnr(CQ, tuple, normal)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement, TemplateError, compile_template, element
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class XsdRelationship:
    """A parent/child key join: ``parent.parent_column = child.child_column``."""

    parent_column: str
    child_column: str


@dataclass(frozen=True)
class XsdElement:
    """An element mapped to a table, with attribute columns and child elements."""

    tag: str
    table: str
    columns: tuple[str, ...]
    relationship: XsdRelationship | None = None
    condition: tuple[str, object] | None = None
    children: tuple["XsdElement", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "children", tuple(self.children))


@dataclass(frozen=True)
class AnnotatedXsdView:
    """An annotated XSD view over a relational schema with named attributes."""

    root_tag: str
    schema: RelationalSchema
    elements: tuple[XsdElement, ...]
    name: str = "annotated-xsd-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(CQ, tuple, normal)`` transducer."""
        template = tuple(
            self._compile_element(elem, parent=None) for elem in self.elements
        )
        return compile_template(self.root_tag, template, self.name)

    # -- helpers ------------------------------------------------------------

    def _table_variables(self, table: str, prefix: str) -> dict[str, Variable]:
        relation = self.schema[table]
        if not relation.attributes:
            raise TemplateError(f"annotated XSD needs named attributes for table {table!r}")
        return {column: Variable(f"{prefix}_{column}") for column in relation.attributes}

    def _compile_element(self, elem: XsdElement, parent: XsdElement | None) -> TemplateElement:
        variables = self._table_variables(elem.table, elem.tag)
        relation = self.schema[elem.table]
        atom = RelationAtom(elem.table, tuple(variables[c] for c in relation.attributes))
        comparisons = []
        if elem.condition is not None:
            column, value = elem.condition
            comparisons.append(equality(variables[column], Constant(value)))
        atoms = [atom]
        if parent is not None:
            if elem.relationship is None:
                raise TemplateError(
                    f"child element {elem.tag!r} needs a relationship annotation"
                )
            parent_relation = self.schema[parent.table]
            parent_vars = tuple(Variable(f"p_{c}") for c in parent_relation.attributes)
            atoms.append(RelationAtom(f"Reg_{parent.tag}", parent_vars))
            parent_index = parent_relation.attributes.index(elem.relationship.parent_column)
            comparisons.append(
                equality(parent_vars[parent_index], variables[elem.relationship.child_column])
            )
        head = tuple(variables[c] for c in relation.attributes)
        query = ConjunctiveQuery(head, tuple(atoms), tuple(comparisons))

        attribute_children = tuple(
            element(
                column,
                ConjunctiveQuery(
                    (variables[column],),
                    (RelationAtom(f"Reg_{elem.tag}", head),),
                ),
                text_column=0,
            )
            for column in elem.columns
        )
        nested_children = tuple(self._compile_element(child, elem) for child in elem.children)
        return element(elem.tag, query, attribute_children + nested_children)
