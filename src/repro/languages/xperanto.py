"""XPERANTO (Shanmugasundaram et al., VLDB Journal 2001).

The paper notes that XPERANTO supports essentially the same views as SQL/XML
without recursive SQL, i.e. ``PTnr(FO, tuple, normal)``; the front-end is the
SQL/XML one with recursion disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement
from repro.languages.sqlxml import SqlXmlView


@dataclass(frozen=True)
class XperantoView:
    """An XPERANTO view: SQL/XML-style nesting with plain (FO) SQL queries."""

    root_tag: str
    elements: tuple[TemplateElement, ...]
    name: str = "xperanto-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(FO, tuple, normal)`` transducer."""
        return SqlXmlView(
            self.root_tag, self.elements, allow_recursive_sql=False, name=self.name
        ).compile()


def xperanto(root_tag: str, elements: Sequence[TemplateElement], name: str = "xperanto-view") -> XperantoView:
    """Terse constructor."""
    return XperantoView(root_tag, tuple(elements), name)
