"""Microsoft SQL Server ``FOR XML`` expressions.

The ``for-xml`` construct nests SQL queries; information flows from a node to
its children via correlation (tuple variables of the outer query), trees have
a depth bounded by the nesting level and there are no virtual nodes.  The
paper places it in ``PTnr(FO, tuple, normal)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement, TemplateError, compile_template
from repro.logic.base import QueryLogic


@dataclass(frozen=True)
class ForXmlView:
    """A ``FOR XML`` view: a root tag plus nested, FO-annotated template elements."""

    root_tag: str
    elements: tuple[TemplateElement, ...]
    name: str = "for-xml-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))
        self.validate()

    def validate(self) -> None:
        """FOR XML allows SQL (FO) queries, no virtual nodes, bounded depth."""
        for root in self.elements:
            for elem in root.walk():
                if elem.virtual:
                    raise TemplateError("FOR XML does not support virtual nodes")
                if elem.query is not None and elem.query.logic > QueryLogic.FO:
                    raise TemplateError("FOR XML queries are (non-recursive) SQL, i.e. FO")
                if elem.group_arity is not None and elem.query is not None and elem.group_arity != elem.query.arity:
                    raise TemplateError("FOR XML passes information via tuple correlation only")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(FO, tuple, normal)`` transducer."""
        return compile_template(self.root_tag, self.elements, self.name)


def for_xml(root_tag: str, elements: Sequence[TemplateElement], name: str = "for-xml-view") -> ForXmlView:
    """Terse constructor."""
    return ForXmlView(root_tag, tuple(elements), name)
