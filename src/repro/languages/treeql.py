"""TreeQL (SilkRoute; abstraction of Alon et al. 2003).

TreeQL annotates the nodes of a fixed tree template with conjunctive queries,
passes information through free-variable binding (the free variables of a
node's query are a subset of those of its children's queries) and supports
*virtual* template nodes.  The paper places it in ``PTnr(CQ, tuple, virtual)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement, TemplateError, compile_template
from repro.logic.base import QueryLogic


@dataclass(frozen=True)
class TreeQLView:
    """A TreeQL view: a CQ-annotated tree template, possibly with virtual nodes."""

    root_tag: str
    elements: tuple[TemplateElement, ...]
    name: str = "treeql-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))
        self.validate()

    def validate(self) -> None:
        for root in self.elements:
            for elem in root.walk():
                if elem.query is not None and elem.query.logic > QueryLogic.CQ:
                    raise TemplateError("TreeQL node annotations are conjunctive queries")
                if (
                    elem.group_arity is not None
                    and elem.query is not None
                    and elem.group_arity != elem.query.arity
                ):
                    raise TemplateError("TreeQL passes information via free-variable (tuple) binding")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(CQ, tuple, virtual)`` transducer."""
        return compile_template(self.root_tag, self.elements, self.name)


def treeql(root_tag: str, elements: Sequence[TemplateElement], name: str = "treeql-view") -> TreeQLView:
    """Terse constructor."""
    return TreeQLView(root_tag, tuple(elements), name)
