"""IBM DB2 XML Extender DAD (document access definition).

Two flavours (Section 4):

* **SQL mapping** -- a single SQL query whose result is organised into a
  hierarchy by grouping on a fixed order of its columns; recursive SQL is
  allowed inside the query, so the class is ``PTnr(IFP, tuple, normal)``.
* **RDB mapping** -- a fixed tree template (the DAD) whose ``rdb_node``
  expressions are essentially conjunctive queries, giving
  ``PTnr(CQ, tuple, normal)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement, TemplateError, compile_template, element
from repro.logic.base import Query, QueryLogic
from repro.logic.cq import ConjunctiveQuery, RelationAtom
from repro.logic.terms import Variable


@dataclass(frozen=True)
class DadSqlMappingView:
    """A DAD with SQL mapping: one query, grouped column by column.

    ``column_tags`` names, in grouping order, the element tag wrapping each
    column of the query result; the generated tree has one level per column
    (depth bounded by the query arity), each leaf carrying the column value as
    text.
    """

    root_tag: str
    query: Query
    column_tags: tuple[str, ...]
    name: str = "dad-sql-mapping"

    def __post_init__(self) -> None:
        object.__setattr__(self, "column_tags", tuple(self.column_tags))
        if len(self.column_tags) != self.query.arity:
            raise TemplateError("one column tag per query column is required")
        if self.query.logic > QueryLogic.IFP:
            raise TemplateError("SQL mapping queries must be (recursive) SQL, i.e. at most IFP")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(IFP, tuple, normal)`` transducer.

        Level ``i`` groups the query result by its first ``i + 1`` columns; a
        child of a level-``i`` node restricts the parent's group to one value
        of column ``i + 1``.  Every level stores the full result tuple, so the
        registers stay tuples and the tree is the nested grouping of the
        single query result, exactly like the ``group by`` cascade of the DAD.
        """
        arity = self.query.arity
        leaf_level = len(self.column_tags) - 1

        def level_element(level: int) -> TemplateElement:
            if level == 0:
                query: Query = self.query
            else:
                parent_tag = self.column_tags[level - 1]
                variables = tuple(Variable(f"c{i}") for i in range(arity))
                query = ConjunctiveQuery(variables, (RelationAtom(f"Reg_{parent_tag}", variables),))
            children = () if level == leaf_level else (level_element(level + 1),)
            return element(
                self.column_tags[level],
                query,
                children,
                text_column=level,
            )

        return compile_template(self.root_tag, (level_element(0),), self.name)


@dataclass(frozen=True)
class DadRdbMappingView:
    """A DAD with RDB mapping: a CQ-annotated tree template, no virtual nodes."""

    root_tag: str
    elements: tuple[TemplateElement, ...]
    name: str = "dad-rdb-mapping"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))
        self.validate()

    def validate(self) -> None:
        for root in self.elements:
            for elem in root.walk():
                if elem.virtual:
                    raise TemplateError("RDB mapping does not support virtual nodes")
                if elem.query is not None and elem.query.logic > QueryLogic.CQ:
                    raise TemplateError("rdb_node expressions are conjunctive queries")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(CQ, tuple, normal)`` transducer."""
        return compile_template(self.root_tag, self.elements, self.name)


def dad_sql_mapping(
    root_tag: str, query: Query, column_tags: Sequence[str], name: str = "dad-sql-mapping"
) -> DadSqlMappingView:
    """Terse constructor for the SQL-mapping flavour."""
    return DadSqlMappingView(root_tag, query, tuple(column_tags), name)
