"""IBM / Oracle ``SQL/XML`` (xmlelement, xmlforest, xmlagg, ...).

SQL/XML builds a fixed-depth tree from nested queries; IBM DB2 additionally
allows recursive SQL (common table expressions) inside the queries, so the
paper places DB2's SQL/XML in ``PTnr(IFP, tuple, normal)`` and Oracle's in
``PTnr(FO, tuple, normal)``.  The specification object is a tree template
whose queries may be CQ, FO or IFP, restricted to tuple information passing
and no virtual nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.languages.common import TemplateElement, TemplateError, compile_template
from repro.logic.base import QueryLogic


@dataclass(frozen=True)
class SqlXmlView:
    """A SQL/XML view: nested xmlelement constructors with embedded queries.

    ``allow_recursive_sql`` distinguishes IBM's dialect (recursive common
    table expressions, i.e. IFP query payloads) from Oracle's (plain FO).
    """

    root_tag: str
    elements: tuple[TemplateElement, ...]
    allow_recursive_sql: bool = True
    name: str = "sqlxml-view"

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))
        self.validate()

    def validate(self) -> None:
        limit = QueryLogic.IFP if self.allow_recursive_sql else QueryLogic.FO
        for root in self.elements:
            for elem in root.walk():
                if elem.virtual:
                    raise TemplateError("SQL/XML does not support virtual nodes")
                if elem.query is not None and elem.query.logic > limit:
                    raise TemplateError(
                        f"SQL/XML query logic {elem.query.logic} exceeds the dialect limit {limit}"
                    )
                if (
                    elem.group_arity is not None
                    and elem.query is not None
                    and elem.group_arity != elem.query.arity
                ):
                    raise TemplateError("SQL/XML passes information via correlation (tuple registers)")

    def compile(self) -> PublishingTransducer:
        """Compile into a ``PTnr(IFP, tuple, normal)`` (or FO) transducer."""
        return compile_template(self.root_tag, self.elements, self.name)


def sql_xml(
    root_tag: str,
    elements: Sequence[TemplateElement],
    allow_recursive_sql: bool = True,
    name: str = "sqlxml-view",
) -> SqlXmlView:
    """Terse constructor."""
    return SqlXmlView(root_tag, tuple(elements), allow_recursive_sql, name)
