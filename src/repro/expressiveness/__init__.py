"""Expressiveness of publishing transducers as relational query languages.

Reproduces the Table III characterisations (Theorem 3, Propositions 4 and 6)
as executable translations and empirical agreement checks, and the separation
witnesses of Proposition 4/5.
"""

from repro.expressiveness.capture import (
    TABLE_III,
    ExpressivenessEntry,
    nonrecursive_transducer_to_ucq,
    queries_agree,
    relational_language_of,
)
from repro.expressiveness.separations import (
    dtd_choice_language,
    path_through_constant_transducer,
    simple_path_counting_transducer,
)

__all__ = [
    "ExpressivenessEntry",
    "TABLE_III",
    "dtd_choice_language",
    "nonrecursive_transducer_to_ucq",
    "path_through_constant_transducer",
    "queries_agree",
    "relational_language_of",
    "simple_path_counting_transducer",
]
