"""Table III: the relational expressive power of every fragment.

Theorem 3 and Propositions 4/6 characterise each class ``PT(L, S, O)`` -- and
each non-recursive class -- as a known relational query language or complexity
class.  This module records the table, implements the constructive
translation ``PTnr(CQ, tuple, O) -> UCQ`` of Proposition 6(1), and provides an
empirical agreement harness used by the Table III benchmarks (the other
directions of Theorem 3 live in :mod:`repro.datalog.translate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.composition import composed_queries_to_tag
from repro.core.classes import OutputKind, StoreKind, TransducerClass, classify
from repro.core.dependency import DependencyGraph
from repro.core.transducer import PublishingTransducer
from repro.logic.base import Query, QueryLogic
from repro.logic.cq import UnionOfConjunctiveQueries
from repro.relational.instance import Instance


@dataclass(frozen=True)
class ExpressivenessEntry:
    """One row of Table III."""

    fragment: str
    characterisation: str
    reference: str

    def __str__(self) -> str:
        return f"{self.fragment} = {self.characterisation} ({self.reference})"


#: Table III of the paper (relational query power).
TABLE_III: tuple[ExpressivenessEntry, ...] = (
    ExpressivenessEntry("PT(IFP, relation, O)", "PSPACE", "Thm. 3(4)"),
    ExpressivenessEntry("PT(FO, relation, O)", "PSPACE", "Thm. 3(4)"),
    ExpressivenessEntry("PT(IFP, tuple, O)", "IFP (PTIME on ordered databases)", "Thm. 3(5)"),
    ExpressivenessEntry("PT(FO, tuple, O)", "LinDatalog(FO) (NLOGSPACE on ordered databases)", "Thm. 3(3)"),
    ExpressivenessEntry("PT(CQ, tuple, O)", "LinDatalog", "Thm. 3(2)"),
    ExpressivenessEntry("PTnr(IFP, tuple, O)", "IFP", "Prop. 6(3)"),
    ExpressivenessEntry("PTnr(FO, tuple, O)", "FO", "Prop. 6(2)"),
    ExpressivenessEntry("PTnr(CQ, tuple, O)", "UCQ", "Prop. 6(1)"),
)


def relational_language_of(fragment: TransducerClass) -> ExpressivenessEntry:
    """Look up the Table III characterisation covering ``fragment``."""
    logic_name = str(fragment.logic)
    store_name = str(fragment.store)
    prefix = "PT" if fragment.recursive else "PTnr"
    wanted = f"{prefix}({logic_name}, {store_name}, O)"
    for entry in TABLE_III:
        if entry.fragment == wanted:
            return entry
    # Relation-store non-recursive fragments are covered by their recursive rows.
    fallback = f"PT({logic_name}, {store_name}, O)"
    for entry in TABLE_III:
        if entry.fragment == fallback:
            return entry
    raise KeyError(f"no Table III row covers {fragment}")


def nonrecursive_transducer_to_ucq(
    transducer: PublishingTransducer,
    output_tag: str,
    max_paths: int | None = 10_000,
) -> UnionOfConjunctiveQueries:
    """Proposition 6(1): a ``PTnr(CQ, tuple, O)`` transducer, viewed as a relational
    query, equals the union of the CQ compositions along all dependency-graph
    paths from the root to the output tag."""
    fragment = classify(transducer)
    if fragment.recursive:
        raise ValueError("the UCQ translation applies to non-recursive transducers only")
    if fragment.logic is not QueryLogic.CQ or fragment.store is not StoreKind.TUPLE:
        raise ValueError("the UCQ translation applies to CQ transducers with tuple registers")
    queries = composed_queries_to_tag(transducer, output_tag, max_paths=max_paths)
    satisfiable = [q for q in queries if q.is_satisfiable()]
    if not satisfiable:
        # An unsatisfiable placeholder keeps the UCQ well-formed and empty.
        from repro.logic.builders import empty_cq

        arity = transducer.register_arity(output_tag)
        return UnionOfConjunctiveQueries([empty_cq([f"o{i}" for i in range(arity)])])
    return UnionOfConjunctiveQueries(satisfiable)


def queries_agree(left: Query, right: Query, instances: Iterable[Instance]) -> bool:
    """Empirical agreement of two queries on a set of instances."""
    return all(left.evaluate(instance) == right.evaluate(instance) for instance in instances)


def transducer_depth_bound(transducer: PublishingTransducer) -> int:
    """Depth bound of a non-recursive transducer (used by Proposition 3 benchmarks)."""
    return DependencyGraph(transducer).depth() + 1


def describe_table_iii() -> list[str]:
    """Printable Table III rows."""
    return [str(entry) for entry in TABLE_III]


def output_kind_irrelevant(fragment: TransducerClass) -> TransducerClass:
    """Theorem 3(1): virtual nodes do not change the induced relational query."""
    return TransducerClass(fragment.logic, fragment.store, OutputKind.NORMAL, fragment.recursive)
