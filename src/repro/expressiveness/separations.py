"""Separation witnesses from Propositions 4 and 5 and Theorem 5.

Each function builds the concrete transducer (or tree language) used in the
paper to separate two fragments; tests exercise them to confirm the claimed
behaviour on witness instances.
"""

from __future__ import annotations

from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.xmltree.dtd import DTD, alt


def path_through_constant_transducer(
    source: str = "c1", middle: str = "c2", target: str = "c3"
) -> PublishingTransducer:
    """Proposition 4(5)-style witness: a ``PT(CQ, relation, normal)`` query
    exploiting relation registers.

    The relation register of the ``a``-chain holds, at depth ``k``, all pairs
    connected by a walk of length exactly ``k``; the output pair
    ``(source, target)`` is emitted when some register simultaneously
    witnesses a walk ``source -> middle`` and a walk ``middle -> target`` --
    the two-joined-reachability pattern the paper uses to separate relation
    registers from tuple registers (plain reachability alone would still be
    LinDatalog-expressible).
    """
    y1, y2, y = Variable("y1"), Variable("y2"), Variable("y")
    phi = ConjunctiveQuery(
        (y1, y2),
        (RelationAtom("E", (y1, y2)),),
    )
    phi1 = ConjunctiveQuery(
        (y1, y2),
        (RelationAtom("Reg_a", (y1, y)), RelationAtom("E", (y, y2))),
    )
    phi2 = ConjunctiveQuery(
        (y1, y2),
        (
            RelationAtom("Reg_a", (Constant(source), Constant(middle))),
            RelationAtom("Reg_a", (Constant(middle), Constant(target))),
        ),
        (equality(y1, Constant(source)), equality(y2, Constant(target))),
    )
    rules = [
        TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(phi, 0)),)),
        TransductionRule(
            "q",
            "a",
            (
                RuleItem("q", "a", RuleQuery(phi1, 0)),
                RuleItem("q", "ao", RuleQuery(phi2, 0)),
            ),
        ),
        TransductionRule("q", "ao", ()),
    ]
    return make_transducer(
        rules,
        start_state="q0",
        root_tag="r",
        register_arities={"a": 2, "ao": 2},
        name="path-through-constant",
    )


def simple_path_counting_transducer(
    source: str = "s", target: str = "t"
) -> PublishingTransducer:
    """Proposition 5(10, 11): a ``PT(CQ, tuple, virtual)`` tree mapping outside
    ``PT(FO, relation, normal)``.

    The output tree is ``r(a ... a)`` with one ``a``-leaf per simple path from
    ``source`` to ``target`` in the edge relation ``R`` -- a counting behaviour
    no normal-output FO transducer can produce.
    """
    x, y = Variable("x"), Variable("y")
    start = ConjunctiveQuery((x,), (RelationAtom("R", (Constant(source), x)),))
    step = ConjunctiveQuery((x,), (RelationAtom("Reg_v", (y,)), RelationAtom("R", (y, x))))
    arrived = ConjunctiveQuery(
        (x,),
        (RelationAtom("Reg_v", (y,)),),
        (equality(y, Constant(target)), equality(x, Constant(target))),
    )
    rules = [
        TransductionRule("q0", "r", (RuleItem("q", "v", RuleQuery(start, 1)),)),
        TransductionRule(
            "q",
            "v",
            (
                RuleItem("q", "v", RuleQuery(step, 1)),
                RuleItem("q", "a", RuleQuery(arrived, 1)),
            ),
        ),
        TransductionRule("q", "a", ()),
    ]
    return make_transducer(
        rules,
        start_state="q0",
        root_tag="r",
        virtual_tags={"v"},
        name="simple-path-counter",
    )


def dtd_choice_language() -> DTD:
    """Theorem 5: the DTD ``a -> b1 + b2`` that no monotone (CQ) transducer defines.

    The language contains the two trees ``a(b1)`` and ``a(b2)`` but not
    ``a(b1, b2)``; monotonicity of CQ forces any transducer producing the first
    two trees (on instances ``I1``, ``I2``) to produce a tree containing both
    children on ``I1 ∪ I2``.
    """
    return DTD("a", {"a": alt("b1", "b2")})
