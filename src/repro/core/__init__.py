"""The paper's primary contribution: publishing transducers ``PT(L, S, O)``.

A publishing transducer (Definition 3.1) is a deterministic, top-down,
finite-state machine ``tau = (Q, Sigma, Theta, q0, delta[, Sigma_e])`` that
builds an XML tree from a relational instance: at every node it issues the
queries of the applicable transduction rule against the source and the node's
register, groups the answers, and spawns one child per group.  The process
stops at a leaf when the paper's *stop condition* holds (an ancestor repeats
the leaf's state, tag and register content).

Public surface:

* :class:`~repro.core.rules.RuleQuery` and
  :class:`~repro.core.rules.TransductionRule` -- the rule syntax
  ``(q, a) -> (q1, a1, phi1(x; y)), ...``;
* :class:`~repro.core.transducer.PublishingTransducer` -- the machine;
* :func:`~repro.core.runtime.publish` /
  :class:`~repro.core.runtime.TransducerRuntime` -- evaluation;
* :mod:`~repro.core.classes` -- classification into the fragments
  ``PT(L, S, O)`` / ``PTnr(L, S, O)``;
* :mod:`~repro.core.dependency` -- the dependency graph and recursion test;
* :mod:`~repro.core.relational_query` -- a transducer viewed as a relational
  query (Section 6.1).
"""

from repro.core.classes import OutputKind, StoreKind, TransducerClass, classify
from repro.core.dependency import DependencyGraph
from repro.core.relational_query import TransducerRelationalQuery, output_relation
from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.runtime import (
    AnnotatedNode,
    TransducerRuntime,
    TransformationLimitError,
    TransformationResult,
    publish,
)
from repro.core.transducer import PublishingTransducer, TransducerDefinitionError

__all__ = [
    "AnnotatedNode",
    "DependencyGraph",
    "OutputKind",
    "PublishingTransducer",
    "RuleItem",
    "RuleQuery",
    "StoreKind",
    "TransducerClass",
    "TransducerDefinitionError",
    "TransducerRelationalQuery",
    "TransducerRuntime",
    "TransductionRule",
    "TransformationLimitError",
    "TransformationResult",
    "classify",
    "output_relation",
    "publish",
]
