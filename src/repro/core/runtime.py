"""The transformation engine: evaluating a publishing transducer on an instance.

The runtime follows the step relation of Section 3 literally:

1. start with a single node labelled ``(q0, root)`` carrying an empty
   register;
2. repeatedly pick an unexpanded leaf ``u`` labelled ``(q, a)``;
3. if an ancestor of ``u`` carries the same state, tag and register content,
   the **stop condition** fires and ``u`` becomes a plain ``a``-leaf;
4. otherwise evaluate each rule query ``phi_i(x; y)`` over ``I`` extended with
   ``Reg_a(u)``, group the answers by the values of ``x``, and spawn one child
   per group, ordering the children of each query by the implicit order on the
   domain and concatenating the per-query lists in rule order;
5. when no unexpanded leaves remain, strip states and registers and splice out
   virtual nodes to obtain the output Σ-tree.

Proposition 1(1) guarantees termination; Proposition 1(3, 4) show that output
trees can be exponentially (tuple stores) or doubly exponentially (relation
stores) large, so the runtime enforces a configurable node budget and raises
:class:`TransformationLimitError` beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.rules import GENERIC_REGISTER_NAME, RuleQuery, register_relation_name
from repro.core.transducer import PublishingTransducer
from repro.core.virtual import eliminate_virtual_nodes, strip_annotations
from repro.relational.domain import DataValue, relation_to_text, tuple_order_key
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema
from repro.xmltree.tree import TEXT_TAG, TreeNode

#: Default ceiling on the number of generated nodes (including virtual ones).
DEFAULT_MAX_NODES = 200_000

#: A register content: a set of equal-width tuples over the domain.
RegisterContent = frozenset[tuple[DataValue, ...]]


class TransformationLimitError(RuntimeError):
    """The transformation exceeded the configured node budget.

    The paper shows (Proposition 1) that outputs can be doubly exponential in
    the input size for relation stores; this error protects callers that feed
    adversarial inputs to such transducers.
    """


@dataclass
class AnnotatedNode:
    """A node of the intermediate tree in ``Tree_{Q x Sigma}``.

    Until finalised the node is labelled by the pair ``(state, tag)``; once
    expansion at the node has finished the state is conceptually dropped
    (``finalized`` becomes true) but kept for inspection.
    """

    state: str
    tag: str
    register: RegisterContent
    parent: "AnnotatedNode | None" = None
    children: list["AnnotatedNode"] = field(default_factory=list)
    finalized: bool = False
    stopped_by_condition: bool = False
    text: str | None = None

    def ancestors(self) -> Iterator["AnnotatedNode"]:
        """Proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def walk(self) -> Iterator["AnnotatedNode"]:
        """Pre-order traversal of the annotated subtree.

        Iterative: the stop condition permits depths around
        ``|Q| * |Sigma| * 2^|I|``, far beyond Python's recursion limit.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def depth(self) -> int:
        """Depth of the annotated subtree (single node = 1)."""
        best = 1
        stack: list[tuple["AnnotatedNode", int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def size(self) -> int:
        """Number of nodes in the annotated subtree."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


@dataclass
class TransformationResult:
    """The outcome of running a transducer on an instance."""

    transducer: PublishingTransducer
    instance: Instance
    extended_root: AnnotatedNode
    tree: TreeNode
    steps: int

    @property
    def node_count(self) -> int:
        """Number of nodes of the *extended* tree (before virtual elimination)."""
        return self.extended_root.size()

    @property
    def output_size(self) -> int:
        """Number of nodes of the output Σ-tree."""
        return self.tree.size()

    def nodes_with_tag(self, tag: str) -> list[AnnotatedNode]:
        """Annotated nodes carrying the given tag (document order)."""
        return [node for node in self.extended_root.walk() if node.tag == tag]

    def output_relation(self, tag: str) -> frozenset[tuple[DataValue, ...]]:
        """Union of the registers of all ``tag``-nodes (Section 6.1)."""
        rows: set[tuple[DataValue, ...]] = set()
        for node in self.nodes_with_tag(tag):
            rows |= node.register
        return frozenset(rows)


class TransducerRuntime:
    """Evaluates one transducer; reusable across instances."""

    def __init__(
        self,
        transducer: PublishingTransducer,
        max_nodes: int = DEFAULT_MAX_NODES,
    ) -> None:
        self._transducer = transducer
        self._max_nodes = max_nodes

    @property
    def transducer(self) -> PublishingTransducer:
        return self._transducer

    # -- the main loop -----------------------------------------------------------

    def run(self, instance: Instance) -> TransformationResult:
        """Run the transformation on ``instance`` and return the full result."""
        transducer = self._transducer
        problems = transducer.validate_against_schema(instance.schema)
        if problems:
            raise ValueError("; ".join(problems))
        root = AnnotatedNode(
            state=transducer.start_state,
            tag=transducer.root_tag,
            register=frozenset(),
        )
        frontier: list[AnnotatedNode] = [root]
        node_budget = self._max_nodes
        produced = 1
        steps = 0
        while frontier:
            node = frontier.pop()
            if node.finalized:
                continue
            steps += 1
            children = self._expand(node, instance)
            node.finalized = True
            if children is None:
                continue
            produced += len(children)
            if produced > node_budget:
                raise TransformationLimitError(
                    f"transformation exceeded the node budget of {node_budget} nodes; "
                    f"raise max_nodes if the blow-up is intended"
                )
            node.children = children
            # Depth-first expansion; order within the frontier does not affect
            # the result because the transformation is confluent (each leaf's
            # subtree depends only on its own state, tag and register).
            frontier.extend(reversed(children))
        tree = self._finalize_tree(root)
        return TransformationResult(transducer, instance, root, tree, steps)

    # -- one expansion step --------------------------------------------------------

    def _expand(self, node: AnnotatedNode, instance: Instance) -> list[AnnotatedNode] | None:
        transducer = self._transducer
        # Stop condition (condition (1) of the step relation).
        for ancestor in node.ancestors():
            if (
                ancestor.state == node.state
                and ancestor.tag == node.tag
                and ancestor.register == node.register
            ):
                node.stopped_by_condition = True
                return None
        rule_ = transducer.rule_for(node.state, node.tag)
        if node.tag == TEXT_TAG:
            node.text = relation_to_text(node.register)
            return None
        if rule_.is_leaf_rule:
            return None
        extended = self._instance_with_register(instance, node)
        children: list[AnnotatedNode] = []
        for item in rule_.items:
            for register in self._grouped_registers(item.query, extended):
                children.append(
                    AnnotatedNode(
                        state=item.state,
                        tag=item.tag,
                        register=register,
                        parent=node,
                    )
                )
        return children

    def _instance_with_register(self, instance: Instance, node: AnnotatedNode) -> Instance:
        arity = self._transducer.register_arity(node.tag)
        if node.register:
            arity = len(next(iter(node.register)))
        generic = GENERIC_REGISTER_NAME
        specific = register_relation_name(node.tag)
        extra_schema = [RelationSchema(generic, arity), RelationSchema(specific, arity)]
        return instance.extended(
            {generic: node.register, specific: node.register}, extra_schema
        )

    @staticmethod
    def _grouped_registers(query: RuleQuery, instance: Instance) -> list[RegisterContent]:
        """Evaluate a rule query and group its answers into child registers."""
        answers = query.query.evaluate(instance)
        if not answers:
            return []
        group_arity = query.group_arity
        if group_arity == 0:
            return [frozenset(answers)]
        groups: dict[tuple[DataValue, ...], set[tuple[DataValue, ...]]] = {}
        for row in answers:
            groups.setdefault(row[:group_arity], set()).add(row)
        ordered_keys = sorted(groups, key=tuple_order_key)
        return [frozenset(groups[key]) for key in ordered_keys]

    # -- output construction ----------------------------------------------------------

    def _finalize_tree(self, root: AnnotatedNode) -> TreeNode:
        stripped = strip_annotations(root)
        return eliminate_virtual_nodes(stripped, self._transducer.virtual_tags)


def publish(
    transducer: PublishingTransducer,
    instance: Instance,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> TreeNode:
    """Evaluate ``transducer`` on ``instance`` and return the output Σ-tree ``tau(I)``.

    Thin wrapper over the compiled engine (:mod:`repro.engine`); the plan is
    compiled per call, so callers evaluating one transducer repeatedly should
    hold a plan via :func:`repro.engine.compile_plan` instead.
    """
    from repro.engine.plan import compile_plan

    return compile_plan(transducer, max_nodes=max_nodes).publish(instance)


def publish_full(
    transducer: PublishingTransducer,
    instance: Instance,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> TransformationResult:
    """Evaluate ``transducer`` on ``instance`` and return the full result object.

    Thin wrapper over the compiled engine (:mod:`repro.engine`); see
    :func:`publish`.  The literal step-relation interpreter remains available
    as :class:`TransducerRuntime` and serves as the engine's executable
    specification in the test suite.
    """
    from repro.engine.plan import compile_plan

    return compile_plan(transducer, max_nodes=max_nodes).publish_full(instance)
