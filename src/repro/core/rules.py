"""Transduction rules ``(q, a) -> (q1, a1, phi1(x; y)), ..., (qk, ak, phik(x; y))``.

Every query in a rule is a :class:`RuleQuery`: a relational query whose head
is the concatenation ``x ++ y`` of the *grouping* variables ``x`` and the
*register* variables ``y``.  The runtime groups the answer set by the values
of ``x``; each group becomes one child whose register stores the group
(Section 3, "Transformations"):

* ``|y| = 0`` -- the result is grouped by the entire tuple, each child carries
  a single tuple: a **tuple register**;
* ``|x| = 0`` -- no grouping, a single child carries the whole answer set: a
  **relation register**;
* otherwise each child carries ``{d} x {e | phi(d; e)}`` for one value ``d``
  of ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.logic.base import Query, QueryLogic
from repro.logic.terms import Variable

#: Reserved relation name under which the parent register is always visible.
GENERIC_REGISTER_NAME = "Reg"


def register_relation_name(tag: str) -> str:
    """The tag-specific name under which the register of an ``a``-node is visible."""
    return f"Reg_{tag}"


@dataclass(frozen=True)
class RuleQuery:
    """A query ``phi(x; y)`` of a transduction rule.

    Parameters
    ----------
    query:
        The underlying relational query; its head must be ``x ++ y``.
    group_arity:
        The number ``|x|`` of grouping variables (a prefix of the head).
    """

    query: Query
    group_arity: int

    def __post_init__(self) -> None:
        if not 0 <= self.group_arity <= self.query.arity:
            raise ValueError(
                f"group arity {self.group_arity} out of range for a query of arity {self.query.arity}"
            )

    @property
    def register_arity(self) -> int:
        """The arity of the child registers produced by this query (``|x| + |y|``)."""
        return self.query.arity

    @property
    def group_variables(self) -> tuple[Variable, ...]:
        """The grouping variables ``x``."""
        return self.query.head[: self.group_arity]

    @property
    def register_variables(self) -> tuple[Variable, ...]:
        """The non-grouped variables ``y``."""
        return self.query.head[self.group_arity:]

    @property
    def is_tuple_query(self) -> bool:
        """True when ``|y| = 0``, i.e. the children carry tuple registers."""
        return self.group_arity == self.query.arity

    @property
    def logic(self) -> QueryLogic:
        """The logic of the underlying query."""
        return self.query.logic

    def uses_register(self) -> bool:
        """True when the query reads the parent register."""
        return any(
            name == GENERIC_REGISTER_NAME or name.startswith("Reg_")
            for name in self.query.relation_names()
        )

    def __str__(self) -> str:
        xs = ", ".join(v.name for v in self.group_variables) or "()"
        ys = ", ".join(v.name for v in self.register_variables) or "()"
        return f"phi({xs}; {ys})[{self.query}]"


def tuple_query(query: Query) -> RuleQuery:
    """Wrap a query so that the whole head is the grouping tuple (``|y| = 0``)."""
    return RuleQuery(query, query.arity)


def relation_query(query: Query, group_arity: int = 0) -> RuleQuery:
    """Wrap a query grouping only on a prefix of the head (``|y| > 0``)."""
    return RuleQuery(query, group_arity)


@dataclass(frozen=True)
class RuleItem:
    """One item ``(state, tag, phi)`` on the right-hand side of a rule."""

    state: str
    tag: str
    query: RuleQuery

    def __str__(self) -> str:
        return f"({self.state}, {self.tag}, {self.query})"


@dataclass(frozen=True)
class TransductionRule:
    """A rule ``(state, tag) -> item1, ..., itemk`` (``k = 0`` for leaf rules)."""

    state: str
    tag: str
    items: tuple[RuleItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    @property
    def is_leaf_rule(self) -> bool:
        """True when the right-hand side is empty."""
        return not self.items

    def child_pairs(self) -> tuple[tuple[str, str], ...]:
        """The ``(state, tag)`` pairs on the right-hand side, in order."""
        return tuple((item.state, item.tag) for item in self.items)

    def queries(self) -> tuple[RuleQuery, ...]:
        """The rule queries, in right-hand-side order."""
        return tuple(item.query for item in self.items)

    def __str__(self) -> str:
        if not self.items:
            return f"({self.state}, {self.tag}) -> ."
        rhs = ", ".join(str(item) for item in self.items)
        return f"({self.state}, {self.tag}) -> {rhs}"


def rule(
    state: str,
    tag: str,
    items: Iterable[tuple[str, str, RuleQuery] | RuleItem] = (),
) -> TransductionRule:
    """Terse rule constructor accepting either :class:`RuleItem` or triples."""
    resolved = tuple(
        item if isinstance(item, RuleItem) else RuleItem(item[0], item[1], item[2])
        for item in items
    )
    return TransductionRule(state, tag, resolved)


def leaf_rule(state: str, tag: str) -> TransductionRule:
    """A rule with empty right-hand side."""
    return TransductionRule(state, tag, ())


def check_rule_queries(rule_: TransductionRule, register_arities: dict[str, int]) -> list[str]:
    """Validate a rule against the arity assignment ``Theta``.

    Returns a list of human-readable problems (empty when the rule is fine):
    every item's query must produce registers of the arity ``Theta`` assigns
    to the item's tag.
    """
    problems: list[str] = []
    for item in rule_.items:
        expected = register_arities.get(item.tag)
        if expected is None:
            problems.append(f"tag {item.tag!r} has no register arity assigned")
            continue
        if item.query.register_arity != expected:
            problems.append(
                f"rule {rule_.state}/{rule_.tag}: query for child tag {item.tag!r} produces "
                f"registers of arity {item.query.register_arity}, expected {expected}"
            )
    return problems
