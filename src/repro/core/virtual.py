"""Turning the extended tree into the output Σ-tree.

Two post-processing steps produce ``tau(I)`` from the result ``xi`` of the
transformation (Section 3):

1. **stripping** -- remove states and registers, keeping only tags (and the
   PCDATA of ``text`` leaves);
2. **virtual-node elimination** -- repeatedly shortcut every node labelled
   with a virtual tag, i.e. replace it by its list of children in place,
   until no virtual tag remains.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.xmltree.tree import TreeNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.runtime import AnnotatedNode


def strip_annotations(node: "AnnotatedNode") -> TreeNode:
    """Strip states and registers from an annotated tree, keeping tags and text."""
    children = tuple(strip_annotations(child) for child in node.children)
    return TreeNode(node.tag, children, node.text)


def eliminate_virtual_nodes(node: TreeNode, virtual_tags: Iterable[str]) -> TreeNode:
    """Splice out every node whose tag is virtual.

    Virtual children are replaced, in place, by their own (already processed)
    children; the process is applied bottom-up, which reaches the fixpoint the
    paper describes ("the process continues until no node in the tree is
    labeled with a tag in Sigma_e") in a single pass.

    The root is never virtual (enforced by the transducer definition).
    """
    virtual = frozenset(virtual_tags)
    if not virtual:
        return node
    return _eliminate(node, virtual)


def _eliminate(node: TreeNode, virtual: frozenset[str]) -> TreeNode:
    new_children: list[TreeNode] = []
    for child in node.children:
        processed = _eliminate(child, virtual)
        if processed.label in virtual:
            new_children.extend(processed.children)
        else:
            new_children.append(processed)
    return TreeNode(node.label, tuple(new_children), node.text)
