"""Turning the extended tree into the output Σ-tree.

Two post-processing steps produce ``tau(I)`` from the result ``xi`` of the
transformation (Section 3):

1. **stripping** -- remove states and registers, keeping only tags (and the
   PCDATA of ``text`` leaves);
2. **virtual-node elimination** -- repeatedly shortcut every node labelled
   with a virtual tag, i.e. replace it by its list of children in place,
   until no virtual tag remains.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.xmltree.tree import TreeNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.runtime import AnnotatedNode


def strip_annotations(node: "AnnotatedNode") -> TreeNode:
    """Strip states and registers from an annotated tree, keeping tags and text.

    Iterative post-order construction: annotated trees reach depths around
    ``|Q| * |Sigma| * 2^|I|`` (the stop condition's bound), which blows
    through Python's recursion limit long before it exhausts memory.
    """
    # Each frame is (annotated node, next child index, built children).
    root_out: list[TreeNode] = []
    stack: list[tuple["AnnotatedNode", int, list[TreeNode]]] = [(node, 0, [])]
    while stack:
        current, index, built = stack[-1]
        if index < len(current.children):
            stack[-1] = (current, index + 1, built)
            stack.append((current.children[index], 0, []))
            continue
        stack.pop()
        finished = TreeNode(current.tag, tuple(built), current.text)
        if stack:
            stack[-1][2].append(finished)
        else:
            root_out.append(finished)
    return root_out[0]


def eliminate_virtual_nodes(node: TreeNode, virtual_tags: Iterable[str]) -> TreeNode:
    """Splice out every node whose tag is virtual.

    Virtual children are replaced, in place, by their own (already processed)
    children; the process is applied bottom-up, which reaches the fixpoint the
    paper describes ("the process continues until no node in the tree is
    labeled with a tag in Sigma_e") in a single pass.

    The root is never virtual (enforced by the transducer definition).
    """
    virtual = frozenset(virtual_tags)
    if not virtual:
        return node
    return _eliminate(node, virtual)


def _eliminate(node: TreeNode, virtual: frozenset[str]) -> TreeNode:
    """Iterative bottom-up elimination (recursion-safe on deep trees).

    A processed virtual child contributes its own children in place; a
    processed normal child contributes itself.
    """
    root_out: list[TreeNode] = []
    stack: list[tuple[TreeNode, int, list[TreeNode]]] = [(node, 0, [])]
    while stack:
        current, index, built = stack[-1]
        if index < len(current.children):
            stack[-1] = (current, index + 1, built)
            stack.append((current.children[index], 0, []))
            continue
        stack.pop()
        if stack:
            if current.label in virtual:
                stack[-1][2].extend(built)
            else:
                stack[-1][2].append(TreeNode(current.label, tuple(built), current.text))
        else:
            # The root is never virtual (enforced by the transducer definition).
            root_out.append(TreeNode(current.label, tuple(built), current.text))
    return root_out[0]
