"""Publishing transducers as relational queries (Section 6.1).

Fixing a designated, non-virtual output label ``a_o``, the *output relation*
induced by a transducer ``tau`` on an instance ``I`` is the union of the
registers of all ``a_o``-labelled nodes of the final extended tree ``xi``.
Viewed this way every class ``PT(L, S, O)`` becomes a relational query
language, which is how Theorem 3 and Proposition 6 characterise their
expressive power (LinDatalog, LinDatalog(FO), IFP, PSPACE, UCQ, FO, ...).
"""

from __future__ import annotations

from repro.core.runtime import TransducerRuntime, publish_full
from repro.core.transducer import PublishingTransducer
from repro.logic.base import Query, QueryLogic
from repro.logic.terms import Variable
from repro.relational.domain import DataValue
from repro.relational.instance import Instance


def output_relation(
    transducer: PublishingTransducer,
    instance: Instance,
    output_tag: str,
    max_nodes: int | None = None,
) -> frozenset[tuple[DataValue, ...]]:
    """The output relation ``R_tau(I)`` for the designated label ``output_tag``."""
    if output_tag in transducer.virtual_tags:
        raise ValueError("the designated output label must not be a virtual tag")
    kwargs = {} if max_nodes is None else {"max_nodes": max_nodes}
    result = publish_full(transducer, instance, **kwargs)
    return result.output_relation(output_tag)


class TransducerRelationalQuery(Query):
    """Adapter presenting a transducer + output label as an ordinary query.

    The head variables are synthesised (``o1 .. ok`` with ``k`` the register
    arity of the output tag) so the adapter can be compared against genuine
    CQ/FO/IFP/Datalog queries in the expressiveness benchmarks of Table III.
    """

    def __init__(
        self,
        transducer: PublishingTransducer,
        output_tag: str,
        max_nodes: int | None = None,
    ) -> None:
        if output_tag in transducer.virtual_tags:
            raise ValueError("the designated output label must not be a virtual tag")
        self._transducer = transducer
        self._output_tag = output_tag
        self._max_nodes = max_nodes
        arity = transducer.register_arity(output_tag)
        self._head = tuple(Variable(f"o{i + 1}") for i in range(arity))

    @property
    def transducer(self) -> PublishingTransducer:
        """The underlying transducer."""
        return self._transducer

    @property
    def output_tag(self) -> str:
        """The designated output label ``a_o``."""
        return self._output_tag

    @property
    def head(self) -> tuple[Variable, ...]:
        return self._head

    @property
    def logic(self) -> QueryLogic:
        return self._transducer.logic()

    def relation_names(self) -> frozenset[str]:
        return self._transducer.source_relation_names()

    def constants(self) -> frozenset[DataValue]:
        values: set[DataValue] = set()
        for rule_query in self._transducer.all_rule_queries():
            values |= rule_query.query.constants()
        return frozenset(values)

    def evaluate(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        if self._max_nodes is None:
            runtime = TransducerRuntime(self._transducer)
        else:
            runtime = TransducerRuntime(self._transducer, max_nodes=self._max_nodes)
        return runtime.run(instance).output_relation(self._output_tag)
