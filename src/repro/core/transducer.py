"""The publishing transducer ``tau = (Q, Sigma, Theta, q0, delta[, Sigma_e])``.

Definition 3.1 of the paper, with virtual tags (Section 3, "Virtual versus
normal nodes") folded into the same class: a transducer without virtual tags
simply has ``virtual_tags = frozenset()``.

Determinism is enforced syntactically: for every pair ``(q, a)`` with ``q``
a non-start state and ``a`` a non-root tag -- plus the start pair
``(q0, root)`` -- there is at most one rule, and the runtime only ever looks
up that rule.  Missing rules are treated as empty right-hand sides, which is a
convenience the paper also uses implicitly for ``text``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.rules import (
    GENERIC_REGISTER_NAME,
    RuleItem,
    RuleQuery,
    TransductionRule,
    check_rule_queries,
    register_relation_name,
)
from repro.logic.base import QueryLogic
from repro.relational.schema import RelationalSchema
from repro.xmltree.tree import TEXT_TAG


class TransducerDefinitionError(ValueError):
    """Raised when a transducer definition violates Definition 3.1."""


@dataclass(frozen=True)
class PublishingTransducer:
    """A publishing transducer.

    Parameters
    ----------
    states:
        The finite set ``Q`` of states.
    alphabet:
        The tag alphabet ``Sigma`` (must contain ``root_tag``; ``text`` is
        added automatically when any rule mentions it).
    register_arities:
        The arity assignment ``Theta``: a mapping from tags to register
        arities.  ``Theta(root) = 0`` is enforced.
    start_state:
        The start state ``q0``.
    rules:
        The transduction rules ``delta``, one per ``(state, tag)`` pair.
    root_tag:
        The distinguished root tag ``r``.
    virtual_tags:
        The set ``Sigma_e`` of virtual tags (may be empty); must not contain
        the root tag.
    name:
        Optional human-readable name used in reports and benchmarks.
    """

    states: frozenset[str]
    alphabet: frozenset[str]
    register_arities: Mapping[str, int]
    start_state: str
    rules: tuple[TransductionRule, ...]
    root_tag: str = "r"
    virtual_tags: frozenset[str] = frozenset()
    name: str = "transducer"
    _rule_index: dict[tuple[str, str], TransductionRule] = field(
        default_factory=dict, compare=False, repr=False
    )
    _empty_rules: dict[tuple[str, str], TransductionRule] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "states", frozenset(self.states))
        alphabet = set(self.alphabet) | {self.root_tag}
        for rule_ in self.rules:
            alphabet.add(rule_.tag)
            for item in rule_.items:
                alphabet.add(item.tag)
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        object.__setattr__(self, "virtual_tags", frozenset(self.virtual_tags))
        arities = dict(self.register_arities)
        arities.setdefault(self.root_tag, 0)
        object.__setattr__(self, "register_arities", arities)
        object.__setattr__(self, "rules", tuple(self.rules))
        self._validate()
        index: dict[tuple[str, str], TransductionRule] = {}
        for rule_ in self.rules:
            index[(rule_.state, rule_.tag)] = rule_
        object.__setattr__(self, "_rule_index", index)
        object.__setattr__(self, "_empty_rules", {})

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        if self.start_state not in self.states:
            raise TransducerDefinitionError(
                f"start state {self.start_state!r} is not among the states"
            )
        if self.root_tag in self.virtual_tags:
            raise TransducerDefinitionError("the root tag cannot be virtual")
        if self.register_arities.get(self.root_tag, 0) != 0:
            raise TransducerDefinitionError("Theta(root) must be 0")
        seen: set[tuple[str, str]] = set()
        problems: list[str] = []
        for rule_ in self.rules:
            key = (rule_.state, rule_.tag)
            if key in seen:
                raise TransducerDefinitionError(
                    f"duplicate rule for (state, tag) = {key}; transducers are deterministic"
                )
            seen.add(key)
            if rule_.state not in self.states:
                raise TransducerDefinitionError(f"rule uses unknown state {rule_.state!r}")
            if rule_.tag == TEXT_TAG and rule_.items:
                raise TransducerDefinitionError("rules for the text tag must have an empty rhs")
            for item in rule_.items:
                if item.state not in self.states:
                    raise TransducerDefinitionError(
                        f"rule rhs uses unknown state {item.state!r}"
                    )
                if item.state == self.start_state:
                    raise TransducerDefinitionError(
                        "the start state may not appear on a rule right-hand side"
                    )
                if item.tag == self.root_tag:
                    raise TransducerDefinitionError(
                        "the root tag may not appear on a rule right-hand side"
                    )
            problems.extend(check_rule_queries(rule_, dict(self.register_arities)))
        if problems:
            raise TransducerDefinitionError("; ".join(problems))
        if (self.start_state, self.root_tag) not in seen:
            raise TransducerDefinitionError(
                f"missing start rule for ({self.start_state!r}, {self.root_tag!r})"
            )

    # -- lookup ---------------------------------------------------------------

    def rule_for(self, state: str, tag: str) -> TransductionRule:
        """The unique rule for ``(state, tag)``; an empty rule when undeclared.

        Undeclared lookups are a hot path of the runtime loop (every text and
        leaf node takes one), so the empty rules are allocated once per
        ``(state, tag)`` pair and cached rather than rebuilt on every call.
        """
        key = (state, tag)
        found = self._rule_index.get(key)
        if found is not None:
            return found
        cached = self._empty_rules.get(key)
        if cached is None:
            cached = TransductionRule(state, tag, ())
            self._empty_rules[key] = cached
        return cached

    def has_rule(self, state: str, tag: str) -> bool:
        """True when a rule for ``(state, tag)`` was declared explicitly."""
        return (state, tag) in self._rule_index

    @property
    def start_rule(self) -> TransductionRule:
        """The start rule ``(q0, root) -> ...``."""
        return self.rule_for(self.start_state, self.root_tag)

    def register_arity(self, tag: str) -> int:
        """The arity ``Theta(tag)`` of registers attached to ``tag``-nodes."""
        return self.register_arities.get(tag, 0)

    # -- structural properties -----------------------------------------------

    def all_rule_queries(self) -> tuple[RuleQuery, ...]:
        """Every rule query occurring in the transducer."""
        return tuple(item.query for rule_ in self.rules for item in rule_.items)

    def logic(self) -> QueryLogic:
        """The least logic containing every rule query (CQ when there are none)."""
        return QueryLogic.join(*(q.logic for q in self.all_rule_queries()))

    def uses_relation_registers(self) -> bool:
        """True when some rule query groups on a strict prefix (``|y| > 0``)."""
        return any(not q.is_tuple_query for q in self.all_rule_queries())

    def uses_virtual_nodes(self) -> bool:
        """True when the transducer declares virtual tags that a rule can emit."""
        emitted = {item.tag for rule_ in self.rules for item in rule_.items}
        return bool(self.virtual_tags & emitted)

    def normal_tags(self) -> frozenset[str]:
        """The non-virtual tags."""
        return self.alphabet - self.virtual_tags

    def source_relation_names(self) -> frozenset[str]:
        """Relation names of the source schema referenced by rule queries.

        Register relations (``Reg`` and ``Reg_<tag>``) are excluded.
        """
        names: set[str] = set()
        for query in self.all_rule_queries():
            for name in query.query.relation_names():
                if name == GENERIC_REGISTER_NAME or name.startswith("Reg_"):
                    continue
                names.add(name)
        return frozenset(names)

    def validate_against_schema(self, schema: RelationalSchema) -> list[str]:
        """Check that every source relation used by the rules exists in ``schema``."""
        problems = []
        for name in sorted(self.source_relation_names()):
            if name not in schema:
                problems.append(f"rule queries reference unknown source relation {name!r}")
        return problems

    def register_names_for(self, tag: str) -> tuple[str, str]:
        """The two relation names under which a ``tag``-node's register is visible."""
        return GENERIC_REGISTER_NAME, register_relation_name(tag)

    def describe(self) -> str:
        """A human-readable multi-line description of the transducer."""
        lines = [f"transducer {self.name}"]
        lines.append(f"  states: {', '.join(sorted(self.states))}")
        lines.append(f"  root tag: {self.root_tag}")
        if self.virtual_tags:
            lines.append(f"  virtual tags: {', '.join(sorted(self.virtual_tags))}")
        for rule_ in self.rules:
            lines.append(f"  {rule_}")
        return "\n".join(lines)


def make_transducer(
    rules: Iterable[TransductionRule],
    start_state: str,
    root_tag: str = "r",
    virtual_tags: Iterable[str] = (),
    register_arities: Mapping[str, int] | None = None,
    name: str = "transducer",
) -> PublishingTransducer:
    """Build a transducer, inferring ``Q``, ``Sigma`` and ``Theta`` from the rules.

    The register arity of a tag is inferred from the (necessarily unique)
    arity of the rule queries that spawn nodes with that tag; an explicit
    ``register_arities`` mapping overrides or supplements the inference.
    """
    rules = tuple(rules)
    states = {start_state}
    alphabet = {root_tag}
    inferred: dict[str, int] = {}
    for rule_ in rules:
        states.add(rule_.state)
        alphabet.add(rule_.tag)
        for item in rule_.items:
            states.add(item.state)
            alphabet.add(item.tag)
            arity = item.query.register_arity
            if item.tag in inferred and inferred[item.tag] != arity:
                raise TransducerDefinitionError(
                    f"conflicting register arities inferred for tag {item.tag!r}: "
                    f"{inferred[item.tag]} vs {arity}"
                )
            inferred.setdefault(item.tag, arity)
    if register_arities:
        inferred.update(register_arities)
    return PublishingTransducer(
        states=frozenset(states),
        alphabet=frozenset(alphabet),
        register_arities=inferred,
        start_state=start_state,
        rules=rules,
        root_tag=root_tag,
        virtual_tags=frozenset(virtual_tags),
        name=name,
    )
