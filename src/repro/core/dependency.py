"""The dependency graph ``G_tau`` of a publishing transducer.

Section 3: the dependency graph has one node per ``(state, tag)`` pair and an
edge from ``(q, a)`` to ``(q', a')`` whenever ``(q', a')`` occurs on the
right-hand side of the rule for ``(q, a)``.  A transducer is *recursive* iff
``G_tau`` has a cycle.  The emptiness and equivalence procedures of Section 5
analyse paths of this graph, composing the rule queries along them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.rules import RuleQuery
from repro.core.transducer import PublishingTransducer

#: A node of the dependency graph: a ``(state, tag)`` pair.
Node = tuple[str, str]


@dataclass(frozen=True)
class Edge:
    """An edge of the dependency graph, labelled by the rule query creating it."""

    source: Node
    target: Node
    query: RuleQuery
    item_index: int


class DependencyGraph:
    """The dependency graph of a transducer, with path enumeration utilities."""

    def __init__(self, transducer: PublishingTransducer) -> None:
        self._transducer = transducer
        self._edges: dict[Node, list[Edge]] = {}
        self._nodes: set[Node] = set()
        root: Node = (transducer.start_state, transducer.root_tag)
        self._root = root
        self._nodes.add(root)
        for rule_ in transducer.rules:
            source: Node = (rule_.state, rule_.tag)
            self._nodes.add(source)
            for index, item in enumerate(rule_.items):
                target: Node = (item.state, item.tag)
                self._nodes.add(target)
                self._edges.setdefault(source, []).append(Edge(source, target, item.query, index))

    # -- basic accessors -------------------------------------------------------

    @property
    def root(self) -> Node:
        """The start node ``(q0, root_tag)``."""
        return self._root

    @property
    def nodes(self) -> frozenset[Node]:
        """All ``(state, tag)`` nodes."""
        return frozenset(self._nodes)

    def edges_from(self, node: Node) -> tuple[Edge, ...]:
        """Out-edges of ``node`` in rule order."""
        return tuple(self._edges.get(node, ()))

    def edges(self) -> Iterator[Edge]:
        """All edges of the graph."""
        for outgoing in self._edges.values():
            yield from outgoing

    def successors(self, node: Node) -> tuple[Node, ...]:
        """Successor nodes of ``node`` in rule order."""
        return tuple(edge.target for edge in self.edges_from(node))

    # -- reachability and recursion --------------------------------------------

    def reachable_nodes(self, start: Node | None = None) -> frozenset[Node]:
        """Nodes reachable from ``start`` (default: the root)."""
        start = start or self._root
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for successor in self.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)

    def is_recursive(self) -> bool:
        """True iff the graph (restricted to reachable nodes) has a cycle."""
        reachable = self.reachable_nodes()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in reachable}

        def visit(node: Node) -> bool:
            colour[node] = GREY
            for successor in self.successors(node):
                if successor not in colour:
                    continue
                if colour[successor] == GREY:
                    return True
                if colour[successor] == WHITE and visit(successor):
                    return True
            colour[node] = BLACK
            return False

        return any(visit(node) for node in reachable if colour[node] == WHITE)

    def depth(self) -> int:
        """Length of the longest simple path from the root (the ``D`` of Theorem 2).

        For non-recursive transducers this bounds the depth of every output
        tree; for recursive ones it is the longest *simple* path and is used
        only by the small-model bounds.
        """
        best = 0
        for path in self.simple_paths_from_root():
            best = max(best, len(path))
        return best

    # -- path enumeration --------------------------------------------------------

    def simple_paths_from_root(
        self,
        target_predicate=None,
        max_paths: int | None = None,
    ) -> list[tuple[Edge, ...]]:
        """Enumerate simple paths (as edge sequences) starting at the root.

        ``target_predicate`` optionally filters paths by their final node; the
        enumeration never repeats a node within one path (simple paths), which
        is exactly what the NP emptiness procedure of Theorem 1(1) guesses.
        ``max_paths`` caps the enumeration for safety on large graphs.
        """
        results: list[tuple[Edge, ...]] = []

        def extend(node: Node, path: list[Edge], visited: set[Node]) -> None:
            if max_paths is not None and len(results) >= max_paths:
                return
            if path and (target_predicate is None or target_predicate(node)):
                results.append(tuple(path))
            for edge in self.edges_from(node):
                if edge.target in visited:
                    continue
                visited.add(edge.target)
                path.append(edge)
                extend(edge.target, path, visited)
                path.pop()
                visited.remove(edge.target)

        extend(self._root, [], {self._root})
        return results

    def paths_to_tag(self, tag: str, max_paths: int | None = None) -> list[tuple[Edge, ...]]:
        """Simple paths from the root ending at a node with the given tag."""
        return self.simple_paths_from_root(
            target_predicate=lambda node: node[1] == tag, max_paths=max_paths
        )

    # -- comparison (used by the equivalence procedure) ----------------------------

    def node_types(self) -> dict[Node, tuple[str, ...]]:
        """The *type* of every node: the de-duplicated run of child tags.

        Following the proof of Theorem 2, the type of ``(q, a)`` is the list of
        labels of the maximal runs of equal tags on the right-hand side of its
        rule.
        """
        types: dict[Node, tuple[str, ...]] = {}
        for node in self._nodes:
            rule_ = self._transducer.rule_for(*node)
            tags: list[str] = []
            for item in rule_.items:
                if not tags or tags[-1] != item.tag:
                    tags.append(item.tag)
            types[node] = tuple(tags)
        return types

    def __len__(self) -> int:
        return len(self._nodes)
