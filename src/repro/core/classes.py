"""Classification of transducers into the fragments ``PT(L, S, O)``.

The paper's fragment lattice has three axes (Section 3, "Fragments"):

* the logic ``L`` in ``{CQ, FO, IFP}`` (ordered by expressiveness),
* the store ``S`` in ``{tuple, relation}`` (tuple stores are the special case
  ``|y| = 0`` of relation stores),
* the output ``O`` in ``{normal, virtual}`` (normal transducers are the
  special case with no virtual tags),

plus the *non-recursive* restriction ``PTnr`` defined through the dependency
graph.  :func:`classify` computes the least fragment containing a given
transducer, which Table I uses to characterise the existing publishing
languages and Tables II/III use to look up complexity and expressiveness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.dependency import DependencyGraph
from repro.core.transducer import PublishingTransducer
from repro.logic.base import QueryLogic


class StoreKind(enum.IntEnum):
    """The register kind ``S``: tuple stores are a special case of relation stores."""

    TUPLE = 1
    RELATION = 2

    def __str__(self) -> str:
        return "tuple" if self is StoreKind.TUPLE else "relation"

    def includes(self, other: "StoreKind") -> bool:
        """True when this store kind subsumes ``other``."""
        return self >= other


class OutputKind(enum.IntEnum):
    """The output discipline ``O``: normal-only or with virtual nodes."""

    NORMAL = 1
    VIRTUAL = 2

    def __str__(self) -> str:
        return "normal" if self is OutputKind.NORMAL else "virtual"

    def includes(self, other: "OutputKind") -> bool:
        """True when this output kind subsumes ``other``."""
        return self >= other


@dataclass(frozen=True, order=False)
class TransducerClass:
    """A fragment ``PT(L, S, O)`` or ``PTnr(L, S, O)``."""

    logic: QueryLogic
    store: StoreKind
    output: OutputKind
    recursive: bool = True

    def __str__(self) -> str:
        name = "PT" if self.recursive else "PTnr"
        return f"{name}({self.logic}, {self.store}, {self.output})"

    # -- lattice structure -------------------------------------------------------

    def contains(self, other: "TransducerClass") -> bool:
        """Syntactic containment of fragments (not semantic expressiveness).

        ``PT(L, S, O)`` contains ``PT(L', S', O')`` when ``L >= L'``,
        ``S >= S'``, ``O >= O'`` and recursion is allowed whenever the smaller
        fragment allows it.  Non-recursive fragments are contained in their
        recursive counterparts.
        """
        if not self.recursive and other.recursive:
            return False
        return (
            self.logic.includes(other.logic)
            and self.store.includes(other.store)
            and self.output.includes(other.output)
        )

    def join(self, other: "TransducerClass") -> "TransducerClass":
        """The least fragment containing both."""
        return TransducerClass(
            QueryLogic.join(self.logic, other.logic),
            max(self.store, other.store),
            max(self.output, other.output),
            self.recursive or other.recursive,
        )

    def nonrecursive(self) -> "TransducerClass":
        """The non-recursive restriction of this fragment."""
        return TransducerClass(self.logic, self.store, self.output, recursive=False)

    @staticmethod
    def parse(text: str) -> "TransducerClass":
        """Parse a fragment name such as ``"PT(CQ, tuple, normal)"``."""
        text = text.strip()
        recursive = True
        if text.startswith("PTnr"):
            recursive = False
            body = text[len("PTnr"):]
        elif text.startswith("PT"):
            body = text[len("PT"):]
        else:
            raise ValueError(f"not a fragment name: {text!r}")
        body = body.strip().strip("()")
        parts = [part.strip() for part in body.split(",")]
        if len(parts) != 3:
            raise ValueError(f"fragment name needs three parameters: {text!r}")
        logic = QueryLogic[parts[0].upper()]
        store = StoreKind.TUPLE if parts[1].lower() == "tuple" else StoreKind.RELATION
        output = OutputKind.NORMAL if parts[2].lower() == "normal" else OutputKind.VIRTUAL
        return TransducerClass(logic, store, output, recursive)


#: The largest fragment considered in the paper.
LARGEST_CLASS = TransducerClass(QueryLogic.IFP, StoreKind.RELATION, OutputKind.VIRTUAL)

#: The smallest fragment considered in the paper.
SMALLEST_CLASS = TransducerClass(QueryLogic.CQ, StoreKind.TUPLE, OutputKind.NORMAL)


def classify(transducer: PublishingTransducer) -> TransducerClass:
    """The least fragment ``PT(L, S, O)`` / ``PTnr(L, S, O)`` containing ``transducer``."""
    logic = transducer.logic()
    store = StoreKind.RELATION if transducer.uses_relation_registers() else StoreKind.TUPLE
    output = OutputKind.VIRTUAL if transducer.uses_virtual_nodes() else OutputKind.NORMAL
    recursive = DependencyGraph(transducer).is_recursive()
    return TransducerClass(logic, store, output, recursive)


def all_fragments(include_nonrecursive: bool = True) -> list[TransducerClass]:
    """Enumerate every fragment of the paper's lattice (24 or 48 classes)."""
    fragments = []
    for logic in QueryLogic:
        for store in StoreKind:
            for output in OutputKind:
                fragments.append(TransducerClass(logic, store, output, recursive=True))
                if include_nonrecursive:
                    fragments.append(TransducerClass(logic, store, output, recursive=False))
    return fragments
