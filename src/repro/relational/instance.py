"""Relations and database instances.

An *instance* ``I`` of a relational schema ``R`` assigns a finite relation to
every relation name of ``R``.  Instances are immutable value objects: all
"mutating" operations return new instances, which keeps transducer evaluation,
query composition and the various proof constructions free of aliasing bugs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational.domain import DataValue, sort_tuples
from repro.relational.errors import ArityError, SchemaError, UnknownRelationError
from repro.relational.schema import RelationSchema, RelationalSchema
from repro.relational.tuples import check_arity


class Relation:
    """A finite relation: a set of equal-width tuples over the domain."""

    __slots__ = ("_name", "_arity", "_tuples", "_indexes", "_index_counters", "_columnar")

    #: Cap on distinct key-column index sets cached per relation.  The cache
    #: used to be unbounded, which let long-lived relations probed with many
    #: column combinations (e.g. by generated queries) grow without limit.
    max_hash_indexes = 8

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Iterable[Sequence[DataValue]] = (),
    ) -> None:
        self._name = name
        self._arity = arity
        rows = frozenset(check_arity(name, arity, row) for row in tuples)
        self._tuples = rows
        self._indexes: dict[tuple[int, ...], dict] | None = None
        self._index_counters: list[int] | None = None  # [built, evicted]
        self._columnar = None

    @classmethod
    def _from_frozenset(
        cls, name: str, arity: int, rows: frozenset[tuple[DataValue, ...]]
    ) -> "Relation":
        """Trusted constructor for rows already checked by another Relation."""
        relation = cls.__new__(cls)
        relation._name = name
        relation._arity = arity
        relation._tuples = rows
        relation._indexes = None
        relation._index_counters = None
        relation._columnar = None
        return relation

    @classmethod
    def from_trusted_rows(
        cls, name: str, arity: int, rows: Iterable[tuple[DataValue, ...]]
    ) -> "Relation":
        """Trusted constructor for already-normalised tuples of known width.

        Internal producers -- the relational algebra, plan operators, the
        engine's register overlays -- always build equal-width plain tuples,
        so re-running :func:`~repro.relational.tuples.check_arity` on every
        intermediate result only burns time on the hot path.  ``rows`` must
        be tuples of exactly ``arity`` values; user-facing input goes through
        the checked :class:`Relation` constructor instead.
        """
        return cls._from_frozenset(name, arity, frozenset(rows))

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def arity(self) -> int:
        """The number of columns."""
        return self._arity

    @property
    def tuples(self) -> frozenset[tuple[DataValue, ...]]:
        """The set of tuples in the relation."""
        return self._tuples

    def sorted_tuples(self) -> list[tuple[DataValue, ...]]:
        """Return the tuples sorted by the implicit order on ``D``."""
        return sort_tuples(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[DataValue, ...]]:
        return iter(self._tuples)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._tuples if isinstance(row, (tuple, list)) else False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._name == other._name
            and self._arity == other._arity
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return hash((self._name, self._arity, self._tuples))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self._name!r}, arity={self._arity}, size={len(self._tuples)})"

    # -- algebraic helpers ---------------------------------------------------

    def is_empty(self) -> bool:
        """True when the relation has no tuples."""
        return not self._tuples

    def with_tuples(self, tuples: Iterable[Sequence[DataValue]]) -> "Relation":
        """Return a copy with the given tuples added."""
        return Relation(self._name, self._arity, set(self._tuples) | {tuple(t) for t in tuples})

    def union(self, other: "Relation") -> "Relation":
        """Set union (requires matching arity).

        Fast paths: when one side is empty or a subset of the other, the
        existing relation object (with its tuple set and lazy indexes) is
        reused instead of re-hashing the full tuple set.
        """
        if other.arity != self._arity:
            raise ArityError(self._name, self._arity, other.arity)
        if not other._tuples or other._tuples <= self._tuples:
            return self
        if not self._tuples and other._name == self._name:
            return other
        if not self._tuples:
            return Relation._from_frozenset(self._name, self._arity, other._tuples)
        return Relation._from_frozenset(
            self._name, self._arity, self._tuples | other._tuples
        )

    def added(self, tuples: Iterable[Sequence[DataValue]]) -> "Relation":
        """Return a copy with the given tuples added.

        Fast path: when every tuple is already present (including the empty
        update) this relation object is returned unchanged, keeping its
        cached hash indexes warm.
        """
        extra = (
            frozenset(check_arity(self._name, self._arity, row) for row in tuples)
            - self._tuples
        )
        if not extra:
            return self
        return Relation._from_frozenset(self._name, self._arity, self._tuples | extra)

    def removed(self, tuples: Iterable[Sequence[DataValue]]) -> "Relation":
        """Return a copy with the given tuples removed.

        Wrong-arity tuples raise :class:`ArityError` (they could never be
        present, so silently ignoring them would hide caller bugs), matching
        :meth:`added`.  Fast path: when no tuple is actually present
        (including the empty update) this relation object is returned
        unchanged.
        """
        victims = (
            frozenset(check_arity(self._name, self._arity, row) for row in tuples)
            & self._tuples
        )
        if not victims:
            return self
        return Relation._from_frozenset(self._name, self._arity, self._tuples - victims)

    def diff(
        self, other: "Relation"
    ) -> tuple[frozenset[tuple[DataValue, ...]], frozenset[tuple[DataValue, ...]]]:
        """The ``(added, removed)`` tuple sets turning ``self`` into ``other``.

        Fast path: identical relation objects (or shared tuple sets, as
        produced by the identity-reusing instance operations) short-circuit
        to empty change sets without comparing tuples.
        """
        if other.arity != self._arity:
            raise ArityError(self._name, self._arity, other.arity)
        if other is self or other._tuples is self._tuples:
            return (frozenset(), frozenset())
        return (other._tuples - self._tuples, self._tuples - other._tuples)

    def active_domain(self) -> frozenset[DataValue]:
        """The set of data values appearing in the relation."""
        return frozenset(value for row in self._tuples for value in row)

    def hash_index(
        self, positions: tuple[int, ...]
    ) -> dict[tuple[DataValue, ...], list[tuple[DataValue, ...]]]:
        """A hash index on the given column positions, built lazily and cached.

        Maps each key (the projection of a row onto ``positions``) to the list
        of full rows carrying it.  Relations are immutable, so the index is
        built at most once per column combination and shared by every instance
        holding this relation object -- including the engine's register
        overlays, which reuse the source relations by identity.  At most
        :attr:`max_hash_indexes` distinct position sets are cached, evicted
        least-recently-used, so relations probed with many column
        combinations stay bounded in memory (see :meth:`index_stats`).
        """
        if self._indexes is None:
            self._indexes = {}
            self._index_counters = [0, 0]
        indexes = self._indexes
        index = indexes.get(positions)
        if index is not None:
            # Reinsert so eviction is least-recently-used, not first-built.
            del indexes[positions]
            indexes[positions] = index
            return index
        index = {}
        for row in self._tuples:
            index.setdefault(tuple(row[p] for p in positions), []).append(row)
        counters = self._index_counters
        counters[0] += 1
        indexes[positions] = index
        cap = self.max_hash_indexes
        while len(indexes) > cap:
            del indexes[next(iter(indexes))]
            counters[1] += 1
        return index

    def clear_indexes(self) -> None:
        """Drop every cached hash index (and any cached columnar form)."""
        self._indexes = None
        self._index_counters = None
        self._columnar = None

    def index_stats(self) -> dict[str, int]:
        """Counters of the hash-index cache (for benchmarks and tuning)."""
        counters = self._index_counters
        if counters is None:
            return {
                "cached": 0,
                "built": 0,
                "evicted": 0,
                "capacity": self.max_hash_indexes,
            }
        return {
            "cached": len(self._indexes),
            "built": counters[0],
            "evicted": counters[1],
            "capacity": self.max_hash_indexes,
        }


class Instance(Mapping[str, Relation]):
    """An immutable database instance of a relational schema."""

    def __init__(
        self,
        schema: RelationalSchema,
        relations: Mapping[str, Iterable[Sequence[DataValue]]] | None = None,
    ) -> None:
        self._schema = schema
        data: dict[str, Relation] = {}
        provided = dict(relations or {})
        for name in provided:
            if name not in schema:
                raise UnknownRelationError(name, schema.names())
        for name in schema:
            rows = provided.get(name, ())
            data[name] = Relation(name, schema.arity(name), rows)
        self._relations = data
        self._active_domain: frozenset[DataValue] | None = None
        # Dictionary encoding (repro.relational.columnar), attached by
        # ensure_encoded() and propagated through the versioning operations
        # so a whole instance lineage shares one append-only encoder.
        self._encoding = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        relations: Mapping[str, Iterable[Sequence[DataValue]]],
        schema: RelationalSchema | None = None,
    ) -> "Instance":
        """Build an instance (and infer a schema when none is given).

        When ``schema`` is omitted the arity of each relation is inferred from
        its first tuple; empty relations are not allowed in that case because
        their arity would be ambiguous.
        """
        if schema is None:
            inferred = RelationalSchema()
            for name, rows in relations.items():
                rows = [tuple(r) for r in rows]
                if not rows:
                    raise SchemaError(
                        f"cannot infer the arity of empty relation {name!r}; pass a schema"
                    )
                inferred.add(RelationSchema(name, len(rows[0])))
            schema = inferred
        return cls(schema, relations)

    def updated(self, name: str, tuples: Iterable[Sequence[DataValue]]) -> "Instance":
        """Return a copy in which relation ``name`` is replaced by ``tuples``.

        Untouched :class:`Relation` objects are reused by identity, so their
        cached hash indexes stay warm across the copy.
        """
        if name not in self._schema:
            raise UnknownRelationError(name, self._schema.names())
        relations = dict(self._relations)
        relations[name] = Relation(name, self._schema.arity(name), tuples)
        return self._rebuilt(self._schema, relations, self._encoding)

    def extended(
        self,
        extra: Mapping[str, Iterable[Sequence[DataValue]]],
        extra_schema: Iterable[RelationSchema] | None = None,
    ) -> "Instance":
        """Return an instance over an extended schema with extra relations.

        This is how the publishing-transducer runtime makes the parent
        register visible to rule queries: the register is added under the
        reserved names ``Reg`` / ``Reg_<tag>`` without touching the source.
        Existing :class:`Relation` objects are shared with this instance by
        identity; only the extra relations are wrapped and checked.
        """
        if extra_schema is None:
            extra_schema = []
            for name, rows in extra.items():
                rows = [tuple(r) for r in rows]
                arity = len(rows[0]) if rows else 0
                extra_schema.append(RelationSchema(name, arity))
        schema = self._schema.extended(extra_schema)
        relations = dict(self._relations)
        for name, rows in extra.items():
            relations[name] = Relation(name, schema.arity(name), rows)
        for name in schema:
            if name not in relations:
                relations[name] = Relation(name, schema.arity(name))
        return self._rebuilt(schema, relations, self._encoding)

    @classmethod
    def _rebuilt(
        cls,
        schema: RelationalSchema,
        relations: dict[str, "Relation"],
        encoding=None,
    ) -> "Instance":
        """Trusted constructor reusing already-validated relation objects.

        ``encoding`` carries the source version's dictionary encoder forward:
        untouched relations keep their cached columnar form (it lives on the
        relation object), replaced relations are re-encoded lazily on first
        columnar execution, and no value is ever re-interned.
        """
        clone = cls.__new__(cls)
        clone._schema = schema
        clone._relations = relations
        clone._active_domain = None
        clone._encoding = encoding
        return clone

    def overlaid(
        self,
        extra: Mapping[str, Relation],
        schema: RelationalSchema | None = None,
        active_domain: frozenset[DataValue] | None = None,
    ) -> "Instance":
        """Return an extended instance *sharing* this instance's relation objects.

        Unlike :meth:`extended`, which re-checks and re-wraps every relation,
        this trusted fast path reuses the existing :class:`Relation` objects
        and only installs the pre-built ``extra`` relations on top.  It is the
        hot path of the compiled publishing engine, which overlays the two
        register relations on the source once per expanded node.

        ``schema`` must already describe the overlay (callers cache it);
        ``active_domain``, when given, seeds the active-domain cache so FO/IFP
        evaluation does not rescan the source relations.
        """
        if schema is None:
            schema = self._schema.extended(
                RelationSchema(rel.name, rel.arity) for rel in extra.values()
            )
        clone = Instance.__new__(Instance)
        clone._schema = schema
        clone._relations = {**self._relations, **extra}
        clone._active_domain = active_domain
        # Overlays deliberately do not inherit the dictionary encoding: the
        # engine's encoded pipeline feeds registers through the plans'
        # encoded-override channel instead, and the overlay path is reserved
        # for naive (active-domain) evaluation over raw values.
        clone._encoding = None
        return clone

    @property
    def is_encoded(self) -> bool:
        """Whether this instance carries a dictionary encoding.

        Attached by :func:`repro.relational.columnar.ensure_encoded`; query
        plans and the publishing engine run on the columnar backend exactly
        when this is true.
        """
        return self._encoding is not None

    def without_encoding(self) -> "Instance":
        """A value-equal twin of this instance on the row backend.

        Every :class:`Relation` object is shared by identity (so warm hash
        indexes -- and any columnar forms cached on the relations -- stay
        warm); only the encoding attachment is dropped.  Returns ``self``
        when no encoding is attached.  This is how the serving layer pins a
        request to ``backend="row"`` on a source whose canonical lineage is
        encoded, without forking the data.
        """
        if self._encoding is None:
            return self
        return self._rebuilt(self._schema, dict(self._relations), None)

    def apply_delta(self, delta) -> "Instance":
        """Return the instance this :class:`~repro.relational.delta.Delta` yields.

        For every touched relation the result holds ``(R - deleted) |
        inserted``; every untouched :class:`Relation` object is reused by
        identity, so its cached hash indexes stay warm across the version.
        When the delta changes nothing effectively, ``self`` is returned
        unchanged -- versioning is free for no-op updates.
        """
        relations: dict[str, Relation] | None = None
        for name in delta.touched_relations():
            if name not in self._schema:
                raise UnknownRelationError(name, self._schema.names())
            current = self._relations[name]
            replaced = current.removed(delta.deleted_from(name)).added(
                delta.inserted_into(name)
            )
            if replaced is not current:
                if relations is None:
                    relations = dict(self._relations)
                relations[name] = replaced
        if relations is None:
            return self
        return self._rebuilt(self._schema, relations, self._encoding)

    def diff(self, other: "Instance"):
        """The normalized :class:`~repro.relational.delta.Delta` from ``self`` to ``other``.

        ``self.apply_delta(self.diff(other)) == other`` holds for instances
        over the same schema; relation objects shared by identity between the
        two instances are skipped without comparing tuples.
        """
        from repro.relational.delta import Delta

        inserted: dict[str, frozenset] = {}
        deleted: dict[str, frozenset] = {}
        for name in set(self._relations) | set(other._relations):
            mine = self._relations.get(name)
            theirs = other._relations.get(name)
            if mine is None:
                if theirs.tuples:
                    inserted[name] = theirs.tuples
                continue
            if theirs is None:
                if mine.tuples:
                    deleted[name] = mine.tuples
                continue
            added, removed = mine.diff(theirs)
            if added:
                inserted[name] = added
            if removed:
                deleted[name] = removed
        return Delta(inserted, deleted)

    def union(self, other: "Instance") -> "Instance":
        """Relation-wise union of two instances over compatible schemas."""
        schema = self._schema.extended(other.schema[name] for name in other.schema)
        data: dict[str, set[tuple[DataValue, ...]]] = {}
        for name in schema:
            rows: set[tuple[DataValue, ...]] = set()
            if name in self._relations:
                rows |= self._relations[name].tuples
            if name in other:
                rows |= other[name].tuples
            data[name] = rows
        return Instance(schema, data)

    # -- Mapping interface ----------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, tuple(self._relations)) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> RelationalSchema:
        """The relational schema of this instance."""
        return self._schema

    def tuples(self, name: str) -> frozenset[tuple[DataValue, ...]]:
        """The tuples of relation ``name`` (empty if the relation is empty)."""
        return self[name].tuples

    def active_domain(self) -> frozenset[DataValue]:
        """The set of all data values occurring anywhere in the instance.

        Cached after the first call: instances are immutable, and FO/IFP
        query evaluation asks for the active domain once per query.
        """
        if self._active_domain is None:
            values: set[DataValue] = set()
            for relation in self._relations.values():
                values |= relation.active_domain()
            self._active_domain = frozenset(values)
        return self._active_domain

    def total_size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def is_empty(self) -> bool:
        """True when every relation is empty."""
        return all(relation.is_empty() for relation in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in self._relations.items())
        return f"Instance({parts})"
