"""The data domain ``D`` and its implicit total order.

The paper assumes an infinite domain ``D`` of data values shared by the
relational database and the registers of the generated tree, together with an
implicit total order ``<=`` on ``D``.  The order has a single purpose: it
fixes the order of the children spawned by a transduction rule so that every
transducer produces a *unique* output tree.  Crucially the order is **not**
available to the query languages (Section 3, "Transformations").

In this implementation a data value is any hashable Python object.  Because
Python does not order values of different types, :func:`order_key` maps every
value to a sortable key ``(type_rank, printable)`` which realises a canonical
total order across heterogeneous values.  Booleans, integers and floats are
ordered numerically among themselves, strings lexicographically, and values of
distinct type groups are ordered by the group rank.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

#: A data value drawn from the domain ``D``.  Any hashable object is allowed.
DataValue = Hashable

_NUMERIC_RANK = 0
_STRING_RANK = 1
_BYTES_RANK = 2
_NONE_RANK = 3
_TUPLE_RANK = 4
_OTHER_RANK = 5


def order_key(value: DataValue) -> tuple:
    """Return a sort key realising the implicit total order on ``D``.

    The key is a tuple whose first component is a small integer ranking the
    *type group* of the value and whose remaining components order values
    within the group.  The resulting order is total on every finite set of
    values that can appear in an instance.

    >>> sorted(["b", 2, "a", 1], key=order_key)
    [1, 2, 'a', 'b']
    """
    if isinstance(value, bool):
        # bool is a subclass of int; keep it with the numeric group so that
        # True/False interleave deterministically with 0/1.
        return (_NUMERIC_RANK, float(value), 0, "bool")
    if isinstance(value, (int, float)):
        return (_NUMERIC_RANK, float(value), 1, type(value).__name__)
    if isinstance(value, str):
        return (_STRING_RANK, value)
    if isinstance(value, bytes):
        return (_BYTES_RANK, value)
    if value is None:
        return (_NONE_RANK,)
    if isinstance(value, tuple):
        return (_TUPLE_RANK, tuple(order_key(item) for item in value))
    return (_OTHER_RANK, type(value).__name__, repr(value))


def tuple_order_key(values: Sequence[DataValue]) -> tuple:
    """Return a sort key for a tuple of data values (lexicographic lift)."""
    return tuple(order_key(value) for value in values)


def sort_values(values: Iterable[DataValue]) -> list[DataValue]:
    """Sort data values according to the implicit order on ``D``."""
    return sorted(values, key=order_key)


def sort_tuples(tuples: Iterable[Sequence[DataValue]]) -> list[tuple[DataValue, ...]]:
    """Sort tuples of data values lexicographically by the implicit order."""
    return sorted((tuple(item) for item in tuples), key=tuple_order_key)


def value_to_text(value: DataValue) -> str:
    """Render a single data value as PCDATA text."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def relation_to_text(tuples: Iterable[Sequence[DataValue]]) -> str:
    """Render a register content as the string carried by a ``text`` node.

    The paper assumes "a function that maps relations over D to strings,
    based on the order <=" (Section 3).  We render each tuple as a
    comma-separated list of values and join distinct tuples with ``"; "``,
    after sorting by the implicit order so the rendering is deterministic.
    A singleton unary relation renders as the bare value, which is the common
    case for text leaves holding one attribute value.
    """
    ordered = sort_tuples(tuples)
    if not ordered:
        return ""
    if len(ordered) == 1 and len(ordered[0]) == 1:
        return value_to_text(ordered[0][0])
    return "; ".join(", ".join(value_to_text(v) for v in row) for row in ordered)
