"""Exception hierarchy for the relational substrate."""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A schema is malformed (bad arity, duplicate relation names, ...)."""


class ArityError(RelationalError):
    """A tuple or query result does not match the arity of its relation."""

    def __init__(self, relation: str, expected: int, actual: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got a tuple of width {actual}"
        )
        self.relation = relation
        self.expected = expected
        self.actual = actual


class UnknownRelationError(RelationalError):
    """A query or update referenced a relation that the schema does not declare."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        message = f"unknown relation {name!r}"
        if known:
            message += f" (known relations: {', '.join(sorted(known))})"
        super().__init__(message)
        self.name = name
        self.known = known
