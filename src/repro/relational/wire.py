"""The canonical wire codec for relational values, deltas and instances.

One versioned JSON format shared by the durability layer (the write-ahead
delta log of :mod:`repro.serve.net.wal`) and the network protocol
(:mod:`repro.serve.net.app`), so a delta logged to disk and a delta pushed to
a WebSocket subscriber are literally the same bytes.  Three design rules:

* **Canonical.**  :func:`canonical_json` fixes key order and separators, and
  every tuple set is sorted by the implicit total order on ``D``
  (:func:`~repro.relational.domain.sort_tuples`), so encoding the same value
  twice -- or on two servers -- yields identical bytes.  The write-ahead log
  checksums those bytes; ETags hash them.
* **Versioned.**  Every envelope carries ``"format": WIRE_FORMAT``; decoders
  reject formats they do not understand instead of guessing.
* **Typed.**  JSON cannot distinguish tuples from lists nor carry bytes, so
  non-primitive domain values are wrapped in one-key tag objects
  (``{"t": [...]}`` for tuples, ``{"b": "<base64>"}`` for bytes).  Plain
  strings, ints, floats, bools and ``None`` pass through untouched.  Data
  values outside the JSON-expressible fragment of ``D`` raise
  :class:`WireError` at encode time, never a silent lossy round trip.

The codecs are exposed on the value classes as ``to_wire`` / ``to_json`` /
``from_wire`` / ``from_json`` (:class:`~repro.relational.delta.Delta`,
:class:`~repro.xmltree.diff.EditScript`); the free functions here are the
shared implementation plus the instance codec used by WAL snapshots.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Iterable, Mapping, Sequence

from repro.relational.domain import DataValue, sort_tuples
from repro.relational.errors import RelationalError
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema, RelationalSchema

#: The wire-format version stamped into (and required of) every envelope.
WIRE_FORMAT = 1


class WireError(ValueError):
    """Raised when a value cannot be wire-encoded or a payload is malformed."""


def canonical_json(payload: Any) -> str:
    """The canonical JSON text of a wire payload (sorted keys, no spaces).

    The same payload always renders to the same bytes, which is what the
    write-ahead log checksums and the network tier hashes into ETags.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _parsed(payload: Any, kind: str) -> Mapping[str, Any]:
    """Accept a JSON string or an already-parsed mapping; check the envelope."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise WireError(f"malformed {kind} JSON: {error}") from None
    if not isinstance(payload, Mapping):
        raise WireError(f"a wire {kind} must be a JSON object, not {type(payload).__name__}")
    version = payload.get("format")
    if version != WIRE_FORMAT:
        raise WireError(
            f"unsupported {kind} wire format {version!r}; this build reads format {WIRE_FORMAT}"
        )
    if payload.get("kind") != kind:
        raise WireError(f"expected a {kind!r} payload, got {payload.get('kind')!r}")
    return payload


# ---------------------------------------------------------------------------
# Data values.
# ---------------------------------------------------------------------------


def encode_value(value: DataValue) -> Any:
    """Encode one domain value into its JSON-expressible wire form."""
    if value is None or isinstance(value, (str, int, float)):
        # bool is a subclass of int and round-trips natively through JSON.
        return value
    if isinstance(value, bytes):
        return {"b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    raise WireError(
        f"data value {value!r} of type {type(value).__name__} has no wire encoding"
    )


def decode_value(encoded: Any) -> DataValue:
    """Decode one wire-encoded domain value."""
    if encoded is None or isinstance(encoded, (str, int, float)):
        return encoded
    if isinstance(encoded, Mapping) and len(encoded) == 1:
        if "b" in encoded:
            try:
                return base64.b64decode(encoded["b"])
            except (TypeError, ValueError) as error:
                raise WireError(f"malformed bytes value: {error}") from None
        if "t" in encoded:
            items = encoded["t"]
            if not isinstance(items, list):
                raise WireError(f"malformed tuple value: {encoded!r}")
            return tuple(decode_value(item) for item in items)
    raise WireError(f"unrecognised wire value {encoded!r}")


def encode_rows(rows: Iterable[Sequence[DataValue]]) -> list[list[Any]]:
    """Encode a tuple set, sorted by the implicit order for canonical bytes."""
    return [[encode_value(value) for value in row] for row in sort_tuples(rows)]


def decode_rows(rows: Any, context: str) -> list[tuple[DataValue, ...]]:
    """Decode a wire tuple set back into plain tuples."""
    if not isinstance(rows, list):
        raise WireError(f"{context}: expected a list of rows, got {type(rows).__name__}")
    decoded = []
    for row in rows:
        if not isinstance(row, list):
            raise WireError(f"{context}: expected a row list, got {type(row).__name__}")
        decoded.append(tuple(decode_value(value) for value in row))
    return decoded


# ---------------------------------------------------------------------------
# Deltas.
# ---------------------------------------------------------------------------


def delta_to_wire(delta) -> dict[str, Any]:
    """The wire payload of a :class:`~repro.relational.delta.Delta`."""
    return {
        "format": WIRE_FORMAT,
        "kind": "delta",
        "insert": {
            name: encode_rows(rows) for name, rows in sorted(delta.inserted.items())
        },
        "delete": {
            name: encode_rows(rows) for name, rows in sorted(delta.deleted.items())
        },
    }


def delta_from_wire(payload) -> "Any":
    """Decode a delta wire payload (a JSON string or parsed mapping)."""
    from repro.relational.delta import Delta

    payload = _parsed(payload, "delta")
    changes: dict[str, dict[str, list[tuple[DataValue, ...]]]] = {}
    for side in ("insert", "delete"):
        entries = payload.get(side, {})
        if not isinstance(entries, Mapping):
            raise WireError(f"delta {side!r} must be an object, not {type(entries).__name__}")
        changes[side] = {
            name: decode_rows(rows, f"delta {side} {name!r}")
            for name, rows in entries.items()
        }
    return Delta(inserted=changes["insert"], deleted=changes["delete"])


# ---------------------------------------------------------------------------
# Instances (used by write-ahead-log snapshots and the attach route).
# ---------------------------------------------------------------------------


def instance_to_wire(instance: Instance) -> dict[str, Any]:
    """The wire payload of an instance: schema arities plus sorted tuple sets.

    The encoding is representation-agnostic: a dictionary-encoded (columnar)
    instance snapshots its raw values -- whether to re-encode on load is the
    loader's choice (the WAL records it separately), and the published XML is
    byte-identical either way.
    """
    return {
        "format": WIRE_FORMAT,
        "kind": "instance",
        "relations": {
            name: {
                "arity": instance[name].arity,
                "rows": encode_rows(instance[name].tuples),
            }
            for name in sorted(instance)
        },
    }


def instance_from_wire(payload) -> Instance:
    """Decode an instance wire payload into a plain (row-backend) instance."""
    payload = _parsed(payload, "instance")
    relations = payload.get("relations", {})
    if not isinstance(relations, Mapping):
        raise WireError("instance 'relations' must be an object")
    schema = RelationalSchema()
    data: dict[str, list[tuple[DataValue, ...]]] = {}
    for name, entry in relations.items():
        if not isinstance(entry, Mapping) or not isinstance(entry.get("arity"), int):
            raise WireError(f"malformed relation entry for {name!r}")
        schema.add(RelationSchema(name, entry["arity"]))
        data[name] = decode_rows(entry.get("rows", []), f"relation {name!r}")
    try:
        return Instance(schema, data)
    except (RelationalError, TypeError, ValueError) as error:
        raise WireError(f"inconsistent instance payload: {error}") from None
