"""Relational substrate: schemas, ordered data domain, instances and algebra.

The paper assumes a relational source of a schema ``R`` together with a
recursively enumerable, totally ordered domain ``D`` of data values.  The
order is only used to make the sibling order of generated XML trees
deterministic; it is *not* visible to the query languages.  This package
provides exactly that substrate:

* :mod:`repro.relational.domain` -- data values and the implicit order ``<=``;
* :mod:`repro.relational.schema` -- relation schemas and relational schemas;
* :mod:`repro.relational.tuples` -- validated tuples over the domain;
* :mod:`repro.relational.instance` -- relations and database instances;
* :mod:`repro.relational.delta` -- first-class instance deltas (the currency
  of incremental view maintenance);
* :mod:`repro.relational.algebra` -- a small relational algebra used by the
  IFP simulation, the DAD front-end and several proof constructions;
* :mod:`repro.relational.columnar` -- dictionary encoding and columnar
  relation storage, the data representation beneath the vectorized query
  kernel (:mod:`repro.query.vectorized`).
"""

from repro.relational.columnar import (
    ColumnarRelation,
    DictionaryEncoder,
    encoding_of,
    ensure_encoded,
)
from repro.relational.delta import Delta
from repro.relational.domain import DataValue, order_key, sort_tuples, sort_values
from repro.relational.errors import (
    ArityError,
    RelationalError,
    SchemaError,
    UnknownRelationError,
)
from repro.relational.instance import Instance, Relation
from repro.relational.schema import RelationSchema, RelationalSchema
from repro.relational.tuples import make_tuple

__all__ = [
    "ArityError",
    "ColumnarRelation",
    "DataValue",
    "Delta",
    "DictionaryEncoder",
    "Instance",
    "Relation",
    "RelationSchema",
    "RelationalError",
    "RelationalSchema",
    "SchemaError",
    "UnknownRelationError",
    "encoding_of",
    "ensure_encoded",
    "make_tuple",
    "order_key",
    "sort_tuples",
    "sort_values",
]
