"""Validated tuples over the data domain."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.relational.domain import DataValue
from repro.relational.errors import ArityError


def make_tuple(values: Sequence[DataValue]) -> tuple[DataValue, ...]:
    """Normalise a sequence of data values into a plain tuple.

    Lists and other sequences are accepted for convenience; the result is
    always an immutable tuple so that it can be stored in relation sets.
    """
    return tuple(values)


def check_arity(relation: str, arity: int, values: Sequence[DataValue]) -> tuple[DataValue, ...]:
    """Return ``values`` as a tuple, raising :class:`ArityError` on mismatch."""
    row = make_tuple(values)
    if len(row) != arity:
        raise ArityError(relation, arity, len(row))
    return row


def project(row: Sequence[DataValue], positions: Iterable[int]) -> tuple[DataValue, ...]:
    """Project a tuple onto the given column positions (in the given order)."""
    return tuple(row[i] for i in positions)
