"""First-class instance deltas: inserted / deleted tuples per relation.

A :class:`Delta` describes an update to a relational instance as two
relation-indexed tuple sets.  Applying a delta to an instance ``I`` yields,
for every relation ``R``::

    R' = (R - deleted[R]) | inserted[R]

Deltas are immutable value objects, like the instances they act on.  They are
the currency of the incremental-maintenance pipeline: the relational layer
applies them (:meth:`~repro.relational.instance.Instance.apply_delta`, which
reuses every untouched :class:`~repro.relational.instance.Relation` object and
its warm hash indexes by identity), the query layer turns them into changed
answer sets (:meth:`~repro.query.plan.QueryPlan.execute_delta`), and the
publishing engine turns them into republished trees and XML edit scripts
(:meth:`~repro.engine.plan.PublishingPlan.republish`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.relational.domain import DataValue

#: Relation-indexed tuple sets, the payload of a delta.
ChangeSet = Mapping[str, Iterable[Sequence[DataValue]]]

_EMPTY: frozenset[tuple[DataValue, ...]] = frozenset()


def _freeze(changes: ChangeSet | None) -> dict[str, frozenset[tuple[DataValue, ...]]]:
    frozen: dict[str, frozenset[tuple[DataValue, ...]]] = {}
    for name, rows in (changes or {}).items():
        tuples = frozenset(tuple(row) for row in rows)
        if tuples:
            frozen[name] = tuples
    return frozen


class Delta:
    """An immutable set of inserted and deleted tuples, per relation.

    Empty per-relation entries are dropped at construction, so
    :meth:`touched_relations` only names relations the delta actually
    mentions.  A delta is *normalized with respect to an instance* when its
    insertions are all absent from and its deletions all present in the
    instance; :meth:`normalized` computes that effective form.
    """

    __slots__ = ("_inserted", "_deleted")

    def __init__(
        self,
        inserted: ChangeSet | None = None,
        deleted: ChangeSet | None = None,
    ) -> None:
        self._inserted = _freeze(inserted)
        self._deleted = _freeze(deleted)

    # -- constructors --------------------------------------------------------

    @classmethod
    def insert(cls, relation: str, *rows: Sequence[DataValue]) -> "Delta":
        """A delta inserting the given tuples into one relation."""
        return cls(inserted={relation: rows})

    @classmethod
    def delete(cls, relation: str, *rows: Sequence[DataValue]) -> "Delta":
        """A delta deleting the given tuples from one relation."""
        return cls(deleted={relation: rows})

    @classmethod
    def from_instances(cls, old, new) -> "Delta":
        """The delta turning ``old`` into ``new`` (see :meth:`Instance.diff`)."""
        return old.diff(new)

    # -- accessors -----------------------------------------------------------

    @property
    def inserted(self) -> Mapping[str, frozenset[tuple[DataValue, ...]]]:
        """The inserted tuples, per relation (only non-empty entries)."""
        return self._inserted

    @property
    def deleted(self) -> Mapping[str, frozenset[tuple[DataValue, ...]]]:
        """The deleted tuples, per relation (only non-empty entries)."""
        return self._deleted

    def inserted_into(self, relation: str) -> frozenset[tuple[DataValue, ...]]:
        """The tuples this delta inserts into ``relation`` (possibly empty)."""
        return self._inserted.get(relation, _EMPTY)

    def deleted_from(self, relation: str) -> frozenset[tuple[DataValue, ...]]:
        """The tuples this delta deletes from ``relation`` (possibly empty)."""
        return self._deleted.get(relation, _EMPTY)

    def touched_relations(self) -> frozenset[str]:
        """The relations this delta mentions (inserts or deletes)."""
        return frozenset(self._inserted) | frozenset(self._deleted)

    def is_empty(self) -> bool:
        """True when the delta changes nothing on any instance."""
        return not self._inserted and not self._deleted

    def change_count(self) -> int:
        """Total number of inserted plus deleted tuples."""
        return sum(len(rows) for rows in self._inserted.values()) + sum(
            len(rows) for rows in self._deleted.values()
        )

    # -- algebra -------------------------------------------------------------

    def inverted(self) -> "Delta":
        """The delta undoing this one on any instance it was normalized for."""
        return Delta(inserted=self._deleted, deleted=self._inserted)

    def normalized(self, instance) -> "Delta":
        """The effective changes of this delta on ``instance``.

        Insertions already present and deletions of absent tuples are
        dropped; a tuple both deleted and inserted ends up present (the
        deletion is applied first), so it is no change when already there.
        Relations unknown to the instance raise
        :class:`~repro.relational.errors.UnknownRelationError`; tuples of
        the wrong width raise :class:`~repro.relational.errors.ArityError`
        instead of silently normalising to a no-op (a mistyped deletion
        could never match anything).
        """
        from repro.relational.errors import ArityError

        inserted: dict[str, frozenset] = {}
        deleted: dict[str, frozenset] = {}
        for name in self.touched_relations():
            relation = instance[name]
            mentioned = self._inserted.get(name, _EMPTY) | self._deleted.get(name, _EMPTY)
            for row in mentioned:
                if len(row) != relation.arity:
                    raise ArityError(name, relation.arity, len(row))
            current = relation.tuples
            added = self._inserted.get(name, _EMPTY) - current
            removed = (self._deleted.get(name, _EMPTY) & current) - self._inserted.get(
                name, _EMPTY
            )
            if added:
                inserted[name] = added
            if removed:
                deleted[name] = removed
        return Delta(inserted, deleted)

    # -- wire codec ----------------------------------------------------------

    def to_wire(self) -> dict:
        """The canonical wire payload (see :mod:`repro.relational.wire`)."""
        from repro.relational.wire import delta_to_wire

        return delta_to_wire(self)

    def to_json(self) -> str:
        """The canonical JSON text of :meth:`to_wire`.

        Deterministic: equal deltas always encode to identical bytes, which
        is what the write-ahead log checksums and the network tier streams.
        """
        from repro.relational.wire import canonical_json

        return canonical_json(self.to_wire())

    @classmethod
    def from_wire(cls, payload) -> "Delta":
        """Decode a wire payload (parsed mapping) back into a delta."""
        from repro.relational.wire import delta_from_wire

        return delta_from_wire(payload)

    @classmethod
    def from_json(cls, text) -> "Delta":
        """Decode canonical JSON text (or an already-parsed payload)."""
        from repro.relational.wire import delta_from_wire

        return delta_from_wire(text)

    # -- value semantics -----------------------------------------------------

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._inserted == other._inserted and self._deleted == other._deleted

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._inserted.items()), frozenset(self._deleted.items()))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for name, rows in sorted(self._inserted.items()):
            parts.append(f"+{name}:{len(rows)}")
        for name, rows in sorted(self._deleted.items()):
            parts.append(f"-{name}:{len(rows)}")
        return f"Delta({', '.join(parts) or 'empty'})"
