"""A small relational algebra over :class:`~repro.relational.instance.Relation`.

The algebra is used in three places of the reproduction:

* the membership-undecidability reduction for ``PT(CQ, relation, normal)``
  (Theorem 1(2)) builds transducers from relational-algebra parse trees;
* the IBM DAD "SQL mapping" front-end groups one query result by a fixed
  column order;
* tests compare query-language evaluation against a straightforward algebraic
  evaluation.

Operations are positional (columns are numbered from 0) and return anonymous
relations named ``"_result"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.relational.domain import DataValue
from repro.relational.errors import ArityError, SchemaError
from repro.relational.instance import Instance, Relation

RESULT_NAME = "_result"


def _result(arity: int, rows: Iterable[tuple[DataValue, ...]]) -> Relation:
    """Wrap already-normalised tuples of known width as an anonymous relation.

    Every producer in this module builds plain tuples of exactly ``arity``
    values, so the trusted constructor is used and ``check_arity`` runs only
    on user-facing input (the instances the expressions are evaluated over).
    """
    return Relation.from_trusted_rows(RESULT_NAME, arity, rows)


def selection(relation: Relation, predicate: Callable[[tuple[DataValue, ...]], bool]) -> Relation:
    """Select the tuples satisfying ``predicate``."""
    return _result(relation.arity, (row for row in relation if predicate(row)))


def select_eq(relation: Relation, column: int, value: DataValue) -> Relation:
    """Select tuples whose ``column`` equals ``value`` (sigma_{col=value})."""
    return selection(relation, lambda row: row[column] == value)


def select_columns_eq(relation: Relation, left: int, right: int) -> Relation:
    """Select tuples whose two columns agree (sigma_{A=B})."""
    return selection(relation, lambda row: row[left] == row[right])


def projection(relation: Relation, columns: Sequence[int]) -> Relation:
    """Project onto ``columns`` (duplicates removed, order preserved)."""
    for column in columns:
        if not 0 <= column < relation.arity:
            raise SchemaError(f"projection column {column} out of range for arity {relation.arity}")
    return _result(len(columns), (tuple(row[c] for c in columns) for row in relation))


def rename(relation: Relation, name: str) -> Relation:
    """Rename the relation (columns are positional, so only the name changes)."""
    return Relation._from_frozenset(name, relation.arity, relation.tuples)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product."""
    rows = (l + r for l in left for r in right)
    return _result(left.arity + right.arity, rows)


def union(left: Relation, right: Relation) -> Relation:
    """Set union (arity must match)."""
    if left.arity != right.arity:
        raise ArityError(RESULT_NAME, left.arity, right.arity)
    return _result(left.arity, set(left.tuples) | set(right.tuples))


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ``left \\ right`` (arity must match)."""
    if left.arity != right.arity:
        raise ArityError(RESULT_NAME, left.arity, right.arity)
    return _result(left.arity, set(left.tuples) - set(right.tuples))


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection (arity must match)."""
    if left.arity != right.arity:
        raise ArityError(RESULT_NAME, left.arity, right.arity)
    return _result(left.arity, set(left.tuples) & set(right.tuples))


def natural_join(left: Relation, right: Relation, on: Sequence[tuple[int, int]]) -> Relation:
    """Equi-join on the given ``(left_column, right_column)`` pairs.

    The result contains all columns of ``left`` followed by all columns of
    ``right`` (join columns are *not* deduplicated; project afterwards if
    needed).
    """
    index: dict[tuple[DataValue, ...], list[tuple[DataValue, ...]]] = {}
    for row in right:
        key = tuple(row[rc] for _, rc in on)
        index.setdefault(key, []).append(row)
    rows = []
    for row in left:
        key = tuple(row[lc] for lc, _ in on)
        for match in index.get(key, ()):
            rows.append(row + match)
    return _result(left.arity + right.arity, rows)


# ---------------------------------------------------------------------------
# Relational-algebra expression trees (used by the Theorem 1(2) reduction and
# by the DAD front-end).
# ---------------------------------------------------------------------------


class AlgebraExpression:
    """Base class of relational-algebra expression trees."""

    def evaluate(self, instance: Instance) -> Relation:
        """Evaluate the expression over ``instance``."""
        raise NotImplementedError

    def subexpressions(self) -> tuple["AlgebraExpression", ...]:
        """Direct sub-expressions (empty for base relations)."""
        return ()

    def walk(self) -> Iterable["AlgebraExpression"]:
        """Yield the expression and all sub-expressions, root first."""
        yield self
        for child in self.subexpressions():
            yield from child.walk()

    def arity(self, instance_schema) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class BaseRelation(AlgebraExpression):
    """A reference to a base relation of the schema."""

    name: str

    def evaluate(self, instance: Instance) -> Relation:
        return instance[self.name]

    def arity(self, instance_schema) -> int:
        return instance_schema.arity(self.name)


@dataclass(frozen=True)
class Select(AlgebraExpression):
    """``sigma_{column = value}`` or ``sigma_{left = right}`` selection."""

    child: AlgebraExpression
    column: int
    value: DataValue | None = None
    other_column: int | None = None

    def evaluate(self, instance: Instance) -> Relation:
        relation = self.child.evaluate(instance)
        if self.other_column is not None:
            return select_columns_eq(relation, self.column, self.other_column)
        return select_eq(relation, self.column, self.value)

    def subexpressions(self) -> tuple[AlgebraExpression, ...]:
        return (self.child,)

    def arity(self, instance_schema) -> int:
        return self.child.arity(instance_schema)


@dataclass(frozen=True)
class Project(AlgebraExpression):
    """``pi_{columns}`` projection."""

    child: AlgebraExpression
    columns: tuple[int, ...]

    def evaluate(self, instance: Instance) -> Relation:
        return projection(self.child.evaluate(instance), self.columns)

    def subexpressions(self) -> tuple[AlgebraExpression, ...]:
        return (self.child,)

    def arity(self, instance_schema) -> int:
        return len(self.columns)


@dataclass(frozen=True)
class Product(AlgebraExpression):
    """Cartesian product of two expressions."""

    left: AlgebraExpression
    right: AlgebraExpression

    def evaluate(self, instance: Instance) -> Relation:
        return product(self.left.evaluate(instance), self.right.evaluate(instance))

    def subexpressions(self) -> tuple[AlgebraExpression, ...]:
        return (self.left, self.right)

    def arity(self, instance_schema) -> int:
        return self.left.arity(instance_schema) + self.right.arity(instance_schema)


@dataclass(frozen=True)
class Union(AlgebraExpression):
    """Set union of two expressions."""

    left: AlgebraExpression
    right: AlgebraExpression

    def evaluate(self, instance: Instance) -> Relation:
        return union(self.left.evaluate(instance), self.right.evaluate(instance))

    def subexpressions(self) -> tuple[AlgebraExpression, ...]:
        return (self.left, self.right)

    def arity(self, instance_schema) -> int:
        return self.left.arity(instance_schema)


@dataclass(frozen=True)
class Difference(AlgebraExpression):
    """Set difference of two expressions."""

    left: AlgebraExpression
    right: AlgebraExpression

    def evaluate(self, instance: Instance) -> Relation:
        return difference(self.left.evaluate(instance), self.right.evaluate(instance))

    def subexpressions(self) -> tuple[AlgebraExpression, ...]:
        return (self.left, self.right)

    def arity(self, instance_schema) -> int:
        return self.left.arity(instance_schema)
