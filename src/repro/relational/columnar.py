"""Dictionary encoding and columnar relation storage.

The publishing transducers of the paper evaluate a relational query at every
node expansion, so query execution dominates every layer built on top of the
relational substrate.  The row representation -- frozensets of tuples of
heterogeneous :data:`~repro.relational.domain.DataValue` s -- pays for Python
object hashing and tuple construction on every probe and every emitted row.
This module provides the cheaper representation beneath the unchanged plan
language:

* :class:`DictionaryEncoder` -- a per-database dictionary interning every
  domain value into a dense integer id, with a stable decode table.  Ids are
  append-only, so an encoder shared across instance *versions* (as produced
  by :meth:`~repro.relational.instance.Instance.apply_delta`) keeps every
  previously encoded row valid: incremental maintenance never re-interns the
  world, it only interns the delta.
* :class:`ColumnarRelation` -- one list-of-int column per attribute plus
  lazily built integer hash indexes, cached on the source
  :class:`~repro.relational.instance.Relation` object so that relation
  sharing by identity (the instance versioning fast paths) shares the
  columnar form too.
* :func:`ensure_encoded` / :func:`encoding_of` -- attach an encoder to an
  :class:`~repro.relational.instance.Instance`; the vectorized query kernel
  of :mod:`repro.query.vectorized` engages exactly when the instance carries
  one.

Equality semantics: interning uses a plain dict, so values that compare equal
under ``==`` (the equality every query language and frozenset in this
reproduction already uses) share one id, and decoding returns the first-seen
representative -- the same representative-collapsing behaviour a frozenset of
raw tuples exhibits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from xml.sax.saxutils import escape

from repro.relational.domain import (
    DataValue,
    order_key,
    relation_to_text,
    value_to_text,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.instance import Instance, Relation

#: Default cap on distinct key-column index sets cached per columnar relation
#: (mirrors :attr:`Relation.max_hash_indexes` on the row side).
DEFAULT_MAX_INDEXES = 8

#: Sentinel distinguishing "uniqueness not probed yet" from a cached ``None``.
_UNIQUE_UNKNOWN = object()


class ColumnarRelation:
    """A relation stored column-wise over dense integer ids.

    ``columns[j][i]`` is the encoded value of attribute ``j`` in row ``i``.
    Row order is the iteration order of the source relation's tuple set,
    fixed once at encode time; the lazily built hash indexes map a key (a
    single id for one key column, a tuple of ids otherwise) to the list of
    row positions carrying it.
    """

    __slots__ = (
        "name",
        "arity",
        "columns",
        "num_rows",
        "_indexes",
        "_unique",
        "_indexes_built",
        "_indexes_evicted",
        "max_indexes",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        columns: Sequence[list[int]],
        num_rows: int,
        max_indexes: int = DEFAULT_MAX_INDEXES,
    ) -> None:
        self.name = name
        self.arity = arity
        self.columns = tuple(columns)
        self.num_rows = num_rows
        self._indexes: dict[tuple[int, ...], dict] = {}
        self._unique: dict[tuple[int, ...], dict | None] = {}
        self._indexes_built = 0
        self._indexes_evicted = 0
        self.max_indexes = max_indexes

    def index(self, positions: tuple[int, ...]) -> dict:
        """A hash index on the given column positions, built lazily and cached.

        Single-position indexes are keyed by the bare id (the common case:
        one join column probed with plain int hashing); multi-position
        indexes by the tuple of ids.  At most :attr:`max_indexes` distinct
        position sets are cached, evicted least-recently-used.
        """
        index = self._indexes.get(positions)
        if index is not None:
            # Reinsert so eviction is least-recently-used.
            del self._indexes[positions]
            self._indexes[positions] = index
            return index
        index = {}
        if len(positions) == 1:
            column = self.columns[positions[0]]
            for row_id, key in enumerate(column):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row_id]
                else:
                    bucket.append(row_id)
        else:
            key_columns = [self.columns[p] for p in positions]
            for row_id, key in enumerate(zip(*key_columns)):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row_id]
                else:
                    bucket.append(row_id)
        self._indexes_built += 1
        self._indexes[positions] = index
        while len(self._indexes) >= self.max_indexes + 1:
            oldest = next(iter(self._indexes))
            del self._indexes[oldest]
            # The flattened unique twin derives from the evicted index and
            # is comparably sized: evict it too, or the cap bounds only
            # half the memory.
            self._unique.pop(oldest, None)
            self._indexes_evicted += 1
        return index

    def unique_index(self, positions: tuple[int, ...]) -> dict | None:
        """A ``key -> row_id`` index when ``positions`` is a key, else ``None``.

        Joins probing a unique key (e.g. courses by course number) use this
        flattened form for C-level bulk probing (``map(index.get, keys)``)
        instead of walking one-element bucket lists.  Derived from
        :meth:`index` once and cached alongside it.
        """
        found = self._unique.get(positions, _UNIQUE_UNKNOWN)
        if found is not _UNIQUE_UNKNOWN:
            return found
        index = self.index(positions)
        flattened: dict | None = {}
        for key, bucket in index.items():
            if len(bucket) > 1:
                flattened = None
                break
            flattened[key] = bucket[0]
        self._unique[positions] = flattened
        while len(self._unique) > self.max_indexes:
            self._unique.pop(next(iter(self._unique)))
        return flattened

    def clear_indexes(self) -> None:
        """Drop every cached index (the columns themselves are kept)."""
        self._indexes.clear()
        self._unique.clear()

    def index_stats(self) -> dict[str, int]:
        """Counters of the index cache (for benchmarks and tuning)."""
        return {
            "cached": len(self._indexes),
            "built": self._indexes_built,
            "evicted": self._indexes_evicted,
            "capacity": self.max_indexes,
        }

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarRelation({self.name!r}, arity={self.arity}, "
            f"rows={self.num_rows})"
        )


class DictionaryEncoder:
    """A per-database value dictionary: ``DataValue`` <-> dense integer id.

    Ids are assigned on first sight and never change; :attr:`values` is the
    stable decode table (``values[id]`` is the first-seen representative of
    the id's equality class).  One encoder is meant to be shared by a whole
    lineage of instance versions -- :meth:`Instance.apply_delta` propagates
    it -- so that registers, memo keys and query answers encoded under one
    version stay valid under the next.
    """

    __slots__ = (
        "_ids",
        "values",
        "_row_cache",
        "_fragment_cache",
        "_value_fragments",
        "_order_keys",
    )

    #: Cap on the memoised decoded-row cache (cleared wholesale when full).
    max_cached_rows = 1_000_000

    #: Cap on the escaped text-fragment cache (cleared wholesale when full).
    max_cached_fragments = 1_000_000

    def __init__(self) -> None:
        self._ids: dict[DataValue, int] = {}
        self.values: list[DataValue] = []
        self._row_cache: dict[tuple[int, ...], tuple[DataValue, ...]] = {}
        self._fragment_cache: dict[frozenset[tuple[int, ...]], str] = {}
        self._value_fragments: dict[int, str] = {}
        self._order_keys: dict[int, tuple] = {}

    def __getstate__(self):
        # Only the decode table crosses a process boundary: the caches are
        # derived (and can dwarf it after warm publishes), and ``_ids`` is
        # exactly ``values`` inverted -- one representative per equality
        # class, in id order -- so the worker rebuilds it losslessly.
        return self.values

    def __setstate__(self, values) -> None:
        self.values = values
        self._ids = {value: index for index, value in enumerate(values)}
        self._row_cache = {}
        self._fragment_cache = {}
        self._value_fragments = {}
        self._order_keys = {}

    # -- encoding ------------------------------------------------------------

    def intern(self, value: DataValue) -> int:
        """The id of ``value``, assigning a fresh one on first sight."""
        ids = self._ids
        found = ids.get(value)
        if found is None:
            found = len(self.values)
            ids[value] = found
            self.values.append(value)
        return found

    def intern_row(self, row: Sequence[DataValue]) -> tuple[int, ...]:
        """Encode one tuple of values."""
        ids = self._ids
        values = self.values
        out = []
        for value in row:
            found = ids.get(value)
            if found is None:
                found = len(values)
                ids[value] = found
                values.append(value)
            out.append(found)
        return tuple(out)

    def encode_rows(
        self, rows: Iterable[Sequence[DataValue]]
    ) -> frozenset[tuple[int, ...]]:
        """Encode a set of tuples (e.g. a delta's change set or an override)."""
        intern_row = self.intern_row
        return frozenset(intern_row(row) for row in rows)

    # -- decoding ------------------------------------------------------------

    def decode_row(self, row: tuple[int, ...]) -> tuple[DataValue, ...]:
        """Decode one encoded tuple back to domain values.

        Decoded rows are memoised per encoder: answer sets repeat across
        executions (the engine's memoised expansions, benchmark loops, the
        Datalog fixpoint), so the common decode is one dict lookup instead
        of a tuple rebuild.  The memo is cleared wholesale if it ever
        reaches :attr:`max_cached_rows`.
        """
        cache = self._row_cache
        decoded = cache.get(row)
        if decoded is None:
            decoded = tuple(map(self.values.__getitem__, row))
            if len(cache) >= self.max_cached_rows:
                cache.clear()
            cache[row] = decoded
        return decoded

    def decode_rows(
        self, rows: Iterable[tuple[int, ...]]
    ) -> frozenset[tuple[DataValue, ...]]:
        """Decode a set of encoded tuples (memoised per row)."""
        cache = self._row_cache
        lookup = self.values.__getitem__
        out = []
        append = out.append
        fresh = []
        for row in rows:
            decoded = cache.get(row)
            if decoded is None:
                decoded = tuple(map(lookup, row))
                fresh.append((row, decoded))
            append(decoded)
        if fresh:
            if len(cache) + len(fresh) >= self.max_cached_rows:
                cache.clear()
            cache.update(fresh)
        return frozenset(out)

    # -- rendered fragments and order keys -----------------------------------

    def escaped_value(self, vid: int) -> str:
        """The XML-escaped text form of one interned value, memoised per id.

        Ids never change, so the fragment computed once (``escape`` over
        :func:`~repro.relational.domain.value_to_text`) stays valid for the
        whole lineage of instance versions sharing this encoder.
        """
        fragments = self._value_fragments
        found = fragments.get(vid)
        if found is None:
            found = escape(value_to_text(self.values[vid]))
            fragments[vid] = found
        return found

    def escaped_text(self, rows: frozenset[tuple[int, ...]]) -> str:
        """The XML-escaped character data of an encoded register.

        Matches ``escape(relation_to_text(decoded_register))`` byte for byte:
        the row separators (``"; "`` / ``", "``) contain nothing the escaper
        rewrites, so escaping per value and joining is identical to joining
        and escaping.  Registers repeat heavily across publishes (they are
        the engine's memo keys), so the result is interned per register.
        """
        cache = self._fragment_cache
        found = cache.get(rows)
        if found is None:
            if len(rows) == 1:
                row = next(iter(rows))
                if len(row) == 1:
                    found = self.escaped_value(row[0])
                else:
                    found = escape(relation_to_text(self.decode_rows(rows)))
            else:
                found = escape(relation_to_text(self.decode_rows(rows)))
            if len(cache) >= self.max_cached_fragments:
                cache.clear()
            cache[rows] = found
        return found

    def order_key_of(self, vid: int) -> tuple:
        """The :func:`~repro.relational.domain.order_key` of an interned value.

        Memoised per id so encoded sibling-order sorts never rebuild the
        type-rank tuples of values they have sorted before.
        """
        keys = self._order_keys
        found = keys.get(vid)
        if found is None:
            found = order_key(self.values[vid])
            keys[vid] = found
        return found

    def row_order_key(self, row: tuple[int, ...]) -> tuple:
        """Sort key for one encoded row under the implicit document order."""
        return tuple(map(self.order_key_of, row))

    # -- columnar views ------------------------------------------------------

    def columns_for(self, relation: "Relation") -> ColumnarRelation:
        """The columnar form of ``relation`` under this encoder.

        Built once per (relation object, encoder) and cached on the relation,
        so every instance version sharing the relation object by identity --
        the :meth:`Instance.apply_delta` / :meth:`Instance.updated` fast
        paths -- shares the columns and their warm indexes too.
        """
        cached = relation._columnar
        if cached is not None and cached[0] is self:
            return cached[1]
        arity = relation.arity
        columns: list[list[int]] = [[] for _ in range(arity)]
        appends = [column.append for column in columns]
        ids = self._ids
        values = self.values
        num_rows = 0
        for row in relation._tuples:
            num_rows += 1
            for value, append in zip(row, appends):
                found = ids.get(value)
                if found is None:
                    found = len(values)
                    ids[value] = found
                    values.append(value)
                append(found)
        columnar = ColumnarRelation(relation.name, arity, columns, num_rows)
        relation._columnar = (self, columnar)
        return columnar

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def stats(self) -> dict[str, int]:
        """Size of the dictionary and its derived caches."""
        return {
            "distinct_values": len(self.values),
            "cached_fragments": len(self._fragment_cache),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DictionaryEncoder(distinct_values={len(self.values)})"


# ---------------------------------------------------------------------------
# Attaching encoders to instances.
# ---------------------------------------------------------------------------


def encoding_of(instance: "Instance") -> DictionaryEncoder | None:
    """The encoder carried by ``instance``, or ``None`` (row backend)."""
    return instance._encoding


def ensure_encoded(
    instance: "Instance", encoder: DictionaryEncoder | None = None
) -> DictionaryEncoder:
    """Attach a dictionary encoding to ``instance`` (idempotent).

    Every relation is interned eagerly so the first query execution does not
    pay the encode cost; subsequent versions produced by
    :meth:`~repro.relational.instance.Instance.apply_delta` (and
    :meth:`updated` / :meth:`extended`) inherit the encoder and encode only
    the relations the update actually replaced, lazily.  Returns the
    encoder, which callers can share across independently built instances
    over the same domain.
    """
    existing = instance._encoding
    if existing is not None:
        if encoder is not None and encoder is not existing:
            # Ids from unrelated dictionaries are incomparable; silently
            # keeping the old encoder would make cross-instance encoded
            # comparisons wrong.
            raise ValueError(
                "instance is already encoded with a different encoder"
            )
        return existing
    if encoder is None:
        encoder = DictionaryEncoder()
    for relation in instance.values():
        encoder.columns_for(relation)
    instance._encoding = encoder
    return encoder


def encoded_twin(
    instance: "Instance", encoder: DictionaryEncoder | None = None
) -> "Instance":
    """A value-equal twin of ``instance`` on the columnar backend.

    Unlike :func:`ensure_encoded` -- which attaches the encoding to the
    instance *in place* -- this leaves ``instance`` untouched on the row
    backend and returns a rebuilt instance sharing every
    :class:`~repro.relational.instance.Relation` object by identity (so the
    columnar forms cached on the relations are shared too).  Already-encoded
    instances are returned as-is.  This is how the serving layer pins a
    request to ``backend="columnar"`` on a source whose canonical lineage is
    row-oriented, without forking the data or flipping the source's mode.
    """
    if instance._encoding is not None:
        if encoder is not None and encoder is not instance._encoding:
            raise ValueError("instance is already encoded with a different encoder")
        return instance
    twin = type(instance)._rebuilt(instance.schema, dict(instance), None)
    ensure_encoded(twin, encoder)
    return twin


def cached_columnar(relation: "Relation") -> ColumnarRelation | None:
    """The columnar form cached on ``relation``, or ``None`` if never built.

    Purely observational (used by the serving layer's aggregated stats): it
    never triggers an encode, unlike :meth:`DictionaryEncoder.columns_for`.
    """
    cached = relation._columnar
    return cached[1] if cached is not None else None
