"""Relation schemas and relational schemas.

A *relational schema* ``R`` is a finite collection of relation names with
associated arities (Section 2 of the paper).  Attribute names are optional --
the formal model is positional -- but the publishing-language front-ends
(Section 4) speak in terms of named columns, so :class:`RelationSchema`
supports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.relational.errors import SchemaError, UnknownRelationError


@dataclass(frozen=True)
class RelationSchema:
    """A single relation name with its arity and optional attribute names.

    Parameters
    ----------
    name:
        The relation name, e.g. ``"course"``.
    arity:
        Number of columns.  Must be non-negative.
    attributes:
        Optional column names.  When provided their number must equal
        ``arity`` and they must be pairwise distinct.
    """

    name: str
    arity: int
    attributes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be a non-empty string")
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r} has negative arity {self.arity}")
        attributes = tuple(self.attributes)
        object.__setattr__(self, "attributes", attributes)
        if attributes:
            if len(attributes) != self.arity:
                raise SchemaError(
                    f"relation {self.name!r} declares {len(attributes)} attributes "
                    f"but has arity {self.arity}"
                )
            if len(set(attributes)) != len(attributes):
                raise SchemaError(f"relation {self.name!r} has duplicate attribute names")

    def position_of(self, attribute: str) -> int:
        """Return the column index of ``attribute``.

        Raises :class:`SchemaError` if the relation has no named attributes or
        the attribute is unknown.
        """
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} has no named attributes")
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.attributes:
            return f"{self.name}({', '.join(self.attributes)})"
        return f"{self.name}/{self.arity}"


class RelationalSchema(Mapping[str, RelationSchema]):
    """A finite collection of relation schemas, indexed by relation name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    # -- construction -----------------------------------------------------

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; raise on duplicate names with other arities."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise SchemaError(
                f"relation {relation.name!r} already declared with a different shape"
            )
        self._relations[relation.name] = relation

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "RelationalSchema":
        """Build a schema from a ``name -> arity`` mapping (positional columns)."""
        return cls(RelationSchema(name, arity) for name, arity in arities.items())

    @classmethod
    def from_attributes(cls, attributes: Mapping[str, Iterable[str]]) -> "RelationalSchema":
        """Build a schema from a ``name -> attribute names`` mapping."""
        return cls(
            RelationSchema(name, len(tuple(columns)), tuple(columns))
            for name, columns in attributes.items()
        )

    def extended(self, extra: Iterable[RelationSchema]) -> "RelationalSchema":
        """Return a copy of this schema with extra relations added."""
        merged = RelationalSchema(self._relations.values())
        for relation in extra:
            merged.add(relation)
        return merged

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, tuple(self._relations)) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- convenience -------------------------------------------------------

    def arity(self, name: str) -> int:
        """Return the arity of relation ``name``."""
        return self[name].arity

    def names(self) -> tuple[str, ...]:
        """Return relation names in insertion order."""
        return tuple(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalSchema):
            return NotImplemented
        return dict(self._relations) == dict(other._relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(schema) for schema in self._relations.values())
        return f"RelationalSchema({inner})"
