"""A stateful wrapper maintaining one published view under a delta stream.

:class:`IncrementalPublisher` owns the current ``(instance, tree)`` version
of a view and advances it one :class:`~repro.relational.delta.Delta` at a
time through :meth:`~repro.engine.plan.PublishingPlan.republish`.  It is the
ergonomic surface of :mod:`repro.incremental`; everything it does can also be
driven by hand against the plan.
"""

from __future__ import annotations

from repro.core.transducer import PublishingTransducer
from repro.engine.plan import PublishingPlan, RepublishResult, compile_plan
from repro.relational.delta import Delta
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.xmltree.diff import trees_equal
from repro.xmltree.events import tree_to_events
from repro.xmltree.serialize import IncrementalXmlSerializer
from repro.xmltree.tree import TreeNode


class IncrementalPublisher:
    """Maintain a published XML view under a stream of source deltas.

    The constructor publishes the initial view; every :meth:`apply` (or the
    :meth:`insert` / :meth:`delete` shorthands) advances the maintained
    instance and tree and returns the step's
    :class:`~repro.engine.plan.RepublishResult`, whose ``edits`` field is
    the document diff to ship downstream::

        publisher = IncrementalPublisher(tau, instance)
        step = publisher.insert("prereq", ("cs500", "cs240"))
        send(step.edits)            # or send(publisher.xml()) to resend all

    With ``encoded=True`` the source instance is dictionary-encoded up
    front (:func:`repro.relational.columnar.ensure_encoded`), so every
    publish and republish runs on the columnar kernel with registers and
    memo keys in integer space; output is byte-identical either way.

    ``verify()`` re-runs the full-publish oracle on the current instance and
    checks the maintained tree against it, byte for byte.
    """

    def __init__(
        self,
        transducer: PublishingTransducer | PublishingPlan,
        instance: Instance,
        max_nodes: int | None = None,
        encoded: bool = False,
    ) -> None:
        if isinstance(transducer, PublishingPlan):
            self._plan = transducer
        else:
            self._plan = compile_plan(transducer)
        if encoded:
            # Run the whole maintained view on the columnar pipeline: the
            # encoding is built once here and migrates through every
            # apply_delta version, so republish steps intern only the delta.
            from repro.relational.columnar import ensure_encoded

            ensure_encoded(instance)
        self._max_nodes = max_nodes
        self._instance = instance
        self._tree = self._plan.publish(instance, max_nodes)
        self._updates = 0

    # -- accessors -----------------------------------------------------------

    @property
    def plan(self) -> PublishingPlan:
        """The compiled plan evaluating the view."""
        return self._plan

    @property
    def instance(self) -> Instance:
        """The current source instance."""
        return self._instance

    @property
    def tree(self) -> TreeNode:
        """The current published Σ-tree."""
        return self._tree

    @property
    def updates(self) -> int:
        """How many deltas have been applied."""
        return self._updates

    def xml(self, indent: int | None = 2) -> str:
        """The current document as XML (byte-identical to a full publish)."""
        serializer = IncrementalXmlSerializer(indent=indent)
        return serializer.feed_all(tree_to_events(self._tree)).finish()

    # -- maintenance ---------------------------------------------------------

    def apply(self, delta: Delta) -> RepublishResult:
        """Advance the view by one delta and return the step's result."""
        result = self._plan.republish(
            self._instance, delta, prev_tree=self._tree, max_nodes=self._max_nodes
        )
        self._instance = result.instance
        self._tree = result.tree
        self._updates += 1
        return result

    def insert(self, relation: str, *rows: tuple[DataValue, ...]) -> RepublishResult:
        """Apply a pure-insertion delta on one relation."""
        return self.apply(Delta.insert(relation, *rows))

    def delete(self, relation: str, *rows: tuple[DataValue, ...]) -> RepublishResult:
        """Apply a pure-deletion delta on one relation."""
        return self.apply(Delta.delete(relation, *rows))

    # -- the differential oracle ----------------------------------------------

    def verify(self) -> TreeNode:
        """Check the maintained view against a from-scratch publish.

        A fresh plan (cold caches) republishes the current instance; the
        maintained tree must equal it and serialise to the same bytes.
        Returns the oracle tree; raises :class:`AssertionError` on any
        divergence (which would be a maintenance bug, never expected).
        """
        oracle_plan = compile_plan(
            self._plan.transducer, max_nodes=self._plan.max_nodes
        )
        oracle = oracle_plan.publish(self._instance, self._max_nodes)
        if not trees_equal(oracle, self._tree):
            raise AssertionError("incremental view diverged from the full publish")
        serializer = IncrementalXmlSerializer(indent=2)
        oracle_xml = serializer.feed_all(tree_to_events(oracle)).finish()
        if oracle_xml != self.xml():
            raise AssertionError(
                "incremental serialisation diverged from the full publish"
            )
        return oracle
