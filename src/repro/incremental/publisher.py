"""The deprecated single-view facade, now a shim over :mod:`repro.serve`.

:class:`IncrementalPublisher` predates the serving layer: it owned one
``(instance, tree)`` version of one view and advanced it one
:class:`~repro.relational.delta.Delta` at a time.  That is exactly a
:class:`~repro.serve.server.ViewServer` with one registered view, one
attached source and one subscription, so the class now delegates wholesale
-- construction registers/attaches/subscribes, :meth:`apply` commits the
delta and returns the subscription's delivered
:class:`~repro.engine.plan.RepublishResult` -- and emits a single
:class:`DeprecationWarning` per callsite.  Behaviour (including the
``encoded=True`` in-place encoding and the :meth:`verify` differential
oracle) is unchanged.
"""

from __future__ import annotations

import warnings

from repro.core.transducer import PublishingTransducer
from repro.engine.plan import PublishingPlan, RepublishResult, compile_plan
from repro.relational.delta import Delta
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.xmltree.diff import trees_equal
from repro.xmltree.tree import TreeNode


class IncrementalPublisher:
    """Deprecated: maintain one published XML view under a delta stream.

    Use :class:`repro.serve.ViewServer` instead -- it serves many named
    views over many versioned sources with the same incremental machinery::

        server = ViewServer()
        server.register_view("view", tau)
        handle = server.attach(instance)
        subscription = server.subscribe("view")
        handle.commit(Delta.insert("prereq", ("cs500", "cs240")))
        send(subscription.pop().edits)

    This shim keeps the original two-method surface (hold a view, apply
    deltas) on top of exactly that arrangement: every :meth:`apply` (or the
    :meth:`insert` / :meth:`delete` shorthands) commits one delta to the
    private handle and returns the step's
    :class:`~repro.engine.plan.RepublishResult`, whose ``edits`` field is
    the document diff to ship downstream.  With ``encoded=True`` the source
    instance is dictionary-encoded in place, as before.  ``verify()``
    re-runs the full-publish oracle and checks the maintained tree against
    it, byte for byte.
    """

    def __init__(
        self,
        transducer: PublishingTransducer | PublishingPlan,
        instance: Instance,
        max_nodes: int | None = None,
        encoded: bool = False,
    ) -> None:
        warnings.warn(
            "IncrementalPublisher is deprecated; use repro.serve.ViewServer "
            "(register_view + attach + subscribe)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.serve import ViewServer

        self._server = ViewServer()
        self._view = self._server.register_view("view", transducer)
        self._handle = self._server.attach(instance, encoded=encoded)
        self._subscription = self._server.subscribe(
            self._view, self._handle, max_nodes=max_nodes
        )
        self._max_nodes = max_nodes
        self._updates = 0

    # -- accessors -----------------------------------------------------------

    @property
    def plan(self) -> PublishingPlan:
        """The compiled plan evaluating the view."""
        return self._view.plan_for(None)

    @property
    def instance(self) -> Instance:
        """The current source instance."""
        return self._subscription.instance

    @property
    def tree(self) -> TreeNode:
        """The current published Σ-tree."""
        return self._subscription.tree

    @property
    def updates(self) -> int:
        """How many deltas have been applied."""
        return self._updates

    def xml(self, indent: int | None = 2) -> str:
        """The current document as XML (byte-identical to a full publish)."""
        from repro.serve.oneshot import serialize_tree

        return serialize_tree(self.tree, indent=indent)

    # -- maintenance ---------------------------------------------------------

    def apply(self, delta: Delta) -> RepublishResult:
        """Advance the view by one delta and return the step's result."""
        self._handle.commit(delta)
        result = self._subscription.pop().result
        # The original class kept only the current (instance, tree); prune
        # the private handle's history so a long-running update stream runs
        # in constant memory, exactly as before.
        self._handle.prune(keep_last=1)
        self._updates += 1
        return result

    def insert(self, relation: str, *rows: tuple[DataValue, ...]) -> RepublishResult:
        """Apply a pure-insertion delta on one relation."""
        return self.apply(Delta.insert(relation, *rows))

    def delete(self, relation: str, *rows: tuple[DataValue, ...]) -> RepublishResult:
        """Apply a pure-deletion delta on one relation."""
        return self.apply(Delta.delete(relation, *rows))

    # -- the differential oracle ----------------------------------------------

    def verify(self) -> TreeNode:
        """Check the maintained view against a from-scratch publish.

        A fresh plan (cold caches) republishes the current instance; the
        maintained tree must equal it and serialise to the same bytes.
        Returns the oracle tree; raises :class:`AssertionError` on any
        divergence (which would be a maintenance bug, never expected).
        """
        from repro.serve.oneshot import serialize_tree

        plan = self.plan
        oracle_plan = compile_plan(plan.transducer, max_nodes=plan.max_nodes)
        oracle = oracle_plan.publish(self.instance, self._max_nodes)
        if not trees_equal(oracle, self.tree):
            raise AssertionError("incremental view diverged from the full publish")
        if serialize_tree(oracle) != self.xml():
            raise AssertionError(
                "incremental serialisation diverged from the full publish"
            )
        return oracle
