"""``repro.incremental`` -- end-to-end delta-driven view maintenance.

A publishing transducer defines a *virtual* XML view over a relational
source; production middleware cannot afford to recompute the whole tree and
discard every memoised expansion each time the source changes.  This
subsystem makes all four layers update-aware and ties them together:

* **relational** -- :class:`~repro.relational.delta.Delta` (inserted /
  deleted tuples per relation) and
  :meth:`~repro.relational.instance.Instance.apply_delta`, which versions an
  instance while reusing every untouched relation object and its warm hash
  indexes by identity;
* **query** -- :meth:`~repro.query.plan.QueryPlan.execute_delta`
  (:mod:`repro.query.delta`): the exact change in a plan's answers via the
  PR 2 per-occurrence semi-naive device, with a recomputation fallback for
  negation, flagged in ``explain()``;
* **engine** -- :meth:`~repro.engine.plan.PublishingPlan.republish`:
  fine-grained memo invalidation (only expansions whose rule queries read a
  changed relation are dropped; ``cache_stats`` counts ``invalidated`` /
  ``retained``) plus structural sharing of unchanged output subtrees;
* **xmltree** -- :class:`~repro.xmltree.diff.EditScript` /
  :func:`~repro.xmltree.diff.diff_trees`: ship insert / delete /
  replace-subtree events instead of full documents.

The serving surface over this pipeline is :class:`repro.serve.ViewServer`:
attach a source, subscribe to a view, and every
:meth:`~repro.serve.server.SourceHandle.commit` delivers one edit script.
:class:`IncrementalPublisher` (the original two-method facade) is kept as a
deprecated shim over exactly that arrangement.  The full republish remains
the executable specification and the differential oracle -- incremental
output is always equal, tree- and byte-wise, to publishing the updated
instance from scratch.

    >>> from repro.serve import ViewServer
    >>> server = ViewServer()                                 # doctest: +SKIP
    >>> server.register_view("view", tau)                     # doctest: +SKIP
    >>> handle = server.attach(instance)                      # doctest: +SKIP
    >>> subscription = server.subscribe("view")               # doctest: +SKIP
    >>> handle.commit(Delta.insert("prereq", ("cs500", "cs240")))
    ...                                                       # doctest: +SKIP
    >>> print(subscription.pop().edits.describe())            # doctest: +SKIP
"""

from repro.engine.plan import RepublishResult
from repro.incremental.publisher import IncrementalPublisher
from repro.query.delta import QueryDelta
from repro.relational.delta import Delta
from repro.xmltree.diff import (
    DeleteSubtree,
    EditScript,
    InsertSubtree,
    ReplaceSubtree,
    diff_trees,
)

__all__ = [
    "DeleteSubtree",
    "Delta",
    "EditScript",
    "IncrementalPublisher",
    "InsertSubtree",
    "QueryDelta",
    "ReplaceSubtree",
    "RepublishResult",
    "diff_trees",
]
