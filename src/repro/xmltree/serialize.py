"""Serialisation of Σ-trees to XML text."""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.xmltree.tree import TreeNode


def to_xml(node: TreeNode, indent: int = 2, _level: int = 0) -> str:
    """Render a Σ-tree as pretty-printed XML.

    Text nodes become character data of their parent element; element nodes
    become tags.  The output is deterministic because sibling order is part of
    the tree.
    """
    pad = " " * (indent * _level)
    if node.is_text():
        return f"{pad}{escape(node.text or '')}"
    if not node.children:
        return f"{pad}<{node.label}/>"
    only_text = all(child.is_text() for child in node.children)
    if only_text:
        content = "".join(escape(child.text or "") for child in node.children)
        return f"{pad}<{node.label}>{content}</{node.label}>"
    lines = [f"{pad}<{node.label}>"]
    for child in node.children:
        lines.append(to_xml(child, indent, _level + 1))
    lines.append(f"{pad}</{node.label}>")
    return "\n".join(lines)


def to_compact_xml(node: TreeNode) -> str:
    """Render a Σ-tree as single-line XML (useful in assertions and logs)."""
    if node.is_text():
        return escape(node.text or "")
    if not node.children:
        return f"<{node.label}/>"
    inner = "".join(to_compact_xml(child) for child in node.children)
    return f"<{node.label}>{inner}</{node.label}>"
