"""Serialisation of Σ-trees to XML text.

Two families of serialisers live here:

* :func:`to_xml` / :func:`to_compact_xml` -- the original recursive
  renderers over a materialised :class:`~repro.xmltree.tree.TreeNode`;
* :class:`IncrementalXmlSerializer` -- an event-driven serialiser consuming
  the SAX-style streams of :mod:`repro.xmltree.events`, producing output
  **byte-identical** to the materialised renderers without ever holding the
  tree.  This is the serialisation backend of the publishing engine's
  streaming mode: Proposition 1 outputs can be doubly exponential in the
  source, so a production serialiser must run in memory proportional to the
  tree *depth*, not its size.
"""

from __future__ import annotations

from typing import Callable, Iterable

from xml.sax.saxutils import escape

from repro.xmltree.events import CloseEvent, OpenEvent, TextEvent, XmlEvent
from repro.xmltree.tree import TreeNode


def to_xml(node: TreeNode, indent: int = 2, _level: int = 0) -> str:
    """Render a Σ-tree as pretty-printed XML.

    Text nodes become character data of their parent element; element nodes
    become tags.  The output is deterministic because sibling order is part of
    the tree.  The walk is iterative: Proposition-1 outputs can be deeper
    than Python's recursion limit (the flat preorder codec of
    :mod:`repro.xmltree.diff` exists precisely to move such trees around),
    and serialising one must not blow the interpreter stack.
    """
    lines: list[str] = []
    # Each stack item is either a pending (node, level) pair or an
    # already-rendered closing line (pushed before the node's children so it
    # lands after them).
    stack: list[tuple[TreeNode, int] | str] = [(node, _level)]
    while stack:
        item = stack.pop()
        if type(item) is str:
            lines.append(item)
            continue
        current, level = item
        pad = " " * (indent * level)
        if current.is_text():
            lines.append(f"{pad}{escape(current.text or '')}")
            continue
        if not current.children:
            lines.append(f"{pad}<{current.label}/>")
            continue
        if all(child.is_text() for child in current.children):
            content = "".join(escape(child.text or "") for child in current.children)
            lines.append(f"{pad}<{current.label}>{content}</{current.label}>")
            continue
        lines.append(f"{pad}<{current.label}>")
        stack.append(f"{pad}</{current.label}>")
        for child in reversed(current.children):
            stack.append((child, level + 1))
    return "\n".join(lines)


def to_compact_xml(node: TreeNode) -> str:
    """Render a Σ-tree as single-line XML (useful in assertions and logs).

    Iterative for the same reason as :func:`to_xml`: tree depth must never
    bound what can be serialised.
    """
    parts: list[str] = []
    stack: list[TreeNode | str] = [node]
    while stack:
        item = stack.pop()
        if type(item) is str:
            parts.append(item)
            continue
        if item.is_text():
            parts.append(escape(item.text or ""))
            continue
        if not item.children:
            parts.append(f"<{item.label}/>")
            continue
        parts.append(f"<{item.label}>")
        stack.append(f"</{item.label}>")
        stack.extend(reversed(item.children))
    return "".join(parts)


class _Frame:
    """One open element of the incremental serialiser."""

    __slots__ = ("tag", "level", "pending", "texts")

    def __init__(self, tag: str, level: int) -> None:
        self.tag = tag
        self.level = level
        # While pending, the open tag has not been written yet: we do not know
        # whether the element is empty (``<tag/>``), text-only (inline) or
        # mixed (multi-line) until a child arrives or the element closes.
        self.pending = True
        self.texts: list[str] = []


class IncrementalXmlSerializer:
    """Serialise an event stream to XML, matching the materialised renderers.

    With the default ``indent`` the output is byte-identical to
    :func:`to_xml` on the corresponding tree; with ``indent=None`` it matches
    :func:`to_compact_xml`.  Chunks are pushed to the ``write`` callable as
    soon as they are determined, so memory use is bounded by the depth of the
    document (plus any run of text children buffered while an element may
    still turn out to be text-only).

    Usage::

        serializer = IncrementalXmlSerializer()
        for event in plan.publish_events(instance):
            serializer.feed(event)
        xml = serializer.finish()
    """

    def __init__(
        self,
        write: Callable[[str], object] | None = None,
        indent: int | None = 2,
    ) -> None:
        self._chunks: list[str] | None = [] if write is None else None
        self._write: Callable[[str], object] = (
            self._chunks.append if write is None else write  # type: ignore[union-attr]
        )
        self._indent = indent
        self._frames: list[_Frame] = []
        self._started = False
        self._done = False

    # -- event interface -----------------------------------------------------

    def feed(self, event: XmlEvent) -> None:
        """Consume one event."""
        if self._done:
            raise ValueError("event after the document root was closed")
        if isinstance(event, OpenEvent):
            self._open(event.tag)
        elif isinstance(event, TextEvent):
            self._text(escape(event.text or ""))
        elif isinstance(event, CloseEvent):
            self._close(event.tag)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event: {event!r}")

    def feed_all(self, events: Iterable[XmlEvent]) -> "IncrementalXmlSerializer":
        """Consume a whole event stream; returns ``self`` for chaining."""
        for event in events:
            self.feed(event)
        return self

    def finish(self) -> str:
        """Check the stream was balanced and return the accumulated text.

        When a ``write`` callable was supplied the chunks have already been
        pushed and the return value is an empty string.
        """
        if self._frames:
            raise ValueError(f"unclosed element {self._frames[-1].tag!r} at end of stream")
        if not self._done:
            raise ValueError("empty event stream")
        return "".join(self._chunks) if self._chunks is not None else ""

    # -- internals -----------------------------------------------------------

    def _pad(self, level: int) -> str:
        return " " * ((self._indent or 0) * level)

    def _emit_line(self, level: int, content: str) -> None:
        if self._indent is None:
            self._write(content)
            return
        if self._started:
            self._write("\n")
        self._write(self._pad(level) + content)
        self._started = True

    def _flush_open(self, frame: _Frame) -> None:
        """Write a pending element's open tag (it turned out to be mixed)."""
        self._emit_line(frame.level, f"<{frame.tag}>")
        for text in frame.texts:
            self._emit_line(frame.level + 1, text)
        frame.texts.clear()
        frame.pending = False

    def _open(self, tag: str) -> None:
        if not self._frames:
            if self._started or self._done:
                raise ValueError("event stream contains more than one root")
            level = 0
        else:
            parent = self._frames[-1]
            if parent.pending:
                self._flush_open(parent)
            level = parent.level + 1
        self._frames.append(_Frame(tag, level))

    def _text(self, escaped: str) -> None:
        if not self._frames:
            raise ValueError("text event outside the document root")
        frame = self._frames[-1]
        if self._indent is None:
            if frame.pending:
                self._emit_line(frame.level, f"<{frame.tag}>")
                frame.pending = False
            self._write(escaped)
        elif frame.pending:
            # The element may still be text-only; buffer for inline rendering.
            frame.texts.append(escaped)
        else:
            self._emit_line(frame.level + 1, escaped)

    def _close(self, tag: str) -> None:
        if not self._frames:
            raise ValueError(f"close event for {tag!r} without a matching open")
        frame = self._frames.pop()
        if frame.tag != tag:
            raise ValueError(f"close event for {tag!r} inside open element {frame.tag!r}")
        if frame.pending:
            if frame.texts:
                inline = "".join(frame.texts)
                self._emit_line(frame.level, f"<{tag}>{inline}</{tag}>")
            else:
                self._emit_line(frame.level, f"<{tag}/>")
        else:
            self._emit_line(frame.level, f"</{tag}>")
        if not self._frames:
            self._done = True


def xml_from_events(events: Iterable[XmlEvent], indent: int = 2) -> str:
    """Serialise an event stream to pretty-printed XML (matches :func:`to_xml`)."""
    return IncrementalXmlSerializer(indent=indent).feed_all(events).finish()


def compact_xml_from_events(events: Iterable[XmlEvent]) -> str:
    """Serialise an event stream to single-line XML (matches :func:`to_compact_xml`)."""
    return IncrementalXmlSerializer(indent=None).feed_all(events).finish()
