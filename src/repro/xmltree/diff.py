"""Edit scripts between Σ-trees: ship diffs instead of full documents.

Incremental republication (:meth:`~repro.engine.plan.PublishingPlan.republish`)
rebuilds only the regions of the output tree whose expansions changed and
reuses the previous :class:`~repro.xmltree.tree.TreeNode` objects everywhere
else.  That structural sharing is what makes diffing cheap: the comparison in
:func:`diff_trees` short-circuits on object identity, so its cost is
proportional to the *changed* region, not the document size.

An :class:`EditScript` is an ordered sequence of subtree edits addressed by
tree-domain paths (the root is ``()``; the ``i``-th child of ``v`` is
``v + (i,)`` with ``i`` starting at 1, as in the paper's tree domains):

* :class:`ReplaceSubtree` -- the node at the path is replaced wholesale;
* :class:`DeleteSubtree` -- the node at the path is removed (younger siblings
  shift left);
* :class:`InsertSubtree` -- a new subtree is inserted so that it *becomes*
  the child at the path (existing children at and after it shift right).

Edits apply sequentially: each path addresses the tree produced by the
preceding edits, and ``diff_trees(old, new).apply(old) == new`` always holds.
Every function here is iterative over tree depth only through the edit paths,
so exponentially deep outputs (Proposition 1) stay within recursion limits as
long as the *changed* spine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from xml.sax.saxutils import escape

from repro.xmltree.events import tree_to_events
from repro.xmltree.serialize import compact_xml_from_events
from repro.xmltree.tree import TreeNode

#: A tree-domain address: ``()`` is the root, indices are 1-based.
Path = tuple[int, ...]


@dataclass(frozen=True)
class InsertSubtree:
    """Insert ``node`` so it becomes the child at ``path``."""

    path: Path
    node: TreeNode


@dataclass(frozen=True)
class DeleteSubtree:
    """Remove the subtree rooted at ``path``."""

    path: Path


@dataclass(frozen=True)
class ReplaceSubtree:
    """Replace the subtree rooted at ``path`` by ``node``."""

    path: Path
    node: TreeNode


Edit = Union[InsertSubtree, DeleteSubtree, ReplaceSubtree]


@dataclass(frozen=True)
class EditScript:
    """An ordered sequence of subtree edits between two Σ-trees."""

    edits: tuple[Edit, ...] = ()

    def is_empty(self) -> bool:
        """True when the script changes nothing."""
        return not self.edits

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self) -> Iterator[Edit]:
        return iter(self.edits)

    def __bool__(self) -> bool:
        return bool(self.edits)

    def apply(self, tree: TreeNode) -> TreeNode:
        """Apply the edits in order and return the resulting tree."""
        for edit in self.edits:
            tree = _apply_edit(tree, edit)
        return tree

    def describe(self) -> str:
        """One line per edit, with inserted / replacement subtrees as compact XML."""
        lines = []
        for edit in self.edits:
            location = "/" + "/".join(str(index) for index in edit.path)
            if isinstance(edit, DeleteSubtree):
                lines.append(f"delete {location}")
            elif isinstance(edit, InsertSubtree):
                lines.append(f"insert {location} {_compact(edit.node)}")
            else:
                lines.append(f"replace {location} {_compact(edit.node)}")
        return "\n".join(lines)

    # -- wire codec ----------------------------------------------------------

    def to_wire(self) -> dict:
        """The canonical wire payload (see :mod:`repro.relational.wire`).

        Subtrees are encoded in the flat preorder form of
        :func:`tree_to_wire`, so scripts touching exponentially deep outputs
        (Proposition 1) survive JSON's recursive encoder.
        """
        edits = []
        for edit in self.edits:
            entry: dict = {"path": list(edit.path)}
            if isinstance(edit, DeleteSubtree):
                entry["op"] = "delete"
            else:
                entry["op"] = "insert" if isinstance(edit, InsertSubtree) else "replace"
                entry["node"] = tree_to_wire(edit.node)
            edits.append(entry)
        from repro.relational.wire import WIRE_FORMAT

        return {"format": WIRE_FORMAT, "kind": "edits", "edits": edits}

    def to_json(self) -> str:
        """The canonical JSON text of :meth:`to_wire` (deterministic bytes)."""
        from repro.relational.wire import canonical_json

        return canonical_json(self.to_wire())

    @classmethod
    def from_wire(cls, payload) -> "EditScript":
        """Decode a wire payload (a JSON string or parsed mapping)."""
        from repro.relational.wire import WireError, _parsed

        payload = _parsed(payload, "edits")
        entries = payload.get("edits", [])
        if not isinstance(entries, list):
            raise WireError("edit script 'edits' must be a list")
        edits: list[Edit] = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise WireError(f"malformed edit entry {entry!r}")
            raw_path = entry.get("path")
            if not isinstance(raw_path, list) or not all(
                isinstance(step, int) and step >= 1 for step in raw_path
            ):
                raise WireError(f"malformed edit path {raw_path!r}")
            path = tuple(raw_path)
            op = entry.get("op")
            if op == "delete":
                edits.append(DeleteSubtree(path))
            elif op in ("insert", "replace"):
                node = tree_from_wire(entry.get("node"))
                edits.append(
                    InsertSubtree(path, node) if op == "insert" else ReplaceSubtree(path, node)
                )
            else:
                raise WireError(f"unknown edit op {op!r}")
        return cls(tuple(edits))

    @classmethod
    def from_json(cls, text) -> "EditScript":
        """Decode canonical JSON text (or an already-parsed payload)."""
        return cls.from_wire(text)


def _compact(node: TreeNode) -> str:
    if node.is_text():
        return escape(node.text or "")
    return compact_xml_from_events(tree_to_events(node))


def trees_equal(a: TreeNode, b: TreeNode) -> bool:
    """Structural equality, iterative and identity-accelerated.

    Equivalent to ``a == b`` but safe on trees deeper than the recursion
    limit (the dataclass-generated ``TreeNode.__eq__`` recurses per level);
    subtrees shared by object identity -- the normal case after an
    incremental republish -- are skipped without walking them.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if (
            x.label != y.label
            or x.text != y.text
            or len(x.children) != len(y.children)
        ):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def _same(a: TreeNode, b: TreeNode) -> bool:
    # Identity first: republished trees share unchanged subtree objects, so
    # the (iterative) equality walk rarely descends far.
    return a is b or trees_equal(a, b)


def diff_trees(old: TreeNode, new: TreeNode) -> EditScript:
    """An edit script turning ``old`` into ``new``.

    Children are aligned positionally (longest equal prefix and suffix, the
    middle paired in order), which matches how publishing transducers change
    their output: sibling order is derived from the data order, so a
    single-tuple source change inserts, deletes or rewrites a run of
    adjacent children.  The script is not guaranteed minimal for arbitrary
    reorderings, but ``apply`` always reproduces ``new`` exactly.
    """
    edits: list[Edit] = []
    stack: list[tuple[Path, TreeNode, TreeNode]] = [((), old, new)]
    while stack:
        path, o, n = stack.pop()
        if o is n:
            continue
        if o.label != n.label or o.text != n.text:
            edits.append(ReplaceSubtree(path, n))
            continue
        oc, nc = o.children, n.children
        len_old, len_new = len(oc), len(nc)
        if len_old == len_new:
            # Equal child counts: pair positionally and recurse.  The
            # prefix/suffix scan below would pair them identically anyway,
            # but discovers each deep difference through a full equality
            # walk *per ancestor level* -- cubic on a changed spine (every
            # level re-walks the subtree to find the same bottom mismatch).
            # Recursion finds it once, and unchanged subtrees short-circuit
            # by object identity (the normal case after a republish).
            for offset in range(len_old):
                stack.append((path + (offset + 1,), oc[offset], nc[offset]))
            continue
        limit = min(len_old, len_new)
        start = 0
        while start < limit and _same(oc[start], nc[start]):
            start += 1
        tail = 0
        while tail < limit - start and _same(oc[len_old - 1 - tail], nc[len_new - 1 - tail]):
            tail += 1
        mid_old = len_old - start - tail
        mid_new = len_new - start - tail
        paired = min(mid_old, mid_new)
        for offset in range(paired):
            stack.append((path + (start + offset + 1,), oc[start + offset], nc[start + offset]))
        # Unpaired old children: repeated deletion at the same (shifting) slot.
        for _ in range(mid_old - paired):
            edits.append(DeleteSubtree(path + (start + paired + 1,)))
        # Unpaired new children: inserted left to right after the pairs.
        for offset in range(mid_new - paired):
            edits.append(
                InsertSubtree(path + (start + paired + offset + 1,), nc[start + paired + offset])
            )
    return EditScript(tuple(edits))


def tree_to_wire(node: TreeNode) -> list:
    """Encode a Σ-tree as a flat preorder list ``[[label, children, text], ...]``.

    Flat on purpose: nested JSON objects would hit the (recursive) encoder's
    depth limit on the exponentially deep outputs the paper's transducers can
    produce, while a preorder list with explicit child counts round-trips any
    depth iteratively.  ``text`` is ``None`` for non-PCDATA nodes.
    """
    out: list = []
    stack = [node]
    while stack:
        current = stack.pop()
        out.append([current.label, len(current.children), current.text])
        stack.extend(reversed(current.children))
    return out


def tree_from_wire(payload) -> TreeNode:
    """Decode the flat preorder form of :func:`tree_to_wire`."""
    from repro.relational.wire import WireError

    if not isinstance(payload, list) or not payload:
        raise WireError(f"a wire tree must be a non-empty list, not {payload!r}")
    # Each pending frame is [label, text, wanted_children, collected_children];
    # a node is constructed exactly when its child count is satisfied.
    pending: list[list] = []
    for entry in payload:
        if (
            not isinstance(entry, list)
            or len(entry) != 3
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], int)
            or entry[1] < 0
            or not (entry[2] is None or isinstance(entry[2], str))
        ):
            raise WireError(f"malformed wire tree entry {entry!r}")
        label, wanted, text = entry
        pending.append([label, text, wanted, []])
        while pending and pending[-1][2] == len(pending[-1][3]):
            label, text, _, children = pending.pop()
            node = TreeNode(label, tuple(children), text)
            if not pending:
                if entry is not payload[-1]:
                    raise WireError("wire tree has trailing entries after the root closed")
                return node
            pending[-1][3].append(node)
    raise WireError("truncated wire tree: child counts exceed the entries given")


def _apply_edit(root: TreeNode, edit: Edit) -> TreeNode:
    path = edit.path
    if not path:
        if isinstance(edit, ReplaceSubtree):
            return edit.node
        raise ValueError(f"cannot {type(edit).__name__} at the root path ()")
    spine: list[TreeNode] = [root]
    node = root
    for index in path[:-1]:
        if not 1 <= index <= len(node.children):
            raise ValueError(f"edit path {path} does not address a node of the tree")
        node = node.children[index - 1]
        spine.append(node)
    parent = spine[-1]
    slot = path[-1]
    children = list(parent.children)
    if isinstance(edit, InsertSubtree):
        if not 1 <= slot <= len(children) + 1:
            raise ValueError(f"insert path {path} is out of range")
        children.insert(slot - 1, edit.node)
    elif isinstance(edit, DeleteSubtree):
        if not 1 <= slot <= len(children):
            raise ValueError(f"delete path {path} does not address a child")
        del children[slot - 1]
    else:
        if not 1 <= slot <= len(children):
            raise ValueError(f"replace path {path} does not address a child")
        children[slot - 1] = edit.node
    rebuilt = parent.with_children(children)
    for ancestor, index in zip(reversed(spine[:-1]), reversed(path[:-1])):
        siblings = list(ancestor.children)
        siblings[index - 1] = rebuilt
        rebuilt = ancestor.with_children(siblings)
    return rebuilt
