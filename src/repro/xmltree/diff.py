"""Edit scripts between Σ-trees: ship diffs instead of full documents.

Incremental republication (:meth:`~repro.engine.plan.PublishingPlan.republish`)
rebuilds only the regions of the output tree whose expansions changed and
reuses the previous :class:`~repro.xmltree.tree.TreeNode` objects everywhere
else.  That structural sharing is what makes diffing cheap: the comparison in
:func:`diff_trees` short-circuits on object identity, so its cost is
proportional to the *changed* region, not the document size.

An :class:`EditScript` is an ordered sequence of subtree edits addressed by
tree-domain paths (the root is ``()``; the ``i``-th child of ``v`` is
``v + (i,)`` with ``i`` starting at 1, as in the paper's tree domains):

* :class:`ReplaceSubtree` -- the node at the path is replaced wholesale;
* :class:`DeleteSubtree` -- the node at the path is removed (younger siblings
  shift left);
* :class:`InsertSubtree` -- a new subtree is inserted so that it *becomes*
  the child at the path (existing children at and after it shift right).

Edits apply sequentially: each path addresses the tree produced by the
preceding edits, and ``diff_trees(old, new).apply(old) == new`` always holds.
Every function here is iterative over tree depth only through the edit paths,
so exponentially deep outputs (Proposition 1) stay within recursion limits as
long as the *changed* spine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from xml.sax.saxutils import escape

from repro.xmltree.events import tree_to_events
from repro.xmltree.serialize import compact_xml_from_events
from repro.xmltree.tree import TreeNode

#: A tree-domain address: ``()`` is the root, indices are 1-based.
Path = tuple[int, ...]


@dataclass(frozen=True)
class InsertSubtree:
    """Insert ``node`` so it becomes the child at ``path``."""

    path: Path
    node: TreeNode


@dataclass(frozen=True)
class DeleteSubtree:
    """Remove the subtree rooted at ``path``."""

    path: Path


@dataclass(frozen=True)
class ReplaceSubtree:
    """Replace the subtree rooted at ``path`` by ``node``."""

    path: Path
    node: TreeNode


Edit = Union[InsertSubtree, DeleteSubtree, ReplaceSubtree]


@dataclass(frozen=True)
class EditScript:
    """An ordered sequence of subtree edits between two Σ-trees."""

    edits: tuple[Edit, ...] = ()

    def is_empty(self) -> bool:
        """True when the script changes nothing."""
        return not self.edits

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self) -> Iterator[Edit]:
        return iter(self.edits)

    def __bool__(self) -> bool:
        return bool(self.edits)

    def apply(self, tree: TreeNode) -> TreeNode:
        """Apply the edits in order and return the resulting tree."""
        for edit in self.edits:
            tree = _apply_edit(tree, edit)
        return tree

    def describe(self) -> str:
        """One line per edit, with inserted / replacement subtrees as compact XML."""
        lines = []
        for edit in self.edits:
            location = "/" + "/".join(str(index) for index in edit.path)
            if isinstance(edit, DeleteSubtree):
                lines.append(f"delete {location}")
            elif isinstance(edit, InsertSubtree):
                lines.append(f"insert {location} {_compact(edit.node)}")
            else:
                lines.append(f"replace {location} {_compact(edit.node)}")
        return "\n".join(lines)


def _compact(node: TreeNode) -> str:
    if node.is_text():
        return escape(node.text or "")
    return compact_xml_from_events(tree_to_events(node))


def trees_equal(a: TreeNode, b: TreeNode) -> bool:
    """Structural equality, iterative and identity-accelerated.

    Equivalent to ``a == b`` but safe on trees deeper than the recursion
    limit (the dataclass-generated ``TreeNode.__eq__`` recurses per level);
    subtrees shared by object identity -- the normal case after an
    incremental republish -- are skipped without walking them.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if (
            x.label != y.label
            or x.text != y.text
            or len(x.children) != len(y.children)
        ):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def _same(a: TreeNode, b: TreeNode) -> bool:
    # Identity first: republished trees share unchanged subtree objects, so
    # the (iterative) equality walk rarely descends far.
    return a is b or trees_equal(a, b)


def diff_trees(old: TreeNode, new: TreeNode) -> EditScript:
    """An edit script turning ``old`` into ``new``.

    Children are aligned positionally (longest equal prefix and suffix, the
    middle paired in order), which matches how publishing transducers change
    their output: sibling order is derived from the data order, so a
    single-tuple source change inserts, deletes or rewrites a run of
    adjacent children.  The script is not guaranteed minimal for arbitrary
    reorderings, but ``apply`` always reproduces ``new`` exactly.
    """
    edits: list[Edit] = []
    stack: list[tuple[Path, TreeNode, TreeNode]] = [((), old, new)]
    while stack:
        path, o, n = stack.pop()
        if o is n:
            continue
        if o.label != n.label or o.text != n.text:
            edits.append(ReplaceSubtree(path, n))
            continue
        oc, nc = o.children, n.children
        len_old, len_new = len(oc), len(nc)
        if len_old == len_new:
            # Equal child counts: pair positionally and recurse.  The
            # prefix/suffix scan below would pair them identically anyway,
            # but discovers each deep difference through a full equality
            # walk *per ancestor level* -- cubic on a changed spine (every
            # level re-walks the subtree to find the same bottom mismatch).
            # Recursion finds it once, and unchanged subtrees short-circuit
            # by object identity (the normal case after a republish).
            for offset in range(len_old):
                stack.append((path + (offset + 1,), oc[offset], nc[offset]))
            continue
        limit = min(len_old, len_new)
        start = 0
        while start < limit and _same(oc[start], nc[start]):
            start += 1
        tail = 0
        while tail < limit - start and _same(oc[len_old - 1 - tail], nc[len_new - 1 - tail]):
            tail += 1
        mid_old = len_old - start - tail
        mid_new = len_new - start - tail
        paired = min(mid_old, mid_new)
        for offset in range(paired):
            stack.append((path + (start + offset + 1,), oc[start + offset], nc[start + offset]))
        # Unpaired old children: repeated deletion at the same (shifting) slot.
        for _ in range(mid_old - paired):
            edits.append(DeleteSubtree(path + (start + paired + 1,)))
        # Unpaired new children: inserted left to right after the pairs.
        for offset in range(mid_new - paired):
            edits.append(
                InsertSubtree(path + (start + paired + offset + 1,), nc[start + paired + offset])
            )
    return EditScript(tuple(edits))


def _apply_edit(root: TreeNode, edit: Edit) -> TreeNode:
    path = edit.path
    if not path:
        if isinstance(edit, ReplaceSubtree):
            return edit.node
        raise ValueError(f"cannot {type(edit).__name__} at the root path ()")
    spine: list[TreeNode] = [root]
    node = root
    for index in path[:-1]:
        if not 1 <= index <= len(node.children):
            raise ValueError(f"edit path {path} does not address a node of the tree")
        node = node.children[index - 1]
        spine.append(node)
    parent = spine[-1]
    slot = path[-1]
    children = list(parent.children)
    if isinstance(edit, InsertSubtree):
        if not 1 <= slot <= len(children) + 1:
            raise ValueError(f"insert path {path} is out of range")
        children.insert(slot - 1, edit.node)
    elif isinstance(edit, DeleteSubtree):
        if not 1 <= slot <= len(children):
            raise ValueError(f"delete path {path} does not address a child")
        del children[slot - 1]
    else:
        if not 1 <= slot <= len(children):
            raise ValueError(f"replace path {path} does not address a child")
        children[slot - 1] = edit.node
    rebuilt = parent.with_children(children)
    for ancestor, index in zip(reversed(spine[:-1]), reversed(path[:-1])):
        siblings = list(ancestor.children)
        siblings[index - 1] = rebuilt
        rebuilt = ancestor.with_children(siblings)
    return rebuilt
