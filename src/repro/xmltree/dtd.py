"""DTDs and extended (specialised) DTDs.

Section 6.3 of the paper relates publishing transducers to regular unranked
tree languages: a DTD maps each tag to a regular expression over tags, and an
*extended DTD* (also called specialised DTD) adds a relabelling ``mu`` from an
auxiliary alphabet back to the visible one.  Extended DTDs capture exactly the
regular unranked tree languages, hence also MSO-definable tree languages.

This module implements

* a small regular-expression language over tags (:class:`Regex` and the
  constructors :func:`sym`, :func:`concat`, :func:`alt`, :func:`star`,
  :func:`opt`, :func:`plus`, :func:`empty`);
* Glushkov-style compilation to an NFA and membership of label sequences;
* :class:`DTD` conformance checking of Σ-trees;
* :class:`ExtendedDTD` conformance checking via bottom-up computation of the
  possible auxiliary labels of every node (the standard unranked
  tree-automaton argument);
* DTD normalisation (:meth:`DTD.normalized`) into rules of the forms used in
  the proof of Theorem 5 (concatenation, disjunction, Kleene star), which the
  DTD-to-transducer construction consumes.

ATG (Section 4) is "DTD-directed" publishing; its front-end in
:mod:`repro.languages.atg` validates its grammar against these DTDs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.xmltree.tree import TEXT_TAG, TreeNode


# ---------------------------------------------------------------------------
# Regular expressions over tags.
# ---------------------------------------------------------------------------


class Regex:
    """Base class of content-model regular expressions."""

    def symbols(self) -> frozenset[str]:
        """The tags mentioned by the expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """True when the expression accepts the empty word."""
        raise NotImplementedError

    def to_nfa(self) -> "_NFA":
        """Compile to a non-deterministic finite automaton."""
        builder = _NFABuilder()
        start = builder.new_state()
        accept = builder.new_state()
        self._build(builder, start, accept)
        return _NFA(builder.transitions, builder.epsilon, start, accept)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        raise NotImplementedError

    def matches(self, word: Sequence[str]) -> bool:
        """Membership of a tag sequence in the language of the expression."""
        return self.to_nfa().accepts(word)


@dataclass(frozen=True)
class Epsilon(Regex):
    """The expression accepting only the empty word."""

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        builder.add_epsilon(start, accept)

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single tag."""

    tag: str

    def symbols(self) -> frozenset[str]:
        return frozenset({self.tag})

    def nullable(self) -> bool:
        return False

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        builder.add_transition(start, self.tag, accept)

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of sub-expressions."""

    parts: tuple[Regex, ...]

    def symbols(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        current = start
        for index, part in enumerate(self.parts):
            target = accept if index == len(self.parts) - 1 else builder.new_state()
            part._build(builder, current, target)
            current = target
        if not self.parts:
            builder.add_epsilon(start, accept)

    def __str__(self) -> str:
        return ", ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class Alt(Regex):
    """Disjunction of sub-expressions."""

    parts: tuple[Regex, ...]

    def symbols(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        for part in self.parts:
            part._build(builder, start, accept)
        if not self.parts:
            pass  # empty alternation accepts nothing

    def __str__(self) -> str:
        return "(" + " + ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star."""

    operand: Regex

    def symbols(self) -> frozenset[str]:
        return self.operand.symbols()

    def nullable(self) -> bool:
        return True

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        hub = builder.new_state()
        builder.add_epsilon(start, hub)
        builder.add_epsilon(hub, accept)
        self.operand._build(builder, hub, hub)

    def __str__(self) -> str:
        return f"({self.operand})*"


def sym(tag: str) -> Regex:
    """A single-tag expression."""
    return Symbol(tag)


def concat(*parts: Regex | str) -> Regex:
    """Concatenation; strings are promoted to :func:`sym`."""
    return Concat(tuple(sym(p) if isinstance(p, str) else p for p in parts))


def alt(*parts: Regex | str) -> Regex:
    """Disjunction; strings are promoted to :func:`sym`."""
    return Alt(tuple(sym(p) if isinstance(p, str) else p for p in parts))


def star(operand: Regex | str) -> Regex:
    """Kleene star; strings are promoted to :func:`sym`."""
    return Star(sym(operand) if isinstance(operand, str) else operand)


def opt(operand: Regex | str) -> Regex:
    """Optional occurrence (``e?``)."""
    return alt(Epsilon(), sym(operand) if isinstance(operand, str) else operand)


def plus(operand: Regex | str) -> Regex:
    """One or more occurrences (``e+``)."""
    inner = sym(operand) if isinstance(operand, str) else operand
    return concat(inner, star(inner))


def empty() -> Regex:
    """The empty-word expression (for leaf content models)."""
    return Epsilon()


# ---------------------------------------------------------------------------
# A small NFA with epsilon transitions.
# ---------------------------------------------------------------------------


class _NFABuilder:
    def __init__(self) -> None:
        self._counter = itertools.count()
        self.transitions: dict[tuple[int, str], set[int]] = {}
        self.epsilon: dict[int, set[int]] = {}

    def new_state(self) -> int:
        return next(self._counter)

    def add_transition(self, source: int, tag: str, target: int) -> None:
        self.transitions.setdefault((source, tag), set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, set()).add(target)


@dataclass
class _NFA:
    transitions: dict[tuple[int, str], set[int]]
    epsilon: dict[int, set[int]]
    start: int
    accept: int

    def _closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for target in self.epsilon.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def accepts(self, word: Sequence[str]) -> bool:
        current = self._closure({self.start})
        for tag in word:
            moved: set[int] = set()
            for state in current:
                moved |= self.transitions.get((state, tag), set())
            current = self._closure(moved)
            if not current:
                return False
        return self.accept in current

    def accepts_sets(self, word: Sequence[frozenset[str]]) -> bool:
        """Membership where each position may carry any tag of a candidate set."""
        current = self._closure({self.start})
        for candidates in word:
            moved: set[int] = set()
            for state in current:
                for tag in candidates:
                    moved |= self.transitions.get((state, tag), set())
            current = self._closure(moved)
            if not current:
                return False
        return self.accept in current


# ---------------------------------------------------------------------------
# DTDs.
# ---------------------------------------------------------------------------


class DTD:
    """A DTD: a root tag plus a content-model expression for every tag.

    Tags without an explicit rule default to the empty content model (leaf
    elements); the ``text`` tag is always a leaf.
    """

    def __init__(self, root: str, rules: Mapping[str, Regex]) -> None:
        self._root = root
        self._rules = dict(rules)

    @property
    def root(self) -> str:
        """The required root tag."""
        return self._root

    @property
    def rules(self) -> dict[str, Regex]:
        """The content-model rules."""
        return dict(self._rules)

    def alphabet(self) -> frozenset[str]:
        """All tags mentioned by the DTD."""
        tags = {self._root} | set(self._rules)
        for regex in self._rules.values():
            tags |= regex.symbols()
        return frozenset(tags)

    def content_model(self, tag: str) -> Regex:
        """The content model of ``tag`` (empty model when unspecified)."""
        return self._rules.get(tag, Epsilon())

    def conforms(self, node: TreeNode) -> bool:
        """Check whether a Σ-tree conforms to the DTD."""
        if node.label != self._root:
            return False
        return self._conforms_subtree(node)

    def _conforms_subtree(self, node: TreeNode) -> bool:
        if node.label == TEXT_TAG:
            return node.is_leaf()
        model = self.content_model(node.label)
        if not model.matches(node.child_labels()):
            return False
        return all(self._conforms_subtree(child) for child in node.children)

    def normalized(self) -> "DTD":
        """Return an equivalent *normalised* DTD.

        The proof of Theorem 5 assumes DTD rules of only three shapes --
        concatenation of tags, disjunction of tags, and ``b*`` -- obtained by
        introducing fresh auxiliary tags.  The auxiliary tags are prefixed
        with ``"_n"`` so callers (the DTD-to-transducer construction) can mark
        them as virtual.
        """
        counter = itertools.count()
        new_rules: dict[str, Regex] = {}

        def fresh() -> str:
            return f"_n{next(counter)}"

        def normalise(regex: Regex) -> str:
            """Return a tag whose rule is equivalent to ``regex``."""
            tag = fresh()
            new_rules[tag] = lower(regex)
            return tag

        def lower(regex: Regex) -> Regex:
            if isinstance(regex, (Epsilon, Symbol)):
                return regex
            if isinstance(regex, Concat):
                return Concat(tuple(Symbol(atomic(part)) for part in regex.parts))
            if isinstance(regex, Alt):
                return Alt(tuple(Symbol(atomic(part)) for part in regex.parts))
            if isinstance(regex, Star):
                return Star(Symbol(atomic(regex.operand)))
            raise TypeError(f"unknown regex node {regex!r}")

        def atomic(regex: Regex) -> str:
            if isinstance(regex, Symbol):
                return regex.tag
            return normalise(regex)

        for tag, regex in self._rules.items():
            new_rules[tag] = lower(regex)
        return DTD(self._root, new_rules)

    def auxiliary_tags(self) -> frozenset[str]:
        """Tags introduced by :meth:`normalized` (named ``_n<i>``)."""
        return frozenset(tag for tag in self.alphabet() if tag.startswith("_n"))


class ExtendedDTD:
    """An extended (specialised) DTD ``(Sigma', d, mu)``.

    ``d`` is a DTD over the auxiliary alphabet ``Sigma'`` and ``mu`` maps
    auxiliary tags to visible tags.  A visible Σ-tree ``t`` conforms when some
    Σ'-tree ``t'`` conforms to ``d`` with ``mu(t') = t``.  Extended DTDs
    capture the regular unranked tree languages (Papakonstantinou & Vianu).
    """

    def __init__(self, dtd: DTD, relabeling: Mapping[str, str]) -> None:
        self._dtd = dtd
        self._mu = dict(relabeling)
        for tag in dtd.alphabet():
            self._mu.setdefault(tag, tag)

    @property
    def dtd(self) -> DTD:
        """The underlying DTD over the auxiliary alphabet."""
        return self._dtd

    @property
    def relabeling(self) -> dict[str, str]:
        """The map ``mu`` from auxiliary to visible tags."""
        return dict(self._mu)

    def visible_alphabet(self) -> frozenset[str]:
        """The visible alphabet (image of ``mu``)."""
        return frozenset(self._mu.values())

    def conforms(self, node: TreeNode) -> bool:
        """Check conformance of a visible Σ-tree (bottom-up tree-automaton run)."""
        candidate_roots = self._possible_labels(node)
        return any(
            label == self._dtd.root and self._mu.get(label, label) == node.label
            for label in candidate_roots
        )

    def _possible_labels(self, node: TreeNode) -> frozenset[str]:
        """Auxiliary labels that could decorate ``node`` in a witnessing tree."""
        child_candidates = [self._possible_labels(child) for child in node.children]
        result: set[str] = set()
        for aux in self._dtd.alphabet():
            if self._mu.get(aux, aux) != node.label:
                continue
            model = self._dtd.content_model(aux)
            nfa = model.to_nfa()
            if nfa.accepts_sets(child_candidates):
                result.add(aux)
        return frozenset(result)
