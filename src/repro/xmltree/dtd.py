"""DTDs and extended (specialised) DTDs.

Section 6.3 of the paper relates publishing transducers to regular unranked
tree languages: a DTD maps each tag to a regular expression over tags, and an
*extended DTD* (also called specialised DTD) adds a relabelling ``mu`` from an
auxiliary alphabet back to the visible one.  Extended DTDs capture exactly the
regular unranked tree languages, hence also MSO-definable tree languages.

This module implements

* a small regular-expression language over tags (:class:`Regex` and the
  constructors :func:`sym`, :func:`concat`, :func:`alt`, :func:`star`,
  :func:`opt`, :func:`plus`, :func:`empty`);
* Glushkov-style compilation to an NFA and membership of label sequences,
  plus :meth:`Regex.to_dfa` -- subset construction and Moore minimisation
  with an LRU cache, so hot membership paths (:meth:`Regex.matches`, the
  extended-DTD bottom-up run, the typechecker's inclusion tests) never
  re-simulate an NFA;
* a pure-data wire form (:func:`regex_to_wire` / :func:`dtd_to_wire` and
  their inverses) so the network tier can ship target schemas in
  registration payloads without anything executable crossing the wire;
* :class:`DTD` conformance checking of Σ-trees;
* :class:`ExtendedDTD` conformance checking via bottom-up computation of the
  possible auxiliary labels of every node (the standard unranked
  tree-automaton argument);
* DTD normalisation (:meth:`DTD.normalized`) into rules of the forms used in
  the proof of Theorem 5 (concatenation, disjunction, Kleene star), which the
  DTD-to-transducer construction consumes.

ATG (Section 4) is "DTD-directed" publishing; its front-end in
:mod:`repro.languages.atg` validates its grammar against these DTDs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterable, Mapping, Sequence

from repro.xmltree.tree import TEXT_TAG, TreeNode


# ---------------------------------------------------------------------------
# Regular expressions over tags.
# ---------------------------------------------------------------------------


class Regex:
    """Base class of content-model regular expressions."""

    def symbols(self) -> frozenset[str]:
        """The tags mentioned by the expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """True when the expression accepts the empty word."""
        raise NotImplementedError

    def to_nfa(self) -> "_NFA":
        """Compile to a non-deterministic finite automaton."""
        builder = _NFABuilder()
        start = builder.new_state()
        accept = builder.new_state()
        self._build(builder, start, accept)
        return _NFA(builder.transitions, builder.epsilon, start, accept)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        raise NotImplementedError

    def to_dfa(self) -> "DFA":
        """The determinised and minimised automaton of the expression.

        Compiled once per (structurally equal) expression and LRU-cached, so
        repeated membership tests -- DTD conformance over large documents,
        the extended-DTD bottom-up run, the typechecker's inclusion checks
        and the streaming validator -- walk a dict-backed DFA instead of
        re-simulating the Glushkov NFA.
        """
        return _compiled_dfa(self)

    def matches(self, word: Sequence[str]) -> bool:
        """Membership of a tag sequence in the language of the expression."""
        return self.to_dfa().accepts(word)


@dataclass(frozen=True)
class Epsilon(Regex):
    """The expression accepting only the empty word."""

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        builder.add_epsilon(start, accept)

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single tag."""

    tag: str

    def symbols(self) -> frozenset[str]:
        return frozenset({self.tag})

    def nullable(self) -> bool:
        return False

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        builder.add_transition(start, self.tag, accept)

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of sub-expressions."""

    parts: tuple[Regex, ...]

    def symbols(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        current = start
        for index, part in enumerate(self.parts):
            target = accept if index == len(self.parts) - 1 else builder.new_state()
            part._build(builder, current, target)
            current = target
        if not self.parts:
            builder.add_epsilon(start, accept)

    def __str__(self) -> str:
        return ", ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class Alt(Regex):
    """Disjunction of sub-expressions."""

    parts: tuple[Regex, ...]

    def symbols(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        for part in self.parts:
            part._build(builder, start, accept)
        if not self.parts:
            pass  # empty alternation accepts nothing

    def __str__(self) -> str:
        return "(" + " + ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star."""

    operand: Regex

    def symbols(self) -> frozenset[str]:
        return self.operand.symbols()

    def nullable(self) -> bool:
        return True

    def _build(self, builder: "_NFABuilder", start: int, accept: int) -> None:
        hub = builder.new_state()
        builder.add_epsilon(start, hub)
        builder.add_epsilon(hub, accept)
        self.operand._build(builder, hub, hub)

    def __str__(self) -> str:
        return f"({self.operand})*"


def sym(tag: str) -> Regex:
    """A single-tag expression."""
    return Symbol(tag)


def concat(*parts: Regex | str) -> Regex:
    """Concatenation; strings are promoted to :func:`sym`."""
    return Concat(tuple(sym(p) if isinstance(p, str) else p for p in parts))


def alt(*parts: Regex | str) -> Regex:
    """Disjunction; strings are promoted to :func:`sym`."""
    return Alt(tuple(sym(p) if isinstance(p, str) else p for p in parts))


def star(operand: Regex | str) -> Regex:
    """Kleene star; strings are promoted to :func:`sym`."""
    return Star(sym(operand) if isinstance(operand, str) else operand)


def opt(operand: Regex | str) -> Regex:
    """Optional occurrence (``e?``)."""
    return alt(Epsilon(), sym(operand) if isinstance(operand, str) else operand)


def plus(operand: Regex | str) -> Regex:
    """One or more occurrences (``e+``)."""
    inner = sym(operand) if isinstance(operand, str) else operand
    return concat(inner, star(inner))


def empty() -> Regex:
    """The empty-word expression (for leaf content models)."""
    return Epsilon()


# ---------------------------------------------------------------------------
# A small NFA with epsilon transitions.
# ---------------------------------------------------------------------------


class _NFABuilder:
    def __init__(self) -> None:
        self._counter = itertools.count()
        self.transitions: dict[tuple[int, str], set[int]] = {}
        self.epsilon: dict[int, set[int]] = {}

    def new_state(self) -> int:
        return next(self._counter)

    def add_transition(self, source: int, tag: str, target: int) -> None:
        self.transitions.setdefault((source, tag), set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, set()).add(target)


@dataclass
class _NFA:
    transitions: dict[tuple[int, str], set[int]]
    epsilon: dict[int, set[int]]
    start: int
    accept: int

    def _closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for target in self.epsilon.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def accepts(self, word: Sequence[str]) -> bool:
        current = self._closure({self.start})
        for tag in word:
            moved: set[int] = set()
            for state in current:
                moved |= self.transitions.get((state, tag), set())
            current = self._closure(moved)
            if not current:
                return False
        return self.accept in current

    def accepts_sets(self, word: Sequence[frozenset[str]]) -> bool:
        """Membership where each position may carry any tag of a candidate set."""
        current = self._closure({self.start})
        for candidates in word:
            moved: set[int] = set()
            for state in current:
                for tag in candidates:
                    moved |= self.transitions.get((state, tag), set())
            current = self._closure(moved)
            if not current:
                return False
        return self.accept in current


# ---------------------------------------------------------------------------
# Deterministic automata: subset construction, minimisation, cached compile.
# ---------------------------------------------------------------------------


class DFA:
    """A deterministic automaton over tags with a total-by-omission delta.

    ``transitions`` maps ``(state, tag)`` to the successor state; a missing
    entry is the (implicit) dead state, so :meth:`step` returns ``None`` and
    :meth:`accepts` rejects as soon as a word leaves the live part.  States
    are small integers with ``0`` the start state.
    """

    __slots__ = ("transitions", "start", "accepting", "alphabet", "states")

    def __init__(
        self,
        transitions: Mapping[tuple[int, str], int],
        start: int,
        accepting: frozenset[int],
        alphabet: frozenset[str],
        states: int,
    ) -> None:
        self.transitions = dict(transitions)
        self.start = start
        self.accepting = accepting
        self.alphabet = alphabet
        self.states = states

    def step(self, state: int, tag: str) -> int | None:
        """The successor of ``state`` on ``tag`` (``None`` = dead)."""
        return self.transitions.get((state, tag))

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership of a tag sequence."""
        current: int | None = self.start
        transitions = self.transitions
        for tag in word:
            current = transitions.get((current, tag))
            if current is None:
                return False
        return current in self.accepting

    def accepts_sets(self, word: Sequence[frozenset[str]]) -> bool:
        """Membership where each position may carry any tag of a candidate set.

        A subset walk over the deterministic delta (the set-labelled word
        makes the run non-deterministic again); used by the extended-DTD
        bottom-up conformance run.
        """
        current = {self.start}
        transitions = self.transitions
        for candidates in word:
            moved: set[int] = set()
            for state in current:
                for tag in candidates:
                    target = transitions.get((state, tag))
                    if target is not None:
                        moved.add(target)
            if not moved:
                return False
            current = moved
        return bool(current & self.accepting)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFA(states={self.states}, alphabet={sorted(self.alphabet)}, "
            f"accepting={sorted(self.accepting)})"
        )


def _determinize(nfa: _NFA, alphabet: frozenset[str]) -> DFA:
    """Subset construction over the live (reachable, non-empty) subsets."""
    start_set = nfa._closure({nfa.start})
    numbering: dict[frozenset[int], int] = {start_set: 0}
    order = [start_set]
    transitions: dict[tuple[int, str], int] = {}
    index = 0
    while index < len(order):
        subset = order[index]
        source = numbering[subset]
        index += 1
        for tag in alphabet:
            moved: set[int] = set()
            for state in subset:
                moved |= nfa.transitions.get((state, tag), set())
            if not moved:
                continue
            closed = nfa._closure(moved)
            target = numbering.get(closed)
            if target is None:
                target = numbering[closed] = len(order)
                order.append(closed)
            transitions[source, tag] = target
    accepting = frozenset(
        numbering[subset] for subset in order if nfa.accept in subset
    )
    return DFA(transitions, 0, accepting, alphabet, len(order))


def _minimize(dfa: DFA) -> DFA:
    """Moore partition refinement (the dead state stays implicit)."""
    if dfa.states <= 1:
        return dfa
    # Block ids: 0 = non-accepting, 1 = accepting (drop a class when empty).
    block: dict[int, int] = {
        state: (1 if state in dfa.accepting else 0) for state in range(dfa.states)
    }
    symbols = sorted(dfa.alphabet)
    while True:
        signatures: dict[tuple, int] = {}
        next_block: dict[int, int] = {}
        for state in range(dfa.states):
            signature = (
                block[state],
                tuple(
                    block.get(dfa.transitions.get((state, tag), -1), -1)
                    for tag in symbols
                ),
            )
            assigned = signatures.get(signature)
            if assigned is None:
                assigned = signatures[signature] = len(signatures)
            next_block[state] = assigned
        if next_block == block:
            break
        block = next_block
    # Renumber so the start state's block is 0 (stable, reachable-first).
    renumber: dict[int, int] = {block[dfa.start]: 0}
    for state in range(dfa.states):
        renumber.setdefault(block[state], len(renumber))
    transitions: dict[tuple[int, str], int] = {}
    for (state, tag), target in dfa.transitions.items():
        transitions[renumber[block[state]], tag] = renumber[block[target]]
    accepting = frozenset(renumber[block[state]] for state in dfa.accepting)
    return DFA(transitions, 0, accepting, dfa.alphabet, len(renumber))


@lru_cache(maxsize=1024)
def _compiled_dfa(regex: Regex) -> DFA:
    """Compile-and-minimise, cached by structural equality of the expression."""
    return _minimize(_determinize(regex.to_nfa(), regex.symbols()))


# ---------------------------------------------------------------------------
# Pure-data wire form (catalog-safe: tags and operators only).
# ---------------------------------------------------------------------------


def regex_to_wire(regex: Regex) -> Any:
    """Encode a content-model expression as plain JSON-friendly data."""
    if isinstance(regex, Epsilon):
        return {"op": "eps"}
    if isinstance(regex, Symbol):
        return {"op": "sym", "tag": regex.tag}
    if isinstance(regex, Concat):
        return {"op": "cat", "parts": [regex_to_wire(part) for part in regex.parts]}
    if isinstance(regex, Alt):
        return {"op": "alt", "parts": [regex_to_wire(part) for part in regex.parts]}
    if isinstance(regex, Star):
        return {"op": "star", "part": regex_to_wire(regex.operand)}
    raise ValueError(f"cannot encode regex node {type(regex).__name__}")


def regex_from_wire(payload: Any) -> Regex:
    """Decode :func:`regex_to_wire` output; raises ``ValueError`` when malformed."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"regex payload must be an object, not {type(payload).__name__}")
    op = payload.get("op")
    if op == "eps":
        return Epsilon()
    if op == "sym":
        tag = payload.get("tag")
        if not isinstance(tag, str) or not tag:
            raise ValueError("'sym' regex needs a non-empty string 'tag'")
        return Symbol(tag)
    if op in ("cat", "alt"):
        parts = payload.get("parts")
        if not isinstance(parts, Sequence) or isinstance(parts, (str, bytes)):
            raise ValueError(f"{op!r} regex needs a 'parts' list")
        decoded = tuple(regex_from_wire(part) for part in parts)
        return Concat(decoded) if op == "cat" else Alt(decoded)
    if op == "star":
        if "part" not in payload:
            raise ValueError("'star' regex needs a 'part'")
        return Star(regex_from_wire(payload["part"]))
    raise ValueError(f"unknown regex op {op!r}")


def dtd_to_wire(dtd: "DTD") -> dict[str, Any]:
    """Encode a DTD as pure data (root tag plus per-tag content models)."""
    return {
        "root": dtd.root,
        "rules": {tag: regex_to_wire(regex) for tag, regex in dtd.rules.items()},
    }


def dtd_from_wire(payload: Any) -> "DTD":
    """Decode :func:`dtd_to_wire` output; raises ``ValueError`` when malformed."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"DTD payload must be an object, not {type(payload).__name__}")
    root = payload.get("root")
    if not isinstance(root, str) or not root:
        raise ValueError("DTD payload needs a non-empty string 'root'")
    rules_payload = payload.get("rules", {})
    if not isinstance(rules_payload, Mapping):
        raise ValueError("DTD 'rules' must be an object mapping tags to regexes")
    rules = {}
    for tag, encoded in rules_payload.items():
        if not isinstance(tag, str) or not tag:
            raise ValueError("DTD rule tags must be non-empty strings")
        rules[tag] = regex_from_wire(encoded)
    return DTD(root, rules)


# ---------------------------------------------------------------------------
# DTDs.
# ---------------------------------------------------------------------------


class DTD:
    """A DTD: a root tag plus a content-model expression for every tag.

    Tags without an explicit rule default to the empty content model (leaf
    elements); the ``text`` tag is always a leaf.
    """

    def __init__(self, root: str, rules: Mapping[str, Regex]) -> None:
        self._root = root
        self._rules = dict(rules)

    @property
    def root(self) -> str:
        """The required root tag."""
        return self._root

    @property
    def rules(self) -> dict[str, Regex]:
        """The content-model rules."""
        return dict(self._rules)

    def alphabet(self) -> frozenset[str]:
        """All tags mentioned by the DTD."""
        tags = {self._root} | set(self._rules)
        for regex in self._rules.values():
            tags |= regex.symbols()
        return frozenset(tags)

    def content_model(self, tag: str) -> Regex:
        """The content model of ``tag`` (empty model when unspecified)."""
        return self._rules.get(tag, Epsilon())

    def conforms(self, node: TreeNode) -> bool:
        """Check whether a Σ-tree conforms to the DTD."""
        if node.label != self._root:
            return False
        return self._conforms_subtree(node)

    def _conforms_subtree(self, node: TreeNode) -> bool:
        if node.label == TEXT_TAG:
            return node.is_leaf()
        model = self.content_model(node.label)
        if not model.matches(node.child_labels()):
            return False
        return all(self._conforms_subtree(child) for child in node.children)

    def normalized(self) -> "DTD":
        """Return an equivalent *normalised* DTD.

        The proof of Theorem 5 assumes DTD rules of only three shapes --
        concatenation of tags, disjunction of tags, and ``b*`` -- obtained by
        introducing fresh auxiliary tags.  The auxiliary tags are prefixed
        with ``"_n"`` so callers (the DTD-to-transducer construction) can mark
        them as virtual.
        """
        counter = itertools.count()
        new_rules: dict[str, Regex] = {}

        def fresh() -> str:
            return f"_n{next(counter)}"

        def normalise(regex: Regex) -> str:
            """Return a tag whose rule is equivalent to ``regex``."""
            tag = fresh()
            new_rules[tag] = lower(regex)
            return tag

        def lower(regex: Regex) -> Regex:
            if isinstance(regex, (Epsilon, Symbol)):
                return regex
            if isinstance(regex, Concat):
                return Concat(tuple(Symbol(atomic(part)) for part in regex.parts))
            if isinstance(regex, Alt):
                return Alt(tuple(Symbol(atomic(part)) for part in regex.parts))
            if isinstance(regex, Star):
                return Star(Symbol(atomic(regex.operand)))
            raise TypeError(f"unknown regex node {regex!r}")

        def atomic(regex: Regex) -> str:
            if isinstance(regex, Symbol):
                return regex.tag
            return normalise(regex)

        for tag, regex in self._rules.items():
            new_rules[tag] = lower(regex)
        return DTD(self._root, new_rules)

    def auxiliary_tags(self) -> frozenset[str]:
        """Tags introduced by :meth:`normalized` (named ``_n<i>``)."""
        return frozenset(tag for tag in self.alphabet() if tag.startswith("_n"))


class ExtendedDTD:
    """An extended (specialised) DTD ``(Sigma', d, mu)``.

    ``d`` is a DTD over the auxiliary alphabet ``Sigma'`` and ``mu`` maps
    auxiliary tags to visible tags.  A visible Σ-tree ``t`` conforms when some
    Σ'-tree ``t'`` conforms to ``d`` with ``mu(t') = t``.  Extended DTDs
    capture the regular unranked tree languages (Papakonstantinou & Vianu).
    """

    def __init__(self, dtd: DTD, relabeling: Mapping[str, str]) -> None:
        self._dtd = dtd
        self._mu = dict(relabeling)
        for tag in dtd.alphabet():
            self._mu.setdefault(tag, tag)

    @property
    def dtd(self) -> DTD:
        """The underlying DTD over the auxiliary alphabet."""
        return self._dtd

    @property
    def relabeling(self) -> dict[str, str]:
        """The map ``mu`` from auxiliary to visible tags."""
        return dict(self._mu)

    def visible_alphabet(self) -> frozenset[str]:
        """The visible alphabet (image of ``mu``)."""
        return frozenset(self._mu.values())

    def conforms(self, node: TreeNode) -> bool:
        """Check conformance of a visible Σ-tree (bottom-up tree-automaton run)."""
        candidate_roots = self._possible_labels(node)
        return any(
            label == self._dtd.root and self._mu.get(label, label) == node.label
            for label in candidate_roots
        )

    def _possible_labels(self, node: TreeNode) -> frozenset[str]:
        """Auxiliary labels that could decorate ``node`` in a witnessing tree."""
        child_candidates = [self._possible_labels(child) for child in node.children]
        result: set[str] = set()
        for aux in self._dtd.alphabet():
            if self._mu.get(aux, aux) != node.label:
                continue
            model = self._dtd.content_model(aux)
            if model.to_dfa().accepts_sets(child_candidates):
                result.add(aux)
        return frozenset(result)
