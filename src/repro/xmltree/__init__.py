"""XML substrate: unranked node-labelled trees, serialisation and DTDs.

Section 2 of the paper models an XML document as an unranked, ordered,
node-labelled tree over a finite tag alphabet with a distinguished ``root``
tag and a ``text`` tag for PCDATA leaves.  This package provides:

* :mod:`repro.xmltree.tree` -- Σ-trees with both a navigational (node-object)
  and a formal (tree-domain) view;
* :mod:`repro.xmltree.serialize` -- rendering to XML text;
* :mod:`repro.xmltree.dtd` -- DTDs, extended (specialised) DTDs and
  conformance checking, needed for Theorem 5 and the ATG front-end.
"""

from repro.xmltree.dtd import DTD, ExtendedDTD, Regex, alt, concat, empty, star, sym
from repro.xmltree.serialize import to_xml
from repro.xmltree.tree import TEXT_TAG, TreeNode, tree

__all__ = [
    "DTD",
    "ExtendedDTD",
    "Regex",
    "TEXT_TAG",
    "TreeNode",
    "alt",
    "concat",
    "empty",
    "star",
    "sym",
    "to_xml",
    "tree",
]
