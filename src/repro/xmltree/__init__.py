"""XML substrate: unranked node-labelled trees, serialisation and DTDs.

Section 2 of the paper models an XML document as an unranked, ordered,
node-labelled tree over a finite tag alphabet with a distinguished ``root``
tag and a ``text`` tag for PCDATA leaves.  This package provides:

* :mod:`repro.xmltree.tree` -- Σ-trees with both a navigational (node-object)
  and a formal (tree-domain) view;
* :mod:`repro.xmltree.events` -- SAX-style event streams over Σ-trees (the
  streaming output representation of the publishing engine);
* :mod:`repro.xmltree.serialize` -- rendering to XML text, materialised or
  incremental (event-driven);
* :mod:`repro.xmltree.diff` -- edit scripts between Σ-trees, so incremental
  republication can ship diffs instead of full documents;
* :mod:`repro.xmltree.dtd` -- DTDs, extended (specialised) DTDs and
  conformance checking, needed for Theorem 5 and the ATG front-end.
"""

from repro.xmltree.diff import (
    DeleteSubtree,
    EditScript,
    InsertSubtree,
    ReplaceSubtree,
    diff_trees,
    trees_equal,
)
from repro.xmltree.dtd import DTD, ExtendedDTD, Regex, alt, concat, empty, star, sym
from repro.xmltree.events import (
    CloseEvent,
    OpenEvent,
    TextEvent,
    XmlEvent,
    events_to_tree,
    tree_to_events,
)
from repro.xmltree.serialize import (
    IncrementalXmlSerializer,
    compact_xml_from_events,
    to_compact_xml,
    to_xml,
    xml_from_events,
)
from repro.xmltree.tree import TEXT_TAG, TreeNode, tree

__all__ = [
    "CloseEvent",
    "DTD",
    "DeleteSubtree",
    "EditScript",
    "ExtendedDTD",
    "IncrementalXmlSerializer",
    "InsertSubtree",
    "OpenEvent",
    "Regex",
    "ReplaceSubtree",
    "TEXT_TAG",
    "TextEvent",
    "TreeNode",
    "XmlEvent",
    "alt",
    "compact_xml_from_events",
    "concat",
    "diff_trees",
    "empty",
    "events_to_tree",
    "star",
    "sym",
    "to_compact_xml",
    "to_xml",
    "tree",
    "tree_to_events",
    "trees_equal",
    "xml_from_events",
]
