"""Unranked ordered Σ-trees.

A Σ-tree in the paper is a pair ``(dom(t), lab)`` where ``dom(t)`` is a
prefix-closed, left-sibling-closed subset of ``IN*`` and ``lab`` maps nodes to
tags.  Working directly with address strings is awkward, so the primary
representation here is an immutable node-object tree (:class:`TreeNode`);
:meth:`TreeNode.tree_domain` recovers the formal view when needed (tests use
it to check the tree-domain invariants).

Text leaves carry a PCDATA string in :attr:`TreeNode.text`; the paper reserves
the tag ``text`` for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: The reserved tag for PCDATA leaves.
TEXT_TAG = "text"

#: The default root tag used when none is specified.
DEFAULT_ROOT_TAG = "r"


@dataclass(frozen=True)
class TreeNode:
    """An immutable node of an unranked ordered tree.

    Parameters
    ----------
    label:
        The tag of the node.
    children:
        The ordered tuple of child nodes.
    text:
        PCDATA carried by the node; only meaningful for ``text``-labelled
        leaves but not enforced here (the transducer runtime enforces it).
    """

    label: str
    children: tuple["TreeNode", ...] = field(default=())
    text: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    # -- structure ----------------------------------------------------------

    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    def is_text(self) -> bool:
        """True when the node is a PCDATA leaf."""
        return self.label == TEXT_TAG

    def size(self) -> int:
        """Number of nodes in the subtree rooted at this node.

        Iterative: output trees can be exponentially deep (Proposition 1), far
        beyond Python's recursion limit.
        """
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a single node has depth 1)."""
        best = 1
        stack: list[tuple["TreeNode", int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def labels(self) -> frozenset[str]:
        """The set of tags occurring in the subtree."""
        found: set[str] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            found.add(node.label)
            stack.extend(node.children)
        return frozenset(found)

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree (iterative, recursion-safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_all(self, label: str) -> list["TreeNode"]:
        """All descendants (including self) with the given tag, in document order."""
        return [node for node in self.walk() if node.label == label]

    def child_labels(self) -> tuple[str, ...]:
        """The tags of the children, in order."""
        return tuple(child.label for child in self.children)

    # -- the formal tree-domain view ----------------------------------------

    def tree_domain(self) -> dict[tuple[int, ...], str]:
        """Return ``dom(t)`` as a mapping from addresses to labels.

        The root has address ``()``; the i-th child of a node with address
        ``v`` has address ``v + (i,)`` with ``i`` starting at 1, as in the
        paper's definition of a tree domain.
        """
        domain: dict[tuple[int, ...], str] = {}

        def visit(node: "TreeNode", address: tuple[int, ...]) -> None:
            domain[address] = node.label
            for index, child in enumerate(node.children, start=1):
                visit(child, address + (index,))

        visit(self, ())
        return domain

    # -- construction helpers ------------------------------------------------

    def with_children(self, children: Sequence["TreeNode"]) -> "TreeNode":
        """Return a copy of this node with different children."""
        return TreeNode(self.label, tuple(children), self.text)

    def replace_label(self, label: str) -> "TreeNode":
        """Return a copy of this node with a different label."""
        return TreeNode(label, self.children, self.text)

    def map_labels(self, mapping) -> "TreeNode":
        """Relabel the whole subtree through ``mapping`` (a dict or callable)."""
        rename = mapping.get if hasattr(mapping, "get") else mapping
        new_label = rename(self.label) if not hasattr(mapping, "get") else mapping.get(self.label, self.label)
        return TreeNode(new_label, tuple(child.map_labels(mapping) for child in self.children), self.text)

    def __str__(self) -> str:
        if self.is_text():
            return f"text[{self.text or ''}]"
        if not self.children:
            return self.label
        return f"{self.label}({', '.join(str(child) for child in self.children)})"


def tree(label: str, *children: TreeNode | str, text: str | None = None) -> TreeNode:
    """Terse tree constructor used throughout tests and examples.

    String children are shorthand for leaf nodes::

        tree("db", tree("course", "cno", "title"))
    """
    resolved = tuple(
        child if isinstance(child, TreeNode) else TreeNode(child) for child in children
    )
    return TreeNode(label, resolved, text)


def text_node(content: str) -> TreeNode:
    """A PCDATA leaf."""
    return TreeNode(TEXT_TAG, (), content)


def is_valid_tree_domain(domain: Iterable[tuple[int, ...]]) -> bool:
    """Check the two closure conditions of a tree domain.

    ``dom`` must be closed under parents (if ``v.i`` is present then so is
    ``v``) and under smaller sibling indices (if ``v.i`` with ``i > 1`` is
    present then so is ``v.(i-1)``).
    """
    addresses = set(domain)
    if not addresses:
        return False
    if () not in addresses:
        return False
    for address in addresses:
        if not address:
            continue
        parent, index = address[:-1], address[-1]
        if parent not in addresses:
            return False
        if index > 1 and parent + (index - 1,) not in addresses:
            return False
    return True
