"""SAX-style events over Σ-trees.

The streaming output mode of the publishing engine emits a Σ-tree as a flat
sequence of events instead of a materialised :class:`~repro.xmltree.tree.TreeNode`
structure: Proposition 1 shows output trees can be exponentially (tuple
registers) or doubly exponentially (relation registers) larger than the
source, so a production consumer should be able to serialise, validate or
forward the view without ever holding it in memory.

Three event kinds suffice for Σ-trees:

* :class:`OpenEvent` -- an element node starts (its children follow);
* :class:`TextEvent` -- a PCDATA leaf (the reserved ``text`` tag);
* :class:`CloseEvent` -- the matching element ends.

:func:`tree_to_events` and :func:`events_to_tree` convert between the two
representations; both are iterative and therefore safe on trees whose depth
exceeds Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.xmltree.tree import TEXT_TAG, TreeNode


@dataclass(frozen=True)
class OpenEvent:
    """An element node with the given tag starts."""

    tag: str


@dataclass(frozen=True)
class TextEvent:
    """A PCDATA leaf; ``text`` is ``None`` for an empty text node."""

    text: str | None = None


@dataclass(frozen=True)
class CloseEvent:
    """The innermost open element with the given tag ends."""

    tag: str


XmlEvent = Union[OpenEvent, TextEvent, CloseEvent]


def tree_to_events(node: TreeNode) -> Iterator[XmlEvent]:
    """Emit the event stream of a materialised Σ-tree (document order)."""
    stack: list[TreeNode | CloseEvent] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, CloseEvent):
            yield item
            continue
        if item.label == TEXT_TAG:
            yield TextEvent(item.text)
            continue
        yield OpenEvent(item.label)
        stack.append(CloseEvent(item.label))
        stack.extend(reversed(item.children))


def events_to_tree(events: Iterable[XmlEvent]) -> TreeNode:
    """Rebuild a Σ-tree from an event stream.

    Raises :class:`ValueError` on malformed streams (mismatched or missing
    close events, multiple roots, events outside the root element).
    """
    root: TreeNode | None = None
    # Each frame is (tag, accumulated children); frames close bottom-up.
    frames: list[tuple[str, list[TreeNode]]] = []

    def attach(node: TreeNode) -> None:
        nonlocal root
        if frames:
            frames[-1][1].append(node)
        elif root is None:
            root = node
        else:
            raise ValueError("event stream contains more than one root")

    for event in events:
        if isinstance(event, OpenEvent):
            if not frames and root is not None:
                raise ValueError("event stream contains more than one root")
            frames.append((event.tag, []))
        elif isinstance(event, TextEvent):
            attach(TreeNode(TEXT_TAG, (), event.text))
        elif isinstance(event, CloseEvent):
            if not frames:
                raise ValueError(f"close event for {event.tag!r} without a matching open")
            tag, children = frames.pop()
            if tag != event.tag:
                raise ValueError(f"close event for {event.tag!r} inside open element {tag!r}")
            attach(TreeNode(tag, tuple(children)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event: {event!r}")
    if frames:
        raise ValueError(f"unclosed element {frames[-1][0]!r} at end of event stream")
    if root is None:
        raise ValueError("empty event stream")
    return root
