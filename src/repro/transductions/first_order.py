"""First-order transductions of width ``k`` (Section 6.3).

A transduction is given by formulas ``phi_dom``, ``phi_root``, ``phi_e``,
``phi_<`` and one ``phi_a`` per output tag, all with ``k``-tuples of free
variables (``2k`` for the edge relation, ``3k`` for the sibling order).  On an
input instance the formulas define a node set, a rooted DAG over it, a sibling
order and a labelling; the transduction's output tree is the unfolding of that
DAG from its root.

Evaluation materialises the DAG (node by node) and unfolds it; the unfolding
may be exponentially larger than the DAG, which is exactly the size regime the
paper discusses, so a node budget protects against runaway inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.logic.fo import Formula, FormulaEvaluator
from repro.logic.terms import Variable
from repro.relational.domain import DataValue, tuple_order_key
from repro.relational.instance import Instance
from repro.xmltree.tree import TreeNode


class TransductionError(ValueError):
    """Raised when the transduction formulas do not define a valid tree/DAG."""


@dataclass(frozen=True)
class FirstOrderTransduction:
    """An FO (or IFP) transduction of width ``k``.

    Formula conventions: ``domain_formula`` and each ``label_formulas[a]`` are
    over the variables ``x1..xk``; ``root_formula`` over ``x1..xk``;
    ``edge_formula`` over ``x1..xk, y1..yk`` (parent, child); ``order_formula``
    over ``x1..xk, y1..yk, z1..zk`` (parent, earlier child, later child).  The
    sibling order may be omitted, in which case siblings are ordered by the
    implicit domain order.
    """

    width: int
    domain_formula: Formula
    root_formula: Formula
    edge_formula: Formula
    label_formulas: Mapping[str, Formula]
    order_formula: Formula | None = None
    root_tag: str = "r"
    max_nodes: int = 100_000
    _variables: tuple[Variable, ...] = field(default=(), compare=False, repr=False)

    def variables(self, prefix: str) -> tuple[Variable, ...]:
        """The canonical variable tuple ``prefix1 .. prefixk``."""
        return tuple(Variable(f"{prefix}{i + 1}") for i in range(self.width))

    # -- evaluation --------------------------------------------------------------

    def apply(self, instance: Instance) -> TreeNode:
        """Evaluate the transduction: build the DAG and unfold it into a tree."""
        constants: set[DataValue] = set()
        for formula in self._all_formulas():
            constants |= set(formula.constants())
        domain = set(instance.active_domain()) | constants
        evaluator = FormulaEvaluator(instance, domain)

        xs = self.variables("x")
        ys = self.variables("y")

        node_rows = self._rows(evaluator, self.domain_formula, xs)
        labels: dict[tuple[DataValue, ...], str] = {}
        for tag, formula in self.label_formulas.items():
            for row in self._rows(evaluator, formula, xs):
                if row in labels and labels[row] != tag:
                    raise TransductionError(f"node {row} receives two labels")
                labels[row] = tag
        nodes = {row for row in node_rows if row in labels}

        roots = self._rows(evaluator, self.root_formula, xs) & nodes
        if len(roots) != 1:
            raise TransductionError(f"the root formula selects {len(roots)} nodes, expected 1")
        root = next(iter(roots))

        edge_rows = self._rows(evaluator, self.edge_formula, xs + ys)
        children: dict[tuple[DataValue, ...], list[tuple[DataValue, ...]]] = {}
        for row in edge_rows:
            parent, child = row[: self.width], row[self.width :]
            if parent in nodes and child in nodes:
                children.setdefault(parent, []).append(child)
        for parent in children:
            children[parent] = sorted(set(children[parent]), key=tuple_order_key)
        self._check_acyclic(root, children)

        budget = [self.max_nodes]

        def unfold(node: tuple[DataValue, ...]) -> TreeNode:
            budget[0] -= 1
            if budget[0] < 0:
                raise TransductionError("transduction unfolding exceeded the node budget")
            child_nodes = tuple(unfold(child) for child in children.get(node, []))
            return TreeNode(labels[node], child_nodes)

        return TreeNode(self.root_tag, (unfold(root),))

    def _all_formulas(self):
        yield self.domain_formula
        yield self.root_formula
        yield self.edge_formula
        if self.order_formula is not None:
            yield self.order_formula
        yield from self.label_formulas.values()

    def _rows(self, evaluator: FormulaEvaluator, formula: Formula, variables) -> set[tuple]:
        table = evaluator.evaluate(formula)
        table = table.expand(variables, evaluator.domain)
        return set(table.rows)

    @staticmethod
    def _check_acyclic(root, children) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict = {}

        def visit(node) -> None:
            colour[node] = GREY
            for child in children.get(node, ()):
                state = colour.get(child, WHITE)
                if state == GREY:
                    raise TransductionError("the edge formula defines a cyclic graph")
                if state == WHITE:
                    visit(child)
            colour[node] = BLACK

        visit(root)

    def is_fixed_depth(self, bound: int, instances) -> bool:
        """Check (on sample instances) that output depth never exceeds ``bound``."""
        return all(self.apply(instance).depth() <= bound + 1 for instance in instances)
