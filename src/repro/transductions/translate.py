"""Theorem 4(1): every ``L``-transduction is definable in ``PT(L, tuple, virtual)``.

The construction builds a transducer whose tuple registers carry the
``k``-tuple identifying the current transduction node: the start rule selects
the transduction's root, and every node spawns, for each output tag, the
``phi_e``-successors carrying that tag.

Sibling order: the paper's construction recovers the transduction's sibling
order through first-child / next-sibling recursion with virtual nodes.  This
implementation orders the children of a node tag-by-tag (rule-item order) and,
within one tag, by the implicit domain order -- i.e. it realises the
transduction up to sibling order, and exactly when the transduction's order
formula is the induced (tag-major, domain-minor) one.  All structural
properties compared in tests and benchmarks (node sets, labels, parent/child
relation, subtree multisets) are preserved.
"""

from __future__ import annotations

from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.logic.fo import And, Exists, FormulaQuery, Rel, conjunction
from repro.logic.terms import Variable
from repro.transductions.first_order import FirstOrderTransduction


def transduction_to_transducer(
    transduction: FirstOrderTransduction,
    name: str = "transduction",
) -> PublishingTransducer:
    """Build the ``PT(L, tuple, virtual)`` transducer of Theorem 4(1)."""
    k = transduction.width
    xs = tuple(Variable(f"x{i + 1}") for i in range(k))
    ps = tuple(Variable(f"p{i + 1}") for i in range(k))

    tags = sorted(transduction.label_formulas)

    start_items = []
    for tag in tags:
        label_formula = transduction.label_formulas[tag]
        query = FormulaQuery(
            xs,
            conjunction(
                [transduction.root_formula, transduction.domain_formula, label_formula]
            ),
        )
        start_items.append(RuleItem("q", tag, RuleQuery(query, k)))

    child_items = []
    for tag in tags:
        label_formula = transduction.label_formulas[tag]
        # parent tuple p comes from the register; the child tuple x must be an
        # edge successor of p carrying the right label.
        edge = transduction.edge_formula.substitute(
            dict(zip(xs, ps))
        )  # parent variables x -> p
        edge = edge.substitute(dict(zip(transduction.variables("y"), xs)))  # child y -> x
        body = Exists(
            ps,
            And((Rel("Reg", ps), edge, transduction.domain_formula, label_formula)),
        )
        child_items.append(RuleItem("q", tag, RuleQuery(FormulaQuery(xs, body), k)))

    rules = [TransductionRule("q0", transduction.root_tag, tuple(start_items))]
    for tag in tags:
        rules.append(TransductionRule("q", tag, tuple(child_items)))

    return make_transducer(
        rules,
        start_state="q0",
        root_tag=transduction.root_tag,
        register_arities={tag: k for tag in tags},
        name=f"{name}-as-transducer",
    )
