"""Logical transductions and their relationship to publishing transducers.

Section 6.3 compares the tree-generating power of publishing transducers with
first-order logical transductions: an ``L``-transduction of width ``k``
describes an output DAG (unfolded into a tree) through a fixed tuple of
``L``-formulas over the input instance.  Theorem 4 shows

* every ``L``-transduction is definable in ``PT(L, tuple, virtual)``;
* every non-recursive ``PTnr(L, tuple, virtual)`` transducer is a fixed-depth
  ``L``-transduction (for L in {FO, IFP});
* there are recursive ``PT(FO, tuple, normal)`` transducers that are not
  FO-transductions (reachability).

The classes here implement first-order transductions, their direct evaluation
(build the DAG, unfold it), and the translation of Theorem 4(1).
"""

from repro.transductions.first_order import FirstOrderTransduction, TransductionError
from repro.transductions.translate import transduction_to_transducer

__all__ = [
    "FirstOrderTransduction",
    "TransductionError",
    "transduction_to_transducer",
]
