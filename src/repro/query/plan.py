"""Relational-algebra plan operators and the :class:`QueryPlan` wrapper.

A plan is a tree of set-at-a-time operators over :class:`~repro.relational.
instance.Instance` relations.  Every operator exposes an ordered tuple of
output ``variables`` (its columns) and a ``rows`` method producing the set of
valuations -- one tuple per row, positionally aligned with ``variables``.

The operator set is exactly what the planner of :mod:`repro.query.planner`
needs to cover safe (range-restricted) CQ/UCQ/FO queries:

* :class:`ScanNode` -- one relation atom, with constant and repeated-variable
  selections pushed into the scan (using the relation's lazy hash indexes);
* :class:`JoinNode` -- hash join on the shared variables;
* :class:`AntiJoinNode` -- safe negation as an anti-join (difference), never
  an active-domain complement;
* :class:`SelectNode` -- residual ``=`` / ``!=`` comparisons;
* :class:`ExtendNode` -- a new column bound to a constant or copied from an
  existing column (equality propagation);
* :class:`ProjectNode`, :class:`UnionNode`, :class:`UnitNode`,
  :class:`EmptyNode` -- the structural glue.

Plans evaluate against an instance plus an optional ``overrides`` mapping
(relation name to a set of tuples), which is how the semi-naive Datalog
evaluator feeds IDB states and per-round deltas into a plan compiled once.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.logic.cq import Comparison
from repro.logic.terms import Constant, Term, Variable
from repro.relational.domain import DataValue
from repro.relational.instance import Instance

#: Relation overrides: name -> rows, consulted before the instance.
Overrides = Mapping[str, Iterable[tuple[DataValue, ...]]]

_NO_OVERRIDES: dict[str, frozenset] = {}

#: Sentinel: the plan was probed for vectorization and is not supported.
_VECTOR_UNSUPPORTED = object()


class PlanNode:
    """Base class of plan operators."""

    __slots__ = ("variables",)

    variables: tuple[Variable, ...]

    def rows(self, instance: Instance, overrides: Overrides) -> Iterable[tuple[DataValue, ...]]:
        """The output rows, positionally aligned with :attr:`variables`."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        """Direct sub-plans (empty for leaves)."""
        return ()

    def label(self) -> str:
        """One explain line describing this operator."""
        raise NotImplementedError


class UnitNode(PlanNode):
    """The nullary relation containing the single empty row (``true``)."""

    __slots__ = ()

    def __init__(self) -> None:
        self.variables = ()

    def rows(self, instance, overrides):
        return (( ),)

    def label(self) -> str:
        return "Unit"


class EmptyNode(PlanNode):
    """The empty relation over a fixed set of columns (``false``)."""

    __slots__ = ()

    def __init__(self, variables: Sequence[Variable] = ()) -> None:
        self.variables = tuple(variables)

    def rows(self, instance, overrides):
        return ()

    def label(self) -> str:
        return f"Empty [{_var_list(self.variables)}]"


class RowsNode(PlanNode):
    """A constant in-plan relation (e.g. a single equality-derived row)."""

    __slots__ = ("_rows",)

    def __init__(self, variables: Sequence[Variable], rows: Iterable[tuple[DataValue, ...]]) -> None:
        self.variables = tuple(variables)
        self._rows = tuple(rows)

    def rows(self, instance, overrides):
        return self._rows

    def label(self) -> str:
        return f"Rows [{_var_list(self.variables)}] ({len(self._rows)} row(s))"


class ScanNode(PlanNode):
    """A relation atom with constant / repeated-variable selections pushed down.

    ``forced`` maps variables of the atom to constants the planner derived
    from equality constraints; those positions are checked like literal
    constants and the variable's output value is the constant itself.  When
    the scan reads a real :class:`~repro.relational.instance.Relation` (not an
    override) and has constant positions, it probes the relation's lazy hash
    index instead of iterating every tuple.
    """

    __slots__ = ("relation", "terms", "forced", "_expected", "_capture", "_repeats", "_emit")

    def __init__(
        self,
        relation: str,
        terms: Sequence[Term],
        forced: Mapping[Variable, DataValue] | None = None,
    ) -> None:
        self.relation = relation
        self.terms = tuple(terms)
        forced = dict(forced or {})
        # Kept so the delta machinery can re-derive this scan over another
        # relation name (repro.query.delta) without replaying the planner.
        self.forced = forced
        seen: dict[Variable, int] = {}
        expected: list[tuple[int, DataValue]] = []   # positions pinned to a value
        repeats: list[tuple[int, int]] = []          # (position, earlier position)
        capture: dict[Variable, int] = {}            # first row position per free var
        order: list[Variable] = []
        for position, term in enumerate(self.terms):
            if isinstance(term, Constant):
                expected.append((position, term.value))
                continue
            if term in forced:
                expected.append((position, forced[term]))
                if term not in seen:
                    seen[term] = position
                    order.append(term)
                continue
            if term in seen:
                repeats.append((position, seen[term]))
            else:
                seen[term] = position
                capture[term] = position
                order.append(term)
        self.variables = tuple(order)
        self._expected = tuple(expected)
        self._repeats = tuple(repeats)
        self._capture = tuple(capture.items())
        # Per output variable: either ("row", position) or ("const", value).
        emit: list[tuple[str, object]] = []
        for variable in order:
            if variable in forced:
                emit.append(("const", forced[variable]))
            else:
                emit.append(("row", capture[variable]))
        self._emit = tuple(emit)

    def _source(self, instance: Instance, overrides: Overrides):
        """The row source and whether it supports hash-index probing."""
        if overrides and self.relation in overrides:
            return overrides[self.relation], None
        if self.relation in instance.schema:
            relation = instance[self.relation]
            if relation.arity != len(self.terms):
                return (), None
            return relation.tuples, relation
        return (), None

    def rows(self, instance, overrides):
        source, relation = self._source(instance, overrides)
        expected = self._expected
        if relation is not None and expected:
            positions = tuple(position for position, _ in expected)
            key = tuple(value for _, value in expected)
            source = relation.hash_index(positions).get(key, ())
            expected = ()
        width = len(self.terms)
        out: list[tuple[DataValue, ...]] = []
        append = out.append
        repeats = self._repeats
        emit = self._emit
        for row in source:
            if len(row) != width:
                continue
            ok = True
            for position, value in expected:
                if row[position] != value:
                    ok = False
                    break
            if not ok:
                continue
            for position, earlier in repeats:
                if row[position] != row[earlier]:
                    ok = False
                    break
            if not ok:
                continue
            append(tuple(spec[1] if spec[0] == "const" else row[spec[1]] for spec in emit))
        return out

    def index_probe(self, instance: Instance, overrides: Overrides, key: Sequence[Variable]):
        """A bucket-probe function keyed on ``key``, or ``None`` if unsupported.

        Backed by the relation's cached hash index on the pinned positions
        plus the key variables' positions, so a join probing this scan does
        not re-hash the relation on every execution -- the index is built once
        per relation object and shared across the engine's memoized
        expansions.  Override sources (Datalog deltas) are not indexed.
        """
        if overrides and self.relation in overrides:
            return None
        _, relation = self._source(instance, overrides)
        if relation is None:
            return None
        capture = dict(self._capture)
        if any(variable not in capture for variable in key):
            return None  # a key variable is pinned to a constant: rare, skip
        positions = tuple(position for position, _ in self._expected) + tuple(
            capture[variable] for variable in key
        )
        prefix = tuple(value for _, value in self._expected)
        index = relation.hash_index(positions)
        repeats = self._repeats
        emit = self._emit

        def probe(key_values: tuple[DataValue, ...]) -> list[tuple[DataValue, ...]]:
            bucket = index.get(prefix + key_values)
            if not bucket:
                return []
            out = []
            for row in bucket:
                ok = True
                for position, earlier in repeats:
                    if row[position] != row[earlier]:
                        ok = False
                        break
                if ok:
                    out.append(
                        tuple(spec[1] if spec[0] == "const" else row[spec[1]] for spec in emit)
                    )
            return out

        return probe

    def label(self) -> str:
        atom = f"{self.relation}({', '.join(str(t) for t in self.terms)})"
        if self._expected:
            pins = ", ".join(f"#{position}={value!r}" for position, value in self._expected)
            return f"IndexScan {atom} [{pins}]"
        return f"Scan {atom}"


class JoinNode(PlanNode):
    """Hash join on the variables shared between the two inputs."""

    __slots__ = ("left", "right", "shared", "_left_key", "_right_key", "_right_extra")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right
        left_vars = left.variables
        right_vars = right.variables
        self.shared = tuple(v for v in left_vars if v in right_vars)
        self._left_key = tuple(left_vars.index(v) for v in self.shared)
        self._right_key = tuple(right_vars.index(v) for v in self.shared)
        extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
        self._right_extra = tuple(extra)
        self.variables = left_vars + tuple(right_vars[i] for i in extra)

    def children(self):
        return (self.left, self.right)

    def rows(self, instance, overrides):
        left_key = self._left_key
        extra = self._right_extra
        out: list[tuple[DataValue, ...]] = []
        append = out.append
        if self.shared and isinstance(self.right, ScanNode):
            probe = self.right.index_probe(instance, overrides, self.shared)
            if probe is not None:
                for row in self.left.rows(instance, overrides):
                    for match in probe(tuple(row[i] for i in left_key)):
                        append(row + tuple(match[i] for i in extra))
                return out
        right_key = self._right_key
        index: dict[tuple, list[tuple]] = {}
        for row in self.right.rows(instance, overrides):
            key = tuple(row[i] for i in right_key)
            index.setdefault(key, []).append(tuple(row[i] for i in extra))
        for row in self.left.rows(instance, overrides):
            key = tuple(row[i] for i in left_key)
            for suffix in index.get(key, ()):
                append(row + suffix)
        return out

    def label(self) -> str:
        if self.shared:
            return f"HashJoin [{_var_list(self.shared)}]"
        return "CrossJoin"


class AntiJoinNode(PlanNode):
    """Rows of ``left`` with no matching row in ``right`` (safe negation).

    The match is on the right plan's full variable tuple, which the planner
    guarantees is a subset of the left plan's variables.
    """

    __slots__ = ("left", "right", "_left_key")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right
        missing = [v for v in right.variables if v not in left.variables]
        if missing:
            raise ValueError(f"anti-join right variables {missing} not bound on the left")
        self._left_key = tuple(left.variables.index(v) for v in right.variables)
        self.variables = left.variables

    def children(self):
        return (self.left, self.right)

    def rows(self, instance, overrides):
        banned = set(map(tuple, self.right.rows(instance, overrides)))
        key = self._left_key
        return [row for row in self.left.rows(instance, overrides)
                if tuple(row[i] for i in key) not in banned]

    def label(self) -> str:
        return f"AntiJoin [{_var_list(self.right.variables)}]"


class SelectNode(PlanNode):
    """Residual ``=`` / ``!=`` comparisons over bound columns and constants."""

    __slots__ = ("child", "comparisons", "_checks")

    def __init__(self, child: PlanNode, comparisons: Sequence[Comparison]) -> None:
        self.child = child
        self.comparisons = tuple(comparisons)
        self.variables = child.variables
        positions = {v: i for i, v in enumerate(child.variables)}
        checks = []
        for comparison in self.comparisons:
            checks.append(
                (
                    _accessor(comparison.left, positions),
                    _accessor(comparison.right, positions),
                    comparison.negated,
                )
            )
        self._checks = tuple(checks)

    def children(self):
        return (self.child,)

    def rows(self, instance, overrides):
        checks = self._checks
        out = []
        append = out.append
        for row in self.child.rows(instance, overrides):
            ok = True
            for left, right, negated in checks:
                if (left(row) == right(row)) == negated:
                    ok = False
                    break
            if ok:
                append(row)
        return out

    def label(self) -> str:
        return f"Select [{', '.join(str(c) for c in self.comparisons)}]"


class ExtendNode(PlanNode):
    """Append a column bound to a constant or copied from an existing column."""

    __slots__ = ("child", "variable", "constant", "source", "_source_index")

    def __init__(
        self,
        child: PlanNode,
        variable: Variable,
        constant: DataValue | None = None,
        source: Variable | None = None,
    ) -> None:
        if (constant is None) == (source is None):
            raise ValueError("ExtendNode needs exactly one of constant / source")
        self.child = child
        self.variable = variable
        self.constant = constant
        self.source = source
        self.variables = child.variables + (variable,)
        self._source_index = child.variables.index(source) if source is not None else -1

    def children(self):
        return (self.child,)

    def rows(self, instance, overrides):
        if self.source is None:
            value = self.constant
            return [row + (value,) for row in self.child.rows(instance, overrides)]
        index = self._source_index
        return [row + (row[index],) for row in self.child.rows(instance, overrides)]

    def label(self) -> str:
        if self.source is None:
            return f"Extend {self.variable} := {self.constant!r}"
        return f"Extend {self.variable} := {self.source}"


class RenameNode(PlanNode):
    """Relabel the columns of a sub-plan (used to align UCQ disjunct heads)."""

    __slots__ = ("child",)

    def __init__(self, child: PlanNode, variables: Sequence[Variable]) -> None:
        variables = tuple(variables)
        if len(variables) != len(child.variables):
            raise ValueError("rename must preserve the column count")
        self.child = child
        self.variables = variables

    def children(self):
        return (self.child,)

    def rows(self, instance, overrides):
        return self.child.rows(instance, overrides)

    def label(self) -> str:
        return f"Rename [{_var_list(self.variables)}]"


class ProjectNode(PlanNode):
    """Projection onto an explicit (possibly repeating) variable tuple."""

    __slots__ = ("child", "_positions")

    def __init__(self, child: PlanNode, variables: Sequence[Variable]) -> None:
        self.child = child
        self.variables = tuple(variables)
        positions = {v: i for i, v in enumerate(child.variables)}
        self._positions = tuple(positions[v] for v in self.variables)

    def children(self):
        return (self.child,)

    def rows(self, instance, overrides):
        positions = self._positions
        return {tuple(row[i] for i in positions) for row in self.child.rows(instance, overrides)}

    def label(self) -> str:
        return f"Project [{_var_list(self.variables)}]"


class UnionNode(PlanNode):
    """Set union of sub-plans sharing one variable tuple."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[PlanNode]) -> None:
        parts = tuple(parts)
        if not parts:
            raise ValueError("a union needs at least one part")
        variables = parts[0].variables
        for part in parts[1:]:
            if part.variables != variables:
                raise ValueError("union parts must agree on their variable tuple")
        self.parts = parts
        self.variables = variables

    def children(self):
        return self.parts

    def rows(self, instance, overrides):
        out: set[tuple[DataValue, ...]] = set()
        for part in self.parts:
            out.update(map(tuple, part.rows(instance, overrides)))
        return out

    def label(self) -> str:
        return f"Union ({len(self.parts)} parts)"


class QueryPlan:
    """A compiled query: execute many times, explain once.

    ``requirements`` carries the strict CQ preconditions -- ``(relation,
    arity)`` pairs that must match the instance schema or the whole answer is
    empty (the naive CQ evaluator's behaviour for unknown relations and arity
    mismatches).  FO-derived plans leave it empty: there a bad atom only
    empties its own sub-table.

    Two execution backends share the one plan tree: the original
    **row** backend (each operator's ``rows`` method, tuple-at-a-time over
    raw domain values) and the **columnar** backend of
    :mod:`repro.query.vectorized` (dictionary-encoded integer columns,
    vectorized operators).  :meth:`execute` picks the columnar kernel
    whenever the instance carries an encoding
    (:func:`repro.relational.columnar.ensure_encoded`); ``last_backend``
    records which kernel the most recent execution used, and
    :meth:`explain` reports it.
    """

    __slots__ = (
        "root",
        "head",
        "requirements",
        "executions",
        "last_backend",
        "_delta",
        "_vector",
    )

    def __init__(
        self,
        root: PlanNode,
        head: Sequence[Variable],
        requirements: Sequence[tuple[str, int]] = (),
    ) -> None:
        self.root = root
        self.head = tuple(head)
        self.requirements = tuple(requirements)
        self.executions = 0
        self.last_backend: str | None = None
        self._delta = None  # lazily built repro.query.delta.DeltaPlan
        self._vector = None  # lazily built repro.query.vectorized.VectorKernel

    def __getstate__(self):
        # The delta and vectorized kernels hold closures; both are lazily
        # rebuilt on demand, so a pickled plan ships only the operator tree.
        return (self.root, self.head, self.requirements)

    def __setstate__(self, state):
        self.root, self.head, self.requirements = state
        self.executions = 0
        self.last_backend = None
        self._delta = None
        self._vector = None

    def _check_requirements(self, instance: Instance, overrides) -> bool:
        for name, arity in self.requirements:
            if name in overrides:
                continue
            if name not in instance.schema or instance.schema.arity(name) != arity:
                return False
        return True

    def vector_kernel(self):
        """The compiled columnar kernel, or ``None`` when unsupported.

        Built once per plan (like the delta machinery); the kernel itself is
        stateless, so one compiled kernel serves every encoded instance.
        """
        if self._vector is None:
            from repro.query.vectorized import vectorize

            self._vector = vectorize(self) or _VECTOR_UNSUPPORTED
        return None if self._vector is _VECTOR_UNSUPPORTED else self._vector

    def execute(
        self, instance: Instance, overrides: Overrides | None = None
    ) -> frozenset[tuple[DataValue, ...]]:
        """Run the plan and return the answer set over the head variables.

        On an encoded instance the columnar kernel runs (raw ``overrides``
        rows -- deltas, Datalog IDB states -- are interned on the fly) and
        the encoded answers are decoded at this boundary; callers that want
        to stay in integer space use :meth:`execute_encoded` instead.
        """
        self.executions += 1
        overrides = overrides or _NO_OVERRIDES
        encoder = instance._encoding
        kernel = self.vector_kernel() if encoder is not None else None
        self.last_backend = "columnar" if kernel is not None else "row"
        if not self._check_requirements(instance, overrides):
            return frozenset()
        if kernel is not None:
            if overrides:
                # Intern only the overrides the plan actually scans: a
                # caller may pass a whole state dict (the Datalog loop's
                # IDB states) of which this plan reads one relation.
                scanned = self.scan_relations()
                encoded_overrides = {
                    name: encoder.encode_rows(rows)
                    for name, rows in overrides.items()
                    if name in scanned
                }
            else:
                encoded_overrides = None
            rows = kernel.execute_raw(encoder, instance, encoded_overrides)
            return encoder.decode_rows(rows)
        return frozenset(map(tuple, self.root.rows(instance, overrides)))

    def execute_encoded(
        self, instance: Instance, overrides=None
    ) -> frozenset[tuple[int, ...]]:
        """Run the columnar kernel and return the *encoded* answer set.

        ``overrides`` maps relation names to sets of already-encoded tuples
        (the engine's register contents, the Datalog loop's IDB states).
        The instance must carry an encoding and the plan must vectorize;
        callers check :meth:`vector_kernel` first or catch ``ValueError``.
        Decoding is deferred to the caller -- typically to the point where
        XML text is actually emitted.
        """
        encoder = instance._encoding
        if encoder is None:
            raise ValueError("execute_encoded requires an encoded instance")
        kernel = self.vector_kernel()
        if kernel is None:
            raise ValueError("plan does not support the columnar backend")
        self.executions += 1
        self.last_backend = "columnar"
        overrides = overrides or _NO_OVERRIDES
        if not self._check_requirements(instance, overrides):
            return frozenset()
        return kernel.execute(encoder, instance, overrides)

    # -- incremental evaluation ----------------------------------------------

    def _delta_plan(self):
        """The per-plan delta machinery, built once on first use."""
        if self._delta is None:
            from repro.query.delta import DeltaPlan

            self._delta = DeltaPlan(self)
        return self._delta

    def scan_relations(self) -> frozenset[str]:
        """The relation names this plan reads (its scanned atoms)."""
        return self._delta_plan().relations

    def is_monotone(self) -> bool:
        """True when adding source tuples can only add answers (no anti-join)."""
        return self._delta_plan().monotone

    def delta_strategy(self) -> str:
        """How :meth:`execute_delta` maintains this plan's answers."""
        if self._delta_plan().monotone:
            return "per-occurrence delta plans (semi-naive)"
        return "recompute fallback (anti-join / negation)"

    def execute_delta(
        self,
        instance: Instance,
        delta,
        *,
        prev_answers: frozenset[tuple[DataValue, ...]] | None = None,
        new_instance: Instance | None = None,
    ):
        """The exact change in this plan's answers under ``delta``.

        Returns a :class:`~repro.query.delta.QueryDelta` whose ``added`` /
        ``removed`` sets satisfy ``execute(new) == (execute(old) - removed) |
        added``.  Monotone plans (CQ/UCQ and negation-free FO) reuse the PR 2
        semi-naive machinery: one derived plan per occurrence of a changed
        relation, with that occurrence reading only the changed tuples, so
        insert-only deltas never re-enumerate the unchanged answers.
        Deletions are over-approximated the same way and then re-derived;
        non-monotone plans (anti-joins) fall back to recomputation, as
        flagged by :meth:`delta_strategy` and :meth:`explain`.

        ``prev_answers`` (the plan's answers on ``instance``) and
        ``new_instance`` (``instance.apply_delta(delta)``) are computed when
        not supplied; callers maintaining views should pass both.
        """
        return self._delta_plan().execute_delta(
            instance, delta, prev_answers=prev_answers, new_instance=new_instance
        )

    # -- introspection -------------------------------------------------------

    def walk(self) -> Iterable[PlanNode]:
        """All operators, root first, depth first."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def join_order(self) -> tuple[str, ...]:
        """The scanned relations in join order (left-deep, left first)."""
        return tuple(
            node.relation for node in self.walk() if isinstance(node, ScanNode)
        )

    def stats(self) -> dict[str, object]:
        """A one-call observability snapshot of this plan.

        The per-plan half of the serving layer's aggregated
        :class:`~repro.serve.stats.ExplainReport`: execution count, the
        backend of the most recent execution, the join order, whether the
        columnar kernel supports the plan, and the incremental-maintenance
        strategy -- previously collected from four separate accessors.
        """
        return {
            "executions": self.executions,
            "last_backend": self.last_backend,
            "join_order": list(self.join_order()),
            "vectorized": self.vector_kernel() is not None,
            "delta_strategy": self.delta_strategy(),
        }

    def operator_counts(self) -> dict[str, int]:
        """How many operators of each kind the plan contains."""
        counts: dict[str, int] = {}
        for node in self.walk():
            name = type(node).__name__.removesuffix("Node")
            counts[name] = counts.get(name, 0) + 1
        return counts

    def explain(self) -> str:
        """A human-readable rendering of the operator tree and join order."""
        lines = [f"QueryPlan head=({_var_list(self.head)})"]
        order = self.join_order()
        if len(order) > 1:
            lines.append(f"  join order: {' >< '.join(order)}")
        lines.append(f"  delta: {self.delta_strategy()}")
        backend = self.last_backend or "none yet (row or columnar, per instance)"
        lines.append(f"  backend: {backend}")

        def render(node: PlanNode, depth: int) -> None:
            lines.append("  " * (depth + 1) + node.label())
            for child in node.children():
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryPlan(head=({_var_list(self.head)}), ops={self.operator_counts()})"


def _var_list(variables: Sequence[Variable]) -> str:
    return ", ".join(v.name for v in variables)


class _ConstAccessor:
    """Accessor returning a fixed constant regardless of the row.

    A class (not a closure) so compiled plans can cross a process boundary:
    the parallel executor pickles whole plan trees into worker processes.
    """

    __slots__ = ("value",)

    def __init__(self, value: DataValue) -> None:
        self.value = value

    def __call__(self, row):
        return self.value

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state


class _ColumnAccessor:
    """Accessor reading one bound column of the row (picklable, see above)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __call__(self, row):
        return row[self.index]

    def __getstate__(self):
        return self.index

    def __setstate__(self, state):
        self.index = state


def _accessor(term: Term, positions: Mapping[Variable, int]):
    """A row accessor for one comparison side (constant or bound column)."""
    if isinstance(term, Constant):
        return _ConstAccessor(term.value)
    return _ColumnAccessor(positions[term])
