"""The vectorized (columnar) execution kernel behind :class:`QueryPlan`.

This module compiles a :class:`~repro.query.plan.QueryPlan` operator tree --
the *unchanged* plan language of :mod:`repro.query.planner` -- into a tree of
closures operating on **batches**: per-variable columns of dense integer ids
produced by a :class:`~repro.relational.columnar.DictionaryEncoder`.  The
row backend walks Python tuples of heterogeneous values one row at a time;
the kernel instead

* reads base relations through their cached
  :class:`~repro.relational.columnar.ColumnarRelation` columns (zero-copy
  for unpinned scans) and probes their integer hash indexes,
* joins by probing ``dict[int, list[row_id]]`` indexes (plain int hashing
  instead of tuple-of-object hashing) and gathers output columns with one
  list comprehension per column,
* deduplicates and unions over sets of int tuples,
* and decodes back to domain values only at the plan boundary -- or not at
  all, when the caller (the publishing engine, the semi-naive Datalog loop)
  stays in integer space end-to-end via
  :meth:`~repro.query.plan.QueryPlan.execute_encoded`.

A batch is a pair ``(columns, n)``: ``columns`` is a tuple of equal-length
lists of ints, positionally aligned with the node's ``variables``; ``n`` is
the row count, which matters when there are no columns (the nullary
relations ``Unit`` / ``Empty``).  Batches are never mutated after creation,
so operators may share column lists freely (``Extend`` aliases its source
column, unpinned scans alias the base relation's columns).

Overrides (the semi-naive delta channel) are sets of *encoded* tuples; the
kernel falls back to a row-wise loop over them -- still in integer space --
because override sources are small by design (per-round deltas, register
contents).

Every operator of :mod:`repro.query.plan` is supported; :func:`vectorize`
returns ``None`` only for plan-node types this module does not know about,
in which case :meth:`QueryPlan.execute` stays on the row backend.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.query.plan import (
    AntiJoinNode,
    EmptyNode,
    ExtendNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    RenameNode,
    RowsNode,
    ScanNode,
    SelectNode,
    UnionNode,
    UnitNode,
)
from repro.relational.columnar import DictionaryEncoder
from repro.relational.instance import Instance

#: Encoded overrides: relation name -> iterable of int tuples.
EncodedOverrides = Mapping[str, Iterable[tuple[int, ...]]]

#: A batch: (columns aligned with the node's variables, row count).
Batch = tuple[tuple[list[int], ...], int]

_EMPTY_OVERRIDES: dict[str, frozenset] = {}


class _Ctx:
    """One kernel execution: the encoder, the instance, the encoded overrides."""

    __slots__ = ("encoder", "instance", "overrides")

    def __init__(
        self,
        encoder: DictionaryEncoder,
        instance: Instance,
        overrides: EncodedOverrides,
    ) -> None:
        self.encoder = encoder
        self.instance = instance
        self.overrides = overrides


def _empty(width: int) -> Batch:
    return (tuple([] for _ in range(width)), 0)


def _rows_of(batch: Batch) -> set[tuple[int, ...]]:
    """The batch as a set of int tuples (zero-column batches yield ``()``)."""
    columns, n = batch
    if not columns:
        return {()} if n else set()
    if len(columns) == 1:
        return {(value,) for value in columns[0]}
    return set(zip(*columns))


def _unzip(rows: set[tuple[int, ...]], width: int) -> Batch:
    """A set of int tuples as a batch (column order is arbitrary but aligned)."""
    if not rows:
        return _empty(width)
    if width == 0:
        return ((), 1)
    return (tuple(map(list, zip(*rows))), len(rows))


# ---------------------------------------------------------------------------
# Per-operator compilation.  Each _compile_* returns fn(ctx) -> Batch.
# ---------------------------------------------------------------------------


def _compile_scan(node: ScanNode) -> Callable[[_Ctx], Batch]:
    relation_name = node.relation
    width = len(node.terms)
    expected = node._expected          # ((position, raw value), ...)
    repeats = node._repeats            # ((position, earlier position), ...)
    emit = node._emit                  # (("const", raw) | ("row", position), ...)
    out_width = len(emit)
    pin_positions = tuple(position for position, _ in expected)
    row_emits = tuple(
        (k, payload) for k, (kind, payload) in enumerate(emit) if kind == "row"
    )
    const_emits = tuple(
        (k, payload) for k, (kind, payload) in enumerate(emit) if kind == "const"
    )

    def scan_override(ctx: _Ctx, rows) -> Batch:
        """Scan an (already encoded) override source: a delta, a register.

        The common case -- equal-width rows, no pins, no repeats -- is a
        single C-level ``zip`` transpose; mixed widths or residual filters
        fall back to a row-wise loop (still over integers).
        """
        encoder = ctx.encoder
        if not rows:
            return _empty(out_width)

        def emit_transposed(kept_rows) -> Batch:
            """Transpose equal-width rows and lay out the emit columns."""
            by_position = dict(enumerate(zip(*kept_rows) if width else ()))
            n = len(kept_rows)
            columns = [None] * out_width  # type: ignore[list-item]
            for k, position in row_emits:
                columns[k] = by_position[position]
            for k, value in const_emits:
                columns[k] = [encoder.intern(value)] * n
            return (tuple(columns), n)

        widths = set(map(len, rows))
        if widths == {width} or (not widths and not width):
            if not expected and not repeats:
                return emit_transposed(rows)
            if not isinstance(rows, (list, tuple)):
                rows = list(rows)
            keep = None
            for position, value in expected:
                value_id = encoder.intern(value)
                column = [row[position] for row in rows]
                if keep is None:
                    keep = [i for i, v in enumerate(column) if v == value_id]
                else:
                    keep = [i for i in keep if column[i] == value_id]
                if not keep:
                    return _empty(out_width)
            for position, earlier in repeats:
                if keep is None:
                    keep = [
                        i
                        for i, row in enumerate(rows)
                        if row[position] == row[earlier]
                    ]
                else:
                    keep = [i for i in keep if rows[i][position] == rows[i][earlier]]
                if not keep:
                    return _empty(out_width)
            if keep is not None and len(keep) < len(rows):
                rows = [rows[i] for i in keep]
            return emit_transposed(rows)
        # Mixed-width rows (only possible through hand-built overrides):
        # filter row-wise, like the row backend's scan does.
        intern = encoder.intern
        pins = tuple((position, intern(value)) for position, value in expected)
        columns = tuple([] for _ in range(out_width))
        appenders = tuple(
            (columns[k].append, position) for k, position in row_emits
        )
        n = 0
        for row in rows:
            if len(row) != width:
                continue
            ok = True
            for position, value_id in pins:
                if row[position] != value_id:
                    ok = False
                    break
            if ok:
                for position, earlier in repeats:
                    if row[position] != row[earlier]:
                        ok = False
                        break
            if not ok:
                continue
            for append, position in appenders:
                append(row[position])
            n += 1
        for k, value in const_emits:
            columns[k].extend([intern(value)] * n)
        return (columns, n)

    def run(ctx: _Ctx) -> Batch:
        overrides = ctx.overrides
        if overrides and relation_name in overrides:
            return scan_override(ctx, overrides[relation_name])
        instance = ctx.instance
        if relation_name not in instance.schema:
            return _empty(out_width)
        relation = instance[relation_name]
        if relation.arity != width:
            return _empty(out_width)
        encoder = ctx.encoder
        columnar = encoder.columns_for(relation)
        base = columnar.columns
        if expected:
            key: object
            if len(pin_positions) == 1:
                key = encoder.intern(expected[0][1])
            else:
                key = tuple(encoder.intern(value) for _, value in expected)
            row_ids = columnar.index(pin_positions).get(key)
            if not row_ids:
                return _empty(out_width)
            if repeats:
                row_ids = [
                    i
                    for i in row_ids
                    if all(base[p][i] == base[e][i] for p, e in repeats)
                ]
                if not row_ids:
                    return _empty(out_width)
            n = len(row_ids)
            columns = [None] * out_width  # type: ignore[list-item]
            for k, position in row_emits:
                columns[k] = list(map(base[position].__getitem__, row_ids))
            for k, value in const_emits:
                columns[k] = [encoder.intern(value)] * n
            return (tuple(columns), n)
        if repeats:
            if len(repeats) == 1:
                position, earlier = repeats[0]
                left, right = base[position], base[earlier]
                row_ids = [i for i, v in enumerate(left) if v == right[i]]
            else:
                row_ids = [
                    i
                    for i in range(columnar.num_rows)
                    if all(base[p][i] == base[e][i] for p, e in repeats)
                ]
            if not row_ids:
                return _empty(out_width)
            n = len(row_ids)
            columns = [None] * out_width  # type: ignore[list-item]
            for k, position in row_emits:
                columns[k] = list(map(base[position].__getitem__, row_ids))
            for k, value in const_emits:
                columns[k] = [encoder.intern(value)] * n
            return (tuple(columns), n)
        # Unpinned, repeat-free scan: the base columns are shared zero-copy.
        n = columnar.num_rows
        columns = [None] * out_width  # type: ignore[list-item]
        for k, position in row_emits:
            columns[k] = base[position]
        for k, value in const_emits:
            columns[k] = [encoder.intern(value)] * n
        return (tuple(columns), n)

    return run


def _probe_spec(node: JoinNode):
    """Static probe plan for a join whose right child scans a base relation.

    Mirrors :meth:`ScanNode.index_probe` on the columnar side: the join
    probes the columnar relation's *cached* integer index on the pinned
    positions plus the key variables' positions, so no per-execution hash
    table is built.  Returns ``None`` when the right child is not a plain
    scan or a key variable is pinned to a constant (rare; the generic
    hash-join path handles it).
    """
    right = node.right
    if not isinstance(right, ScanNode) or not node.shared:
        return None
    capture = dict(right._capture)
    if any(variable not in capture for variable in node.shared):
        return None
    key_positions = tuple(capture[variable] for variable in node.shared)
    pin_positions = tuple(position for position, _ in right._expected)
    emit_by_variable = dict(zip(right.variables, right._emit))
    extra_specs = tuple(
        emit_by_variable[right.variables[e]] for e in node._right_extra
    )
    return (
        right.relation,
        len(right.terms),
        right._expected,
        pin_positions + key_positions,
        right._repeats,
        extra_specs,
    )


def _compile_join(node: JoinNode) -> Callable[[_Ctx], Batch]:
    left_fn = _compile_batch(node.left)
    right_fn = _compile_batch(node.right)
    left_width = len(node.left.variables)
    out_width = len(node.variables)
    left_key = node._left_key
    right_key = node._right_key
    extra = node._right_extra
    probe_spec = _probe_spec(node)

    if not node.shared:

        def cross(ctx: _Ctx) -> Batch:
            left_columns, left_n = left_fn(ctx)
            if not left_n:
                return _empty(out_width)
            right_columns, right_n = right_fn(ctx)
            if not right_n:
                return _empty(out_width)
            columns = [
                [value for value in column for _ in range(right_n)]
                for column in left_columns
            ]
            for e in extra:
                columns.append(right_columns[e] * left_n)
            return (tuple(columns), left_n * right_n)

        return cross

    single = len(left_key) == 1

    def probe_base(ctx: _Ctx, left_columns, left_n) -> Batch | None:
        """Probe the right base relation's cached columnar index directly.

        Returns ``None`` when the right relation is overridden or missing,
        in which case the caller falls back to the generic hash join.
        """
        relation_name, width, expected, positions, repeats, extra_specs = probe_spec
        if ctx.overrides and relation_name in ctx.overrides:
            return None
        instance = ctx.instance
        if relation_name not in instance.schema:
            return _empty(out_width)
        relation = instance[relation_name]
        if relation.arity != width:
            return _empty(out_width)
        encoder = ctx.encoder
        columnar = encoder.columns_for(relation)
        base = columnar.columns
        prefix = tuple(encoder.intern(value) for _, value in expected)
        bare_key = not prefix and single and len(positions) == 1
        if bare_key:
            probe_keys = left_columns[left_key[0]]
        elif single:
            key_column = left_columns[left_key[0]]
            probe_keys = [prefix + (value,) for value in key_column]
        else:
            key_tuples = zip(*(left_columns[k] for k in left_key))
            probe_keys = (
                [prefix + key for key in key_tuples] if prefix else list(key_tuples)
            )
        left_ids: list[int] = []
        right_ids: list[int] | None = None
        if not repeats:
            unique = columnar.unique_index(positions)
            if unique is not None:
                # Key probe: one row per hit, resolved with C-level bulk
                # lookups instead of a per-key Python loop.
                hits = list(map(unique.get, probe_keys))
                left_ids = [i for i, j in enumerate(hits) if j is not None]
                if not left_ids:
                    return _empty(out_width)
                right_ids = (
                    hits if len(left_ids) == len(hits) else [j for j in hits if j is not None]
                )
        if right_ids is None:
            index = columnar.index(positions)
            get = index.get
            right_ids = []
            append_left = left_ids.append
            extend_left = left_ids.extend
            append_right = right_ids.append
            extend_right = right_ids.extend
            if repeats:
                for i, bucket in enumerate(map(get, probe_keys)):
                    if bucket is None:
                        continue
                    for j in bucket:
                        if all(base[p][j] == base[e][j] for p, e in repeats):
                            append_left(i)
                            append_right(j)
            else:
                for i, bucket in enumerate(map(get, probe_keys)):
                    if bucket is None:
                        continue
                    m = len(bucket)
                    if m == 1:
                        append_left(i)
                        append_right(bucket[0])
                    else:
                        extend_left([i] * m)
                        extend_right(bucket)
        if not left_ids:
            return _empty(out_width)
        columns = [
            list(map(column.__getitem__, left_ids)) for column in left_columns
        ]
        n = len(left_ids)
        for kind, payload in extra_specs:
            if kind == "row":
                columns.append(list(map(base[payload].__getitem__, right_ids)))
            else:
                columns.append([encoder.intern(payload)] * n)
        return (tuple(columns), n)

    def run(ctx: _Ctx) -> Batch:
        left_columns, left_n = left_fn(ctx)
        if not left_n:
            return _empty(out_width)
        if probe_spec is not None:
            probed = probe_base(ctx, left_columns, left_n)
            if probed is not None:
                return probed
        right_columns, right_n = right_fn(ctx)
        if not right_n:
            return _empty(out_width)
        # Build the (per-execution) index over the smaller probe target: the
        # right batch.  Base-relation lookups already came through the
        # columnar relation's cached indexes inside the scan.
        index: dict = {}
        if single:
            right_key_column = right_columns[right_key[0]]
            for j, key in enumerate(right_key_column):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [j]
                else:
                    bucket.append(j)
            probe_keys = left_columns[left_key[0]]
        else:
            right_key_columns = [right_columns[k] for k in right_key]
            for j, key in enumerate(zip(*right_key_columns)):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [j]
                else:
                    bucket.append(j)
            probe_keys = list(zip(*(left_columns[k] for k in left_key)))
        left_ids: list[int] = []
        right_ids: list[int] = []
        extend_left = left_ids.extend
        append_left = left_ids.append
        extend_right = right_ids.extend
        append_right = right_ids.append
        get = index.get
        for i, key in enumerate(probe_keys):
            bucket = get(key)
            if bucket is None:
                continue
            m = len(bucket)
            if m == 1:
                append_left(i)
                append_right(bucket[0])
            else:
                extend_left([i] * m)
                extend_right(bucket)
        if not left_ids:
            return _empty(out_width)
        columns = [
            list(map(column.__getitem__, left_ids)) for column in left_columns
        ]
        for e in extra:
            columns.append(list(map(right_columns[e].__getitem__, right_ids)))
        return (tuple(columns), len(left_ids))

    return run


def _compile_anti_join(node: AntiJoinNode) -> Callable[[_Ctx], Batch]:
    left_fn = _compile_batch(node.left)
    right_fn = _compile_rows(node.right)
    out_width = len(node.variables)
    key = node._left_key
    single = len(key) == 1

    def run(ctx: _Ctx) -> Batch:
        left_columns, left_n = left_fn(ctx)
        if not left_n:
            return _empty(out_width)
        banned = right_fn(ctx)
        if not banned:
            return (left_columns, left_n)
        if not key:
            # Zero-width negation: a non-empty right bans every left row.
            return _empty(out_width)
        if single:
            banned_values = {row[0] for row in banned}
            key_column = left_columns[key[0]]
            keep = [i for i, k in enumerate(key_column) if k not in banned_values]
        else:
            key_columns = [left_columns[k] for k in key]
            keep = [
                i for i, k in enumerate(zip(*key_columns)) if k not in banned
            ]
        if not keep:
            return _empty(out_width)
        if len(keep) == left_n:
            return (left_columns, left_n)
        return (
            tuple(list(map(column.__getitem__, keep)) for column in left_columns),
            len(keep),
        )

    return run


def _compile_select(node: SelectNode) -> Callable[[_Ctx], Batch]:
    child_fn = _compile_batch(node.child)
    out_width = len(node.variables)
    positions = {v: i for i, v in enumerate(node.child.variables)}
    from repro.logic.terms import Constant

    checks = []
    for comparison in node.comparisons:
        left = comparison.left
        right = comparison.right
        left_spec = (
            ("const", left.value)
            if isinstance(left, Constant)
            else ("col", positions[left])
        )
        right_spec = (
            ("const", right.value)
            if isinstance(right, Constant)
            else ("col", positions[right])
        )
        checks.append((left_spec, right_spec, comparison.negated))

    def run(ctx: _Ctx) -> Batch:
        columns, n = child_fn(ctx)
        if not n:
            return (columns, n)
        intern = ctx.encoder.intern
        keep: list[int] | None = None  # None = all rows survive so far
        for left_spec, right_spec, negated in checks:
            left_kind, left_payload = left_spec
            right_kind, right_payload = right_spec
            if left_kind == "const" and right_kind == "const":
                holds = (left_payload == right_payload) != negated
                if not holds:
                    return _empty(out_width)
                continue
            if left_kind == "const" or right_kind == "const":
                if left_kind == "const":
                    value_id = intern(left_payload)
                    column = columns[right_payload]
                else:
                    value_id = intern(right_payload)
                    column = columns[left_payload]
                if negated:
                    if keep is None:
                        keep = [i for i, v in enumerate(column) if v != value_id]
                    else:
                        keep = [i for i in keep if column[i] != value_id]
                else:
                    if keep is None:
                        keep = [i for i, v in enumerate(column) if v == value_id]
                    else:
                        keep = [i for i in keep if column[i] == value_id]
            else:
                left_column = columns[left_payload]
                right_column = columns[right_payload]
                if negated:
                    if keep is None:
                        keep = [
                            i
                            for i, v in enumerate(left_column)
                            if v != right_column[i]
                        ]
                    else:
                        keep = [i for i in keep if left_column[i] != right_column[i]]
                else:
                    if keep is None:
                        keep = [
                            i
                            for i, v in enumerate(left_column)
                            if v == right_column[i]
                        ]
                    else:
                        keep = [i for i in keep if left_column[i] == right_column[i]]
            if not keep:
                return _empty(out_width)
        if keep is None or len(keep) == n:
            return (columns, n)
        return (
            tuple(list(map(column.__getitem__, keep)) for column in columns),
            len(keep),
        )

    return run


def _compile_extend(node: ExtendNode) -> Callable[[_Ctx], Batch]:
    child_fn = _compile_batch(node.child)
    if node.source is None:
        constant = node.constant

        def run_const(ctx: _Ctx) -> Batch:
            columns, n = child_fn(ctx)
            return (columns + ([ctx.encoder.intern(constant)] * n,), n)

        return run_const
    source_index = node._source_index

    def run_copy(ctx: _Ctx) -> Batch:
        columns, n = child_fn(ctx)
        return (columns + (columns[source_index],), n)

    return run_copy


def _compile_project(node: ProjectNode) -> Callable[[_Ctx], Batch]:
    rows_fn = _compile_project_rows(node)
    width = len(node.variables)

    def run(ctx: _Ctx) -> Batch:
        return _unzip(rows_fn(ctx), width)

    return run


def _compile_union(node: UnionNode) -> Callable[[_Ctx], Batch]:
    rows_fn = _compile_union_rows(node)
    width = len(node.variables)

    def run(ctx: _Ctx) -> Batch:
        return _unzip(rows_fn(ctx), width)

    return run


def _compile_batch(node: PlanNode) -> Callable[[_Ctx], Batch]:
    """Compile one plan node to a batch-producing closure."""
    if isinstance(node, ScanNode):
        return _compile_scan(node)
    if isinstance(node, JoinNode):
        return _compile_join(node)
    if isinstance(node, AntiJoinNode):
        return _compile_anti_join(node)
    if isinstance(node, SelectNode):
        return _compile_select(node)
    if isinstance(node, ExtendNode):
        return _compile_extend(node)
    if isinstance(node, ProjectNode):
        return _compile_project(node)
    if isinstance(node, UnionNode):
        return _compile_union(node)
    if isinstance(node, RenameNode):
        return _compile_batch(node.child)
    if isinstance(node, RowsNode):
        raw_rows = node._rows
        width = len(node.variables)

        def run_rows(ctx: _Ctx) -> Batch:
            intern_row = ctx.encoder.intern_row
            encoded = [intern_row(row) for row in raw_rows]
            return _unzip(set(encoded), width)

        return run_rows
    if isinstance(node, UnitNode):
        return lambda ctx: ((), 1)
    if isinstance(node, EmptyNode):
        width = len(node.variables)
        return lambda ctx: _empty(width)
    raise _UnsupportedNode(type(node).__name__)


# -- rows-mode compilation (dedup boundaries and the plan root) --------------


def _compile_project_rows(node: ProjectNode) -> Callable[[_Ctx], set]:
    child_fn = _compile_batch(node.child)
    positions = node._positions

    def run(ctx: _Ctx) -> set[tuple[int, ...]]:
        columns, n = child_fn(ctx)
        if not n:
            return set()
        if not positions:
            return {()}
        if len(positions) == 1:
            column = columns[positions[0]]
            return {(value,) for value in column}
        return set(zip(*(columns[p] for p in positions)))

    return run


def _compile_union_rows(node: UnionNode) -> Callable[[_Ctx], set]:
    part_fns = tuple(_compile_rows(part) for part in node.parts)

    def run(ctx: _Ctx) -> set[tuple[int, ...]]:
        out: set[tuple[int, ...]] = set()
        for part_fn in part_fns:
            out |= part_fn(ctx)
        return out

    return run


def _compile_rows(node: PlanNode) -> Callable[[_Ctx], set]:
    """Compile one plan node to a closure producing a deduplicated row set."""
    if isinstance(node, ProjectNode):
        return _compile_project_rows(node)
    if isinstance(node, UnionNode):
        return _compile_union_rows(node)
    if isinstance(node, RenameNode):
        return _compile_rows(node.child)
    batch_fn = _compile_batch(node)

    def run(ctx: _Ctx) -> set[tuple[int, ...]]:
        return _rows_of(batch_fn(ctx))

    return run


class _UnsupportedNode(Exception):
    """An operator type the kernel does not know (future plan extensions)."""


class VectorKernel:
    """A plan compiled for columnar execution over encoded instances."""

    __slots__ = ("plan", "_run")

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        self._run = _compile_rows(plan.root)

    def execute(
        self,
        encoder: DictionaryEncoder,
        instance: Instance,
        overrides: EncodedOverrides | None = None,
    ) -> frozenset[tuple[int, ...]]:
        """Run the kernel and return the *encoded* answer set."""
        ctx = _Ctx(encoder, instance, overrides or _EMPTY_OVERRIDES)
        return frozenset(self._run(ctx))

    def execute_raw(
        self,
        encoder: DictionaryEncoder,
        instance: Instance,
        overrides: EncodedOverrides | None = None,
    ) -> set:
        """Like :meth:`execute` but returns the kernel's mutable row set.

        Used by the decode boundary of :meth:`QueryPlan.execute`, which
        consumes the set immediately and so can skip the frozenset copy.
        """
        ctx = _Ctx(encoder, instance, overrides or _EMPTY_OVERRIDES)
        return self._run(ctx)


def vectorize(plan: QueryPlan) -> VectorKernel | None:
    """Compile ``plan`` for the columnar backend, or ``None`` if unsupported."""
    try:
        return VectorKernel(plan)
    except _UnsupportedNode:
        return None
