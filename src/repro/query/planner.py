"""The planner: compile CQ / UCQ / safe FO queries into :class:`QueryPlan` s.

The planner covers exactly the *range-restricted* (safe) queries: every head
variable and every variable used in a comparison must be bound by a relation
atom or forced through a chain of equalities to a constant or an atom-bound
variable, and every negated sub-formula's free variables must be bound by the
positive part it is conjoined with.  For those queries the plan computes the
same answers as the naive evaluators of :mod:`repro.logic.cq` and
:mod:`repro.logic.fo` at join-size cost instead of ``domain ** arity``.

Genuinely unsafe queries -- the ones whose answers really do depend on the
active domain, such as ``ans(x) :- x != 'a'`` -- are rejected by returning
``None``; callers fall back to the naive active-domain evaluators, which stay
in the tree as the executable specification (and as the oracle for the
differential tests).

Plans are cached on the query object itself (queries are immutable), so the
engine's memoized expansions, the Datalog fixpoint rounds and the analysis
loops all plan once and execute many times.

The planner is backend-agnostic: the plan trees it produces are executed
either by the row backend (each node's ``rows`` method) or, on instances
carrying a dictionary encoding, by the vectorized columnar kernel of
:mod:`repro.query.vectorized`, which compiles the same tree once per plan
(:meth:`QueryPlan.vector_kernel`).  Nothing here changes per backend -- the
backend seam lives entirely in :meth:`QueryPlan.execute`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.logic.cq import (
    Comparison,
    ConjunctiveQuery,
    RelationAtom,
    UnionOfConjunctiveQueries,
)
from repro.logic.fo import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Formula,
    FormulaQuery,
    Not,
    Or,
    Rel,
    TrueFormula,
)
from repro.logic.terms import Constant, Term, Variable
from repro.query.plan import (
    AntiJoinNode,
    EmptyNode,
    ExtendNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    RenameNode,
    RowsNode,
    ScanNode,
    SelectNode,
    UnionNode,
    UnitNode,
)
from repro.relational.domain import DataValue

#: Cache attribute stored on query objects ("planned once, executed many").
_CACHE_ATTR = "_repro_query_plan"


class _Unplannable:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unplannable>"

    def __reduce__(self):
        # plan_query compares by identity; a pickled query object (the
        # parallel executor ships compiled plans, caches and all, across the
        # process boundary) must deserialize back to the one sentinel.
        return (_unplannable, ())


def _unplannable() -> "_Unplannable":
    return _UNPLANNABLE


_UNPLANNABLE = _Unplannable()


def plan_query(query) -> QueryPlan | None:
    """Plan a query, caching the result on the query object.

    Returns ``None`` when the query is not range-restricted (callers should
    fall back to the query's naive active-domain evaluator).
    """
    cached = getattr(query, _CACHE_ATTR, None)
    if cached is None:
        cached = _build_plan(query)
        if cached is None:
            cached = _UNPLANNABLE
        try:
            setattr(query, _CACHE_ATTR, cached)
        except AttributeError:  # slotted or frozen query types: just re-plan
            pass
    return None if cached is _UNPLANNABLE else cached


def _build_plan(query) -> QueryPlan | None:
    if isinstance(query, ConjunctiveQuery):
        return plan_cq(query)
    if isinstance(query, UnionOfConjunctiveQueries):
        return plan_ucq(query)
    if isinstance(query, FormulaQuery):
        if query.formula.uses_fixpoint():
            return None
        return plan_formula_query(query)
    return None


# ---------------------------------------------------------------------------
# Conjunctive queries.
# ---------------------------------------------------------------------------


def plan_cq(query: ConjunctiveQuery) -> QueryPlan | None:
    """Compile a CQ into scans, hash joins, selections and extensions."""
    head = query.head
    atoms = query.atoms
    comparisons = query.comparisons
    requirements = _requirements(atoms)

    # Equality classes drive both constant pushdown and variable binding.
    classes = query.equality_classes()
    var_constant: dict[Variable, DataValue] = {}
    var_members: dict[Variable, frozenset] = {}
    for members in classes.values():
        constants = {m.value for m in members if isinstance(m, Constant)}
        if len(constants) > 1:
            # Contradictory equalities: the answer is empty on every instance.
            return QueryPlan(EmptyNode(head), head, requirements)
        constant = next(iter(constants)) if constants else None
        member_set = frozenset(members)
        for member in members:
            if isinstance(member, Variable):
                if constant is not None:
                    var_constant[member] = constant
                var_members[member] = member_set

    atom_variables: set[Variable] = set()
    for atom in atoms:
        atom_variables.update(atom.variables())

    # Safety: head and comparison variables must be atom-bound or forced.
    needed: list[Variable] = []
    seen: set[Variable] = set()
    for variable in tuple(head) + tuple(
        v for comparison in comparisons for v in comparison.variables()
    ):
        if variable not in seen:
            seen.add(variable)
            needed.append(variable)
    for variable in needed:
        if variable in atom_variables or variable in var_constant:
            continue
        members = var_members.get(variable, frozenset({variable}))
        if not any(isinstance(m, Variable) and m in atom_variables for m in members):
            return None  # genuinely unsafe: fall back to active-domain semantics

    # Greedy join order over the atoms, most selective first.
    node, pending = _join_atoms(atoms, var_constant, comparisons)

    # Bind the remaining needed variables via equality propagation.
    for variable in sorted((v for v in needed), key=lambda v: v.name):
        if variable in node.variables:
            continue
        constant = var_constant.get(variable)
        if constant is not None:
            node = ExtendNode(node, variable, constant=constant)
        else:
            source = next(
                m
                for m in sorted(
                    (m for m in var_members[variable] if isinstance(m, Variable)),
                    key=lambda v: v.name,
                )
                if m in node.variables
            )
            node = ExtendNode(node, variable, source=source)
        node, pending = _attach_ready(node, pending)
    if pending:
        return None  # defensive: every comparison variable should be bound now
    return QueryPlan(ProjectNode(node, head), head, requirements)


def _requirements(atoms: Sequence[RelationAtom]) -> tuple[tuple[str, int], ...]:
    seen: dict[tuple[str, int], None] = {}
    for atom in atoms:
        seen[(atom.relation, atom.arity)] = None
    return tuple(seen)


def _join_atoms(
    atoms: Sequence[RelationAtom],
    forced: Mapping[Variable, DataValue],
    comparisons: Sequence[Comparison],
) -> tuple[PlanNode, list[Comparison]]:
    """Greedily join the atoms; returns the plan and the still-pending comparisons.

    Selectivity heuristic (no per-instance statistics at plan time): prefer
    atoms with more pinned positions (constants or equality-forced variables),
    then atoms sharing more variables with what is already joined, breaking
    ties towards fewer fresh variables and declaration order.
    """
    if not atoms:
        return _attach_ready(UnitNode(), list(comparisons))

    def scan(atom: RelationAtom) -> ScanNode:
        atom_forced = {
            term: forced[term]
            for term in atom.terms
            if isinstance(term, Variable) and term in forced
        }
        return ScanNode(atom.relation, atom.terms, atom_forced)

    pending = list(comparisons)

    def attach(node: PlanNode) -> PlanNode:
        nonlocal pending
        node, pending = _attach_ready(node, pending)
        return node

    node = _greedy_join([scan(atom) for atom in atoms], after_step=attach)
    return node, pending


def _pinned_positions(node: PlanNode) -> int:
    """How many scan positions are pinned to a constant (selectivity proxy)."""
    return len(node._expected) if isinstance(node, ScanNode) else 0


def _greedy_join(parts: Sequence[PlanNode], after_step=None) -> PlanNode:
    """Left-deep greedy join over sub-plans, most selective first.

    The plan-time heuristic (no per-instance statistics): start from the part
    with the most pinned positions, then repeatedly join the part sharing the
    most variables with what is already joined, breaking ties towards more
    pins, fewer fresh variables and declaration order.  ``after_step`` (used
    to attach ready comparisons early) rewraps the plan after every step.
    """
    remaining = list(range(len(parts)))
    first = max(
        remaining, key=lambda i: (_pinned_positions(parts[i]), -len(parts[i].variables), -i)
    )
    remaining.remove(first)
    node = parts[first]
    if after_step is not None:
        node = after_step(node)
    while remaining:
        bound = set(node.variables)
        best = max(
            remaining,
            key=lambda i: (
                len(set(parts[i].variables) & bound),
                _pinned_positions(parts[i]),
                -len(set(parts[i].variables) - bound),
                -i,
            ),
        )
        remaining.remove(best)
        node = JoinNode(node, parts[best])
        if after_step is not None:
            node = after_step(node)
    return node


def _attach_ready(
    node: PlanNode,
    pending: list[Comparison],
) -> tuple[PlanNode, list[Comparison]]:
    """Attach every pending comparison whose variables are bound by ``node``."""
    bound = set(node.variables)
    ready = [c for c in pending if set(c.variables()) <= bound]
    if ready:
        node = SelectNode(node, ready)
        pending = [c for c in pending if c not in ready]
    return node, pending


def plan_ucq(query: UnionOfConjunctiveQueries) -> QueryPlan | None:
    """Compile a UCQ as the union of its disjunct plans."""
    head = query.head
    parts: list[PlanNode] = []
    for disjunct in query.disjuncts:
        plan = plan_query(disjunct)
        if plan is None:
            return None
        parts.append(RenameNode(plan.root, head))
    return QueryPlan(UnionNode(parts), head)


# ---------------------------------------------------------------------------
# First-order formulas (the safe / range-restricted fragment).
# ---------------------------------------------------------------------------


def plan_formula_query(query: FormulaQuery) -> QueryPlan | None:
    """Compile a safe FO query; ``None`` when the formula escapes the fragment."""
    node = plan_formula(query.formula)
    if node is None:
        return None
    if not set(query.head) <= set(node.variables):
        # A head variable not free in the formula ranges over the active
        # domain under the naive semantics: genuinely unsafe.
        return None
    return QueryPlan(ProjectNode(node, query.head), query.head)


def plan_formula(formula: Formula) -> PlanNode | None:
    """Plan one sub-formula; output columns are exactly its free variables."""
    if isinstance(formula, TrueFormula):
        return UnitNode()
    if isinstance(formula, FalseFormula):
        return EmptyNode(())
    if isinstance(formula, Rel):
        return ScanNode(formula.relation, formula.terms)
    if isinstance(formula, Eq):
        return _plan_eq(formula)
    if isinstance(formula, And):
        return _plan_and(formula)
    if isinstance(formula, Or):
        return _plan_or(formula)
    if isinstance(formula, Exists):
        inner = plan_formula(formula.operand)
        if inner is None:
            return None
        keep = tuple(v for v in inner.variables if v not in formula.variables)
        return ProjectNode(inner, keep)
    # Not (outside a conjunction), Forall, Fixpoint: not range-restricted here.
    return None


def _plan_eq(formula: Eq) -> PlanNode | None:
    left, right = formula.left, formula.right
    if isinstance(left, Constant) and isinstance(right, Constant):
        return UnitNode() if left.value == right.value else EmptyNode(())
    if isinstance(left, Variable) and isinstance(right, Constant):
        return RowsNode((left,), ((right.value,),))
    if isinstance(left, Constant) and isinstance(right, Variable):
        return RowsNode((right,), ((left.value,),))
    return None  # x = y alone ranges over the domain diagonal


def _plan_or(formula: Or) -> PlanNode | None:
    free = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
    if not formula.operands:
        return EmptyNode(free)  # an empty disjunction is false
    parts: list[PlanNode] = []
    for operand in formula.operands:
        node = plan_formula(operand)
        if node is None or set(node.variables) != set(free):
            # A disjunct not covering every free variable would have to be
            # cylindrified over the active domain: fall back.
            return None
        parts.append(ProjectNode(node, free))
    return UnionNode(parts)


def _plan_and(formula: And) -> PlanNode | None:
    free = tuple(sorted(formula.free_variables(), key=lambda v: v.name))

    positives: list[Formula] = []
    equalities: list[tuple[Term, Term, bool]] = []  # (left, right, negated)
    negatives: list[Formula] = []
    stack = list(formula.operands)
    while stack:
        operand = stack.pop(0)
        if isinstance(operand, TrueFormula):
            continue
        if isinstance(operand, FalseFormula):
            return EmptyNode(free)
        if isinstance(operand, And):
            stack = list(operand.operands) + stack
            continue
        if isinstance(operand, Eq):
            equalities.append((operand.left, operand.right, False))
            continue
        if isinstance(operand, Not):
            inner = operand.operand
            if isinstance(inner, Eq):
                equalities.append((inner.left, inner.right, True))
            else:
                negatives.append(inner)
            continue
        positives.append(operand)

    # Constants forced by ``x = 'c'`` conjuncts are pushed into direct scans.
    forced: dict[Variable, DataValue] = {}
    for left, right, negated in equalities:
        if negated:
            continue
        if isinstance(left, Variable) and isinstance(right, Constant):
            variable, value = left, right.value
        elif isinstance(right, Variable) and isinstance(left, Constant):
            variable, value = right, left.value
        else:
            continue
        if variable in forced and forced[variable] != value:
            return EmptyNode(free)
        forced[variable] = value

    parts: list[PlanNode] = []
    for operand in positives:
        if isinstance(operand, Rel):
            atom_forced = {
                term: forced[term]
                for term in operand.terms
                if isinstance(term, Variable) and term in forced
            }
            parts.append(ScanNode(operand.relation, operand.terms, atom_forced))
        else:
            node = plan_formula(operand)
            if node is None:
                return None
            parts.append(node)

    negative_nodes: list[PlanNode] = []
    for operand in negatives:
        node = plan_formula(operand)
        if node is None:
            return None
        negative_nodes.append(node)

    # Greedy join of the positive parts, most pinned / most connected first.
    node: PlanNode = _greedy_join(parts) if parts else UnitNode()

    # Apply equalities (selects / extensions) and negations (anti-joins) as
    # soon as their variables are bound; loop until nothing else applies.
    pending_eq = list(equalities)
    pending_neg = list(negative_nodes)
    progress = True
    while progress and (pending_eq or pending_neg):
        progress = False
        still_eq: list[tuple[Term, Term, bool]] = []
        for left, right, negated in pending_eq:
            bound = set(node.variables)
            left_ok = isinstance(left, Constant) or left in bound
            right_ok = isinstance(right, Constant) or right in bound
            if left_ok and right_ok:
                node = SelectNode(node, (Comparison(left, right, negated),))
                progress = True
            elif not negated and left_ok and isinstance(right, Variable):
                node = (
                    ExtendNode(node, right, constant=left.value)
                    if isinstance(left, Constant)
                    else ExtendNode(node, right, source=left)
                )
                progress = True
            elif not negated and right_ok and isinstance(left, Variable):
                node = (
                    ExtendNode(node, left, constant=right.value)
                    if isinstance(right, Constant)
                    else ExtendNode(node, left, source=right)
                )
                progress = True
            else:
                still_eq.append((left, right, negated))
        pending_eq = still_eq
        still_neg: list[PlanNode] = []
        for negative in pending_neg:
            if set(negative.variables) <= set(node.variables):
                node = AntiJoinNode(node, negative)
                progress = True
            else:
                still_neg.append(negative)
        pending_neg = still_neg
    if pending_eq or pending_neg:
        return None
    if set(node.variables) != set(free):
        return None
    return node
