"""Delta-driven maintenance of compiled query plans.

Given a :class:`~repro.query.plan.QueryPlan` and an instance
:class:`~repro.relational.delta.Delta`, this module computes the exact change
in the plan's answer set without re-enumerating the unchanged answers, by the
same per-occurrence device the semi-naive Datalog evaluator of PR 2 uses:

* for every occurrence of a changed relation in the plan, a **delta variant**
  is derived in which that one scan reads the changed tuples through the plan
  ``overrides`` channel while every other scan reads the instance;
* **insertions** run the variants against the *updated* instance -- every
  genuinely new answer uses at least one inserted tuple at some occurrence,
  and monotonicity keeps the union of variant answers inside the new answer
  set, so ``added = variants(new) - prev_answers`` is exact;
* **deletions** run the variants against the *old* instance, which
  over-approximates the removals (a candidate may have an alternative
  derivation); the candidates are then re-derived against the updated
  instance, DRed-style.

Plans containing an anti-join (safe FO negation) are not monotone, so they
fall back to recomputation -- the fallback is flagged by
:meth:`QueryPlan.delta_strategy` and in :meth:`QueryPlan.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.terms import Variable
from repro.query.plan import (
    AntiJoinNode,
    ExtendNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    RenameNode,
    ScanNode,
    SelectNode,
    UnionNode,
)
from repro.relational.domain import DataValue
from repro.relational.instance import Instance

#: Base name of the override relation a delta variant's distinguished scan
#: reads; underscores are appended until it collides with no scanned relation.
DELTA_SCAN_NAME = "__delta__"


@dataclass(frozen=True)
class QueryDelta:
    """The exact change in a plan's answers under an instance delta.

    ``strategy`` records how the change was computed: ``"none"`` (the delta
    does not touch the plan's relations), ``"delta"`` (insert-only,
    per-occurrence delta plans), ``"delta+rederive"`` (deletions
    over-approximated and re-derived) or ``"recompute"`` (non-monotone
    fallback).
    """

    added: frozenset[tuple[DataValue, ...]]
    removed: frozenset[tuple[DataValue, ...]]
    strategy: str

    def is_empty(self) -> bool:
        """True when the answers did not change."""
        return not self.added and not self.removed

    def apply(
        self, answers: frozenset[tuple[DataValue, ...]]
    ) -> frozenset[tuple[DataValue, ...]]:
        """The maintained answer set: ``(answers - removed) | added``."""
        return frozenset((answers - self.removed) | self.added)


_NO_CHANGE = QueryDelta(frozenset(), frozenset(), "none")


def replace_scan(node: PlanNode, target: ScanNode, replacement: ScanNode) -> PlanNode:
    """Rebuild the plan tree with one scan occurrence swapped out.

    Nodes off the spine from the root to ``target`` are shared with the
    original plan; spine nodes are reconstructed through their public
    constructors, which recompute the derived join keys and accessors.
    """
    if node is target:
        return replacement
    kids = node.children()
    if not kids:
        return node
    rebuilt = tuple(replace_scan(kid, target, replacement) for kid in kids)
    if all(new is old for new, old in zip(rebuilt, kids)):
        return node
    return _rebuild_node(node, rebuilt)


def _rebuild_node(node: PlanNode, kids: tuple[PlanNode, ...]) -> PlanNode:
    if isinstance(node, JoinNode):
        return JoinNode(kids[0], kids[1])
    if isinstance(node, AntiJoinNode):
        return AntiJoinNode(kids[0], kids[1])
    if isinstance(node, SelectNode):
        return SelectNode(kids[0], node.comparisons)
    if isinstance(node, ExtendNode):
        return ExtendNode(
            kids[0], node.variable, constant=node.constant, source=node.source
        )
    if isinstance(node, RenameNode):
        return RenameNode(kids[0], node.variables)
    if isinstance(node, ProjectNode):
        return ProjectNode(kids[0], node.variables)
    if isinstance(node, UnionNode):
        return UnionNode(kids)
    raise TypeError(f"cannot rebuild plan node {type(node).__name__}")  # pragma: no cover


class RegisterWitness:
    """Projects the tuples one watched scan contributes to changed derivations.

    Built from a delta variant: executing :attr:`plan` with the delta
    override (and the watched relations overridden by a candidate tuple
    pool) yields the bindings of the watched scan's variables in every
    derivation using a changed tuple; :meth:`tuples` rebuilds the full
    scanned tuples (re-inserting pinned constants), i.e. exactly the pool
    tuples that can participate in an answer change.
    """

    __slots__ = ("plan", "_spec")

    def __init__(self, plan: QueryPlan, scan: ScanNode) -> None:
        self.plan = plan
        positions = {variable: i for i, variable in enumerate(plan.head)}
        spec: list[tuple[bool, object]] = []
        for term in scan.terms:
            if isinstance(term, Variable):
                spec.append((True, positions[term]))
            else:
                spec.append((False, term.value))
        self._spec = tuple(spec)

    def tuples(self, instance: Instance, overrides) -> set[tuple[DataValue, ...]]:
        """The full watched-scan tuples occurring in changed derivations."""
        spec = self._spec
        return {
            tuple(row[payload] if is_variable else payload for is_variable, payload in spec)
            for row in self.plan.execute(instance, overrides)
        }

    def tuples_encoded(self, encoder, instance: Instance, overrides) -> set:
        """Encoded-space :meth:`tuples`: integer rows in, integer tuples out.

        ``overrides`` maps relation names to sets of *encoded* rows (the
        engine's register pools and delta change sets); pinned constants
        from the watched scan are interned so the rebuilt tuples compare
        directly against encoded register contents.
        """
        spec = self._spec
        intern = encoder.intern
        return {
            tuple(
                row[payload] if is_variable else intern(payload)
                for is_variable, payload in spec
            )
            for row in self.plan.execute_encoded(instance, overrides)
        }


def _witness_specs(
    variant: QueryPlan, watch: frozenset[str]
) -> tuple[RegisterWitness, ...] | None:
    """Witness projections for every watched scan of one delta variant.

    Returns ``()`` when the variant reads no watched relation (its answers
    change uniformly, independent of the watched content), or ``None`` when
    a watched scan's variables are not all bound at the pre-projection root
    (an inner projection -- e.g. an FO existential -- discarded them), in
    which case callers must fall back to per-candidate evaluation.
    """
    root = variant.root
    base = root.child if isinstance(root, ProjectNode) else root
    scans = [
        node
        for node in variant.walk()
        if isinstance(node, ScanNode) and node.relation in watch
    ]
    if not scans:
        return ()
    bound = set(base.variables)
    witnesses = []
    for scan in scans:
        if not set(scan.variables) <= bound:
            return None
        plan = QueryPlan(
            ProjectNode(base, scan.variables), scan.variables, variant.requirements
        )
        witnesses.append(RegisterWitness(plan, scan))
    return tuple(witnesses)


#: Sentinel: witness plans not derived yet for a watch set (vs a failed ``None``).
_WITNESSES_UNBUILT = object()


class DeltaPlan:
    """Per-:class:`QueryPlan` incremental machinery, built once and cached.

    Holds the scanned-relation index, the monotonicity verdict and (for
    monotone plans) one derived :class:`QueryPlan` per occurrence of each
    scanned relation, with that occurrence redirected to the delta override.
    """

    __slots__ = ("plan", "relations", "monotone", "delta_name", "variants", "_witnesses")

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        scans: dict[str, list[ScanNode]] = {}
        monotone = True
        for node in plan.walk():
            if isinstance(node, AntiJoinNode):
                monotone = False
            if isinstance(node, ScanNode):
                scans.setdefault(node.relation, []).append(node)
        self.relations = frozenset(scans)
        self.monotone = monotone
        name = DELTA_SCAN_NAME
        while name in self.relations:
            name += "_"
        self.delta_name = name
        self._witnesses: dict[frozenset[str], dict | None] = {}
        self.variants: dict[str, tuple[QueryPlan, ...]] = {}
        if monotone:
            for relation, occurrences in scans.items():
                self.variants[relation] = tuple(
                    QueryPlan(
                        replace_scan(
                            plan.root, scan, ScanNode(name, scan.terms, scan.forced)
                        ),
                        plan.head,
                        plan.requirements,
                    )
                    for scan in occurrences
                )

    def register_witnesses(
        self, watch: frozenset[str]
    ) -> dict[str, tuple[tuple[QueryPlan, tuple[RegisterWitness, ...]], ...]] | None:
        """Per changed-relation variant, the watched-scan witness projections.

        ``watch`` is the set of relation names to witness (the publishing
        engine watches the two register names its overlay shadows).  Returns
        a mapping from each scanned relation to ``(variant, witnesses)``
        pairs -- ``witnesses`` being ``()`` for variants independent of the
        watched relations -- or ``None`` when some variant cannot be
        witnessed (see :func:`_witness_specs`).  Cached per watch set.
        """
        cached = self._witnesses.get(watch, _WITNESSES_UNBUILT)
        if cached is _WITNESSES_UNBUILT:
            cached = self._build_witnesses(watch)
            self._witnesses[watch] = cached
        return cached

    def _build_witnesses(self, watch: frozenset[str]) -> dict | None:
        built: dict[str, tuple] = {}
        for relation, variants in self.variants.items():
            entries = []
            for variant in variants:
                specs = _witness_specs(variant, watch)
                if specs is None:
                    return None
                entries.append((variant, specs))
            built[relation] = tuple(entries)
        return built

    def execute_delta(
        self,
        instance: Instance,
        delta,
        *,
        prev_answers: frozenset[tuple[DataValue, ...]] | None = None,
        new_instance: Instance | None = None,
    ) -> QueryDelta:
        """See :meth:`QueryPlan.execute_delta`."""
        delta = delta.normalized(instance)
        touched = delta.touched_relations() & self.relations
        if not touched:
            return _NO_CHANGE
        plan = self.plan
        if new_instance is None:
            new_instance = instance.apply_delta(delta)
        if prev_answers is None:
            prev_answers = plan.execute(instance)
        if not self.monotone:
            new_answers = plan.execute(new_instance)
            return QueryDelta(
                new_answers - prev_answers, prev_answers - new_answers, "recompute"
            )
        name = self.delta_name
        added_rows: set[tuple[DataValue, ...]] = set()
        for relation in touched:
            inserted = delta.inserted_into(relation)
            if not inserted:
                continue
            for variant in self.variants[relation]:
                added_rows |= variant.execute(new_instance, {name: inserted})
        added = frozenset(added_rows) - prev_answers

        candidates: set[tuple[DataValue, ...]] = set()
        for relation in touched:
            deleted = delta.deleted_from(relation)
            if not deleted:
                continue
            for variant in self.variants[relation]:
                candidates |= variant.execute(instance, {name: deleted})
        candidates &= prev_answers
        if not candidates:
            return QueryDelta(added, frozenset(), "delta")
        # DRed-style rederivation: a candidate survives when it is still
        # derivable from the updated instance through another derivation.
        new_answers = plan.execute(new_instance)
        removed = frozenset(row for row in candidates if row not in new_answers)
        return QueryDelta(added, removed, "delta+rederive")
