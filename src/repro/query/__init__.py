"""repro.query -- the set-at-a-time query planner shared across layers.

One :class:`QueryPlan` API serves every consumer of relational queries:

* the engine's per-rule evaluators (:mod:`repro.engine.plan`) pre-plan each
  rule query at compile time;
* :meth:`ConjunctiveQuery.evaluate` and :meth:`FormulaQuery.evaluate` plan
  range-restricted queries transparently and fall back to the naive
  active-domain evaluators only for genuinely unsafe formulas;
* the semi-naive Datalog evaluator (:mod:`repro.datalog.evaluation`) feeds
  per-round deltas into plans through the ``overrides`` channel;
* the static analyses reuse plans when re-evaluating rule queries in loops;
* incremental view maintenance (:mod:`repro.incremental`) turns instance
  deltas into exact answer changes via :meth:`QueryPlan.execute_delta`
  (:mod:`repro.query.delta`).

Entry points: :func:`plan_query` (plan or ``None`` for unsafe queries),
:meth:`QueryPlan.execute` / :meth:`QueryPlan.explain`, and
:meth:`QueryPlan.execute_delta` for delta-driven maintenance.

Two execution backends serve one plan language: the row backend (each
operator's ``rows`` method) and the columnar kernel of
:mod:`repro.query.vectorized`, which engages whenever the instance carries a
dictionary encoding (:func:`repro.relational.columnar.ensure_encoded`);
:meth:`QueryPlan.execute_encoded` keeps answers in integer space for
callers -- the publishing engine, the Datalog fixpoint -- that decode only
at the output boundary.
"""

from repro.query.delta import DeltaPlan, QueryDelta
from repro.query.plan import (
    AntiJoinNode,
    EmptyNode,
    ExtendNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    RenameNode,
    RowsNode,
    ScanNode,
    SelectNode,
    UnionNode,
    UnitNode,
)
from repro.query.planner import (
    plan_cq,
    plan_formula,
    plan_formula_query,
    plan_query,
    plan_ucq,
)
from repro.query.vectorized import VectorKernel, vectorize

__all__ = [
    "AntiJoinNode",
    "DeltaPlan",
    "EmptyNode",
    "ExtendNode",
    "JoinNode",
    "PlanNode",
    "ProjectNode",
    "QueryDelta",
    "QueryPlan",
    "RenameNode",
    "RowsNode",
    "ScanNode",
    "SelectNode",
    "UnionNode",
    "UnitNode",
    "VectorKernel",
    "plan_cq",
    "plan_formula",
    "plan_formula_query",
    "plan_query",
    "plan_ucq",
    "vectorize",
]
