"""Executable lower-bound reductions from the proofs of Section 5.

The hardness directions of Proposition 2 and Theorems 1-2 are constructive
reductions; implementing them serves two purposes: they document the proofs as
running code, and they provide adversarial inputs for the decision procedures
(e.g. the NP-hardness gadget of the emptiness problem turns any 3SAT instance
into a transducer whose emptiness check solves the formula).

Implemented gadgets:

* :func:`fo_equivalence_membership_gadget`, :func:`fo_equivalence_emptiness_gadget`
  and :func:`fo_equivalence_equivalence_gadget` -- Proposition 2's reductions
  from FO query equivalence (transducers in ``PTnr(FO, tuple, normal)``);
* :func:`three_sat_emptiness_gadget` -- Theorem 1(1)'s reduction from 3SAT to
  emptiness of ``PT(CQ, tuple, virtual)``;
* :func:`exists_forall_sat_membership_gadget` -- Theorem 1(2)'s reduction from
  ∃*∀*-3SAT to membership of ``PT(CQ, tuple, normal)``;
* :class:`TwoRegisterMachine` and :func:`two_register_machine_gadget` --
  Theorem 1(3)'s reduction from 2RM halting to (in)equivalence of recursive
  ``PT(CQ, tuple, normal)`` transducers (construction of the two machines'
  simulating transducers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.logic.builders import cq_to_formula
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality, inequality
from repro.logic.fo import And, Eq, Exists, Formula, FormulaQuery, Not, Or, Rel
from repro.logic.terms import Constant, Variable
from repro.xmltree.tree import TreeNode, tree

# ---------------------------------------------------------------------------
# 3SAT instances.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A literal of a CNF formula: a variable index and a polarity."""

    variable: int
    positive: bool = True

    def __str__(self) -> str:
        return f"x{self.variable}" if self.positive else f"!x{self.variable}"


@dataclass(frozen=True)
class CnfFormula:
    """A CNF formula over variables ``x0 .. x(num_variables-1)``."""

    num_variables: int
    clauses: tuple[tuple[Literal, ...], ...]

    def is_satisfiable_bruteforce(self) -> bool:
        """Reference satisfiability check by brute force (used only in tests)."""
        for bits in itertools.product((0, 1), repeat=self.num_variables):
            if all(
                any(bits[lit.variable] == (1 if lit.positive else 0) for lit in clause)
                for clause in self.clauses
            ):
                return True
        return False

    def __str__(self) -> str:
        return " & ".join("(" + " | ".join(str(l) for l in clause) + ")" for clause in self.clauses)


def cnf(num_variables: int, clauses: Sequence[Sequence[tuple[int, bool]]]) -> CnfFormula:
    """Terse CNF constructor: clauses are sequences of ``(variable, positive)`` pairs."""
    return CnfFormula(
        num_variables,
        tuple(tuple(Literal(v, p) for v, p in clause) for clause in clauses),
    )


# ---------------------------------------------------------------------------
# Proposition 2: reductions from FO query equivalence.
# ---------------------------------------------------------------------------


def _symmetric_difference_formula(q1: FormulaQuery, q2: FormulaQuery) -> Formula:
    """The FO formula ``(Q1 \\ Q2) ∪ (Q2 \\ Q1)`` over the shared head variables."""
    if q1.head != q2.head:
        raise ValueError("the two queries must share their head variables")
    f1, f2 = q1.formula, q2.formula
    return Or((And((f1, Not(f2))), And((f2, Not(f1)))))


def fo_equivalence_membership_gadget(
    q1: FormulaQuery, q2: FormulaQuery
) -> tuple[PublishingTransducer, TreeNode]:
    """Proposition 2 (membership): ``t0 in tau0(R)`` iff ``Q1 !≡ Q2``."""
    delta = _symmetric_difference_formula(q1, q2)
    x = Variable("_x")
    phi = FormulaQuery((x,), And((Exists(tuple(q1.head), delta) if q1.head else delta, Eq(x, Constant("c")))))
    phi_empty = FormulaQuery((x,), And((Eq(x, Constant("c")), Not(Eq(x, Constant("c"))))))
    rules = [
        TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(phi, 1)),)),
        TransductionRule("q", "a", (RuleItem("q", "a", RuleQuery(phi_empty, 1)),)),
    ]
    transducer = make_transducer(rules, start_state="q0", root_tag="r", name="prop2-membership")
    return transducer, tree("r", "a")


def fo_equivalence_emptiness_gadget(q1: FormulaQuery, q2: FormulaQuery) -> PublishingTransducer:
    """Proposition 2 (emptiness): ``tau1(R) = {r}`` iff ``Q1 ≡ Q2``."""
    delta = _symmetric_difference_formula(q1, q2)
    phi = FormulaQuery(q1.head, delta)
    phi_empty = FormulaQuery(
        (Variable("_x"),),
        And((Eq(Variable("_x"), Constant("c")), Not(Eq(Variable("_x"), Constant("c"))))),
    )
    rules = [
        TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(phi, phi.arity)),)),
        TransductionRule("q", "a", (RuleItem("q", "a", RuleQuery(phi_empty, 1)),)),
    ]
    return make_transducer(rules, start_state="q0", root_tag="r", name="prop2-emptiness")


def fo_equivalence_equivalence_gadget(
    q1: FormulaQuery, q2: FormulaQuery
) -> tuple[PublishingTransducer, PublishingTransducer]:
    """Proposition 2 (equivalence): ``tau_1 ≡ tau_2`` iff ``Q1 ≡ Q2``."""
    transducers = []
    for index, query in enumerate((q1, q2), start=1):
        reg_atoms = (RelationAtom("Reg_a", query.head),)
        text_query = ConjunctiveQuery(query.head, reg_atoms)
        rules = [
            TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(query, query.arity)),)),
            TransductionRule("q", "a", (RuleItem("q", "text", RuleQuery(text_query, text_query.arity)),)),
            TransductionRule("q", "text", ()),
        ]
        transducers.append(
            make_transducer(rules, start_state="q0", root_tag="r", name=f"prop2-equivalence-{index}")
        )
    return transducers[0], transducers[1]


# ---------------------------------------------------------------------------
# Theorem 1(1): 3SAT -> emptiness of PT(CQ, tuple, virtual).
# ---------------------------------------------------------------------------


def three_sat_emptiness_gadget(formula: CnfFormula) -> PublishingTransducer:
    """Build the transducer ``tau_phi`` of Theorem 1(1): non-empty iff ``phi`` satisfiable.

    The source schema has one ``m``-ary relation ``RX`` whose tuples encode
    candidate truth assignments of the ``m`` variables; the transducer copies
    an assignment into a register and threads it through one virtual node per
    clause, each of which only fires when the assignment satisfies its clause;
    after the last clause a normal ``a``-node is emitted.
    """
    m = formula.num_variables
    xs = tuple(Variable(f"x{i}") for i in range(m))

    def clause_queries(clause: tuple[Literal, ...]) -> list[ConjunctiveQuery]:
        queries = []
        satisfying = [
            bits
            for bits in itertools.product((0, 1), repeat=len(clause))
            if any(bit == (1 if lit.positive else 0) for bit, lit in zip(bits, clause))
        ]
        for bits in satisfying:
            comparisons = [
                equality(xs[lit.variable], Constant(bit)) for bit, lit in zip(bits, clause)
            ]
            queries.append(
                ConjunctiveQuery(xs, (RelationAtom("Reg", xs),), tuple(comparisons))
            )
        return queries

    rules = [
        TransductionRule(
            "q0",
            "r",
            (RuleItem("q1", "v1", RuleQuery(ConjunctiveQuery(xs, (RelationAtom("RX", xs),)), m)),),
        )
    ]
    for index, clause in enumerate(formula.clauses, start=1):
        items = tuple(
            RuleItem(f"q{index + 1}", f"v{index + 1}", RuleQuery(query, m))
            for query in clause_queries(clause)
        )
        rules.append(TransductionRule(f"q{index}", f"v{index}", items))
    final_state = f"q{len(formula.clauses) + 1}"
    final_tag = f"v{len(formula.clauses) + 1}"
    rules.append(
        TransductionRule(
            final_state,
            final_tag,
            (RuleItem("qt", "a", RuleQuery(ConjunctiveQuery(xs, (RelationAtom("Reg", xs),)), m)),),
        )
    )
    rules.append(TransductionRule("qt", "a", ()))
    virtual = {f"v{i}" for i in range(1, len(formula.clauses) + 2)}
    return make_transducer(
        rules,
        start_state="q0",
        root_tag="r",
        virtual_tags=virtual,
        name="3sat-emptiness",
    )


def three_sat_witness_instance(formula: CnfFormula, assignment: Sequence[int]):
    """An ``RX`` instance holding one candidate truth assignment (for testing)."""
    from repro.relational.instance import Instance
    from repro.relational.schema import RelationalSchema

    schema = RelationalSchema.from_arities({"RX": formula.num_variables})
    return Instance(schema, {"RX": [tuple(assignment)]})


# ---------------------------------------------------------------------------
# Theorem 1(2): ∃*∀*-3SAT -> membership of PT(CQ, tuple, normal).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExistsForallFormula:
    """A formula ``∃Y ∀Z C1 ∧ ... ∧ Cr`` with literals over ``Y ∪ Z``.

    ``existential`` / ``universal`` give the number of Y- and Z-variables;
    literals refer to Y-variables by indices ``0 .. existential-1`` and to
    Z-variables by indices ``existential .. existential+universal-1``.
    """

    existential: int
    universal: int
    clauses: tuple[tuple[Literal, ...], ...]

    def evaluate_bruteforce(self) -> bool:
        """Reference evaluation by brute force (used only in tests)."""
        total = self.existential + self.universal
        for y_bits in itertools.product((0, 1), repeat=self.existential):
            if all(
                any(
                    (y_bits + z_bits)[lit.variable] == (1 if lit.positive else 0)
                    for lit in clause
                )
                for z_bits in itertools.product((0, 1), repeat=self.universal)
                for clause in self.clauses
            ):
                return True
        _ = total
        return False


def exists_forall_sat_membership_gadget(
    formula: ExistsForallFormula,
) -> tuple[PublishingTransducer, TreeNode]:
    """Build ``(tau_phi, t_phi)`` of Theorem 1(2): ``t_phi ∈ tau_phi(R)`` iff the formula is true.

    The schema has a unary relation ``RC`` (intended to be exactly ``{0, 1}``)
    and a ternary relation ``ROR`` encoding disjunction.  The target tree
    ``r(b, d)`` forces ``RC`` to be Boolean (no ``c`` child allowed) and
    requires a witness assignment for the existential block (the ``d`` child).
    """
    x = Variable("x")
    ys = tuple(Variable(f"y{i}") for i in range(formula.existential))

    ior = [(0, 0, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)]
    phi1_comparisons = [equality(x, Constant(1))]
    phi1_atoms = [RelationAtom("RC", (Constant(0),)), RelationAtom("RC", (Constant(1),))]
    phi1_atoms += [RelationAtom("ROR", tuple(Constant(v) for v in row)) for row in ior]
    phi1 = ConjunctiveQuery((x,), tuple(phi1_atoms), tuple(phi1_comparisons))

    phi2 = ConjunctiveQuery(
        (x,),
        (RelationAtom("RC", (x,)),),
        (inequality(x, Constant(0)), inequality(x, Constant(1))),
    )

    # psi(Y): the universally quantified clauses, expanded over the (at most 8)
    # truth assignments of each clause's universal variables, encoded with ROR.
    psi_atoms: list[RelationAtom] = []
    fresh = itertools.count()
    for clause in formula.clauses:
        literals = list(clause)[:3]
        universal_positions = [
            i for i, lit in enumerate(literals) if lit.variable >= formula.existential
        ]
        for bits in itertools.product((0, 1), repeat=len(universal_positions)):
            operands = []
            for i, lit in enumerate(literals):
                if i in universal_positions:
                    value = bits[universal_positions.index(i)]
                    truth = value if lit.positive else 1 - value
                    operands.append(Constant(truth))
                else:
                    operands.append(_literal_term(lit, ys, next(fresh), psi_atoms))
            while len(operands) < 3:
                operands.append(Constant(0))
            s = Variable(f"_s{next(fresh)}")
            psi_atoms.append(RelationAtom("ROR", (operands[0], operands[1], s)))
            psi_atoms.append(RelationAtom("ROR", (s, operands[2], Constant(1))))
    phi3_atoms = [RelationAtom("RC", (y,)) for y in ys] + psi_atoms
    phi3 = ConjunctiveQuery((x,), tuple(phi3_atoms), (equality(x, Constant(1)),))

    rules = [
        TransductionRule(
            "q0",
            "r",
            (
                RuleItem("q1", "b", RuleQuery(phi1, 1)),
                RuleItem("q1", "c", RuleQuery(phi2, 1)),
                RuleItem("q1", "d", RuleQuery(phi3, 1)),
            ),
        ),
        TransductionRule("q1", "b", ()),
        TransductionRule("q1", "c", ()),
        TransductionRule("q1", "d", ()),
    ]
    transducer = make_transducer(rules, start_state="q0", root_tag="r", name="e-a-3sat-membership")
    target = tree("r", "b", "d")
    return transducer, target


def _literal_term(lit: Literal, ys, fresh_index: int, psi_atoms: list[RelationAtom]):
    """Encode an existential literal: ``y`` itself or its negation via ROR."""
    y = ys[lit.variable]
    if lit.positive:
        return y
    negated = Variable(f"_n{fresh_index}")
    # negated = 1 - y is encoded through ROR(y, negated, 1) and ROR(y, negated, ...)?
    # ROR encodes disjunction; y OR neg(y) = 1 and y AND neg(y) = 0 cannot both be
    # stated in CQ, so we follow the proof and state ROR(y, negated, 1) together
    # with ROR(negated, y, 1) and inequality y != negated, which over Boolean RC
    # forces negated = 1 - y.
    psi_atoms.append(RelationAtom("ROR", (y, negated, Constant(1))))
    psi_atoms.append(RelationAtom("ROR", (negated, y, Constant(1))))
    return negated


# ---------------------------------------------------------------------------
# Theorem 1(3): two-register machines -> equivalence of PT(CQ, tuple, normal).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoRegisterMachine:
    """A two-register machine: numbered add / subtract instructions.

    Instructions are ``("add", register, next_state)`` or
    ``("sub", register, next_state_if_zero, next_state_otherwise)`` with
    ``register`` in ``{1, 2}``.  State ``0`` is initial; ``halting_state`` is
    the accepting state (with both registers zero).
    """

    instructions: tuple[tuple, ...]
    halting_state: int

    def runs_forever(self, max_steps: int = 10_000) -> bool:
        """Reference simulation: True when no halt within ``max_steps`` steps."""
        state, r1, r2 = 0, 0, 0
        for _ in range(max_steps):
            if state == self.halting_state and r1 == 0 and r2 == 0:
                return False
            if state >= len(self.instructions):
                return True
            instruction = self.instructions[state]
            if instruction[0] == "add":
                _, register, nxt = instruction
                if register == 1:
                    r1 += 1
                else:
                    r2 += 1
                state = nxt
            else:
                _, register, if_zero, otherwise = instruction
                value = r1 if register == 1 else r2
                if value == 0:
                    state = if_zero
                else:
                    if register == 1:
                        r1 -= 1
                    else:
                        r2 -= 1
                    state = otherwise
        return True


def two_register_machine_gadget(
    machine: TwoRegisterMachine,
) -> tuple[PublishingTransducer, PublishingTransducer]:
    """Build the pair ``(tau_1, tau_2)`` of Theorem 1(3).

    The two transducers walk a 6-ary relation ``R`` encoding a candidate run
    of the machine and only differ once a halting configuration is reached
    (and on the key-violation bookkeeping); hence they are equivalent iff the
    machine does not halt.  The construction is returned for inspection and
    for differential testing on concrete run encodings; the general
    equivalence question for this class is of course undecidable.
    """
    prev, nxt = Variable("prev"), Variable("next")
    cs, r1, r2, ns = Variable("cs"), Variable("r1"), Variable("r2"), Variable("ns")
    head = (prev, nxt, cs, r1, r2, ns)

    phi0 = ConjunctiveQuery(
        head,
        (RelationAtom("R", head), RelationAtom("R", (Constant(0), Constant(0), ns, Variable("z1"), Variable("z2"), Variable("z3")))),
        (
            equality(prev, Constant(0)),
            equality(cs, Constant(0)),
            equality(r1, Constant(0)),
            equality(r2, Constant(0)),
        ),
    )

    def step_queries() -> list[ConjunctiveQuery]:
        """One query per instruction kind, advancing the register along the run."""
        queries = []
        b1, b2 = Variable("b1"), Variable("b2")
        s1, m1, n1, s2 = Variable("s1"), Variable("m1"), Variable("n1"), Variable("s2")
        c1, c2 = Variable("c1"), Variable("c2")
        for state_index, instruction in enumerate(machine.instructions):
            base_atoms = [
                RelationAtom("Reg_a", (b1, b2, s1, m1, n1, s2)),
                RelationAtom("R", head),
            ]
            base_comparisons = [
                equality(s1, Constant(state_index)),
                equality(prev, b2),
                equality(cs, s2),
            ]
            if instruction[0] == "add":
                _, register, nxt_state = instruction
                if register == 1:
                    succ = [RelationAtom("R", (c1, c2, Variable("w1"), Variable("w2"), Variable("w3"), Variable("w4")))]
                    base_atoms += succ
                    base_comparisons += [equality(m1, c1), equality(r1, c2), equality(r2, n1)]
                else:
                    succ = [RelationAtom("R", (c1, c2, Variable("w1"), Variable("w2"), Variable("w3"), Variable("w4")))]
                    base_atoms += succ
                    base_comparisons += [equality(n1, c1), equality(r2, c2), equality(r1, m1)]
                base_comparisons.append(equality(ns, Constant(nxt_state)))
                base_comparisons.append(equality(cs, Constant(nxt_state)))
            else:
                _, register, if_zero, otherwise = instruction
                # zero branch
                zero_comparisons = list(base_comparisons)
                zero_comparisons.append(equality(m1 if register == 1 else n1, Constant(0)))
                zero_comparisons += [equality(r1, m1), equality(r2, n1), equality(cs, Constant(if_zero))]
                queries.append(ConjunctiveQuery(head, tuple(base_atoms), tuple(zero_comparisons)))
                # non-zero branch: decrement through a predecessor tuple
                nonzero_atoms = list(base_atoms) + [
                    RelationAtom("R", (c1, c2, Variable("w5"), Variable("w6"), Variable("w7"), Variable("w8")))
                ]
                nonzero_comparisons = list(base_comparisons)
                if register == 1:
                    nonzero_comparisons += [
                        inequality(m1, Constant(0)),
                        equality(c2, m1),
                        equality(r1, c1),
                        equality(r2, n1),
                    ]
                else:
                    nonzero_comparisons += [
                        inequality(n1, Constant(0)),
                        equality(c2, n1),
                        equality(r2, c1),
                        equality(r1, m1),
                    ]
                nonzero_comparisons.append(equality(cs, Constant(otherwise)))
                queries.append(ConjunctiveQuery(head, tuple(nonzero_atoms), tuple(nonzero_comparisons)))
                continue
            queries.append(ConjunctiveQuery(head, tuple(base_atoms), tuple(base_comparisons)))
        return queries

    halt = ConjunctiveQuery(
        (Variable("h"),),
        (RelationAtom("Reg_a", (Variable("a1"), Variable("a2"), cs, r1, r2, ns)),),
        (
            equality(cs, Constant(machine.halting_state)),
            equality(r1, Constant(0)),
            equality(r2, Constant(0)),
            equality(Variable("h"), Constant(1)),
        ),
    )
    p_nokey = ConjunctiveQuery(
        (Variable("h"),),
        (
            RelationAtom("R", (Variable("a1"), Variable("a2"), Variable("u1"), Variable("u2"), Variable("u3"), Variable("u4"))),
            RelationAtom("R", (Variable("b1"), Variable("b2"), Variable("v1"), Variable("v2"), Variable("v3"), Variable("v4"))),
        ),
        (
            equality(Variable("a1"), Variable("b1")),
            inequality(Variable("a2"), Variable("b2")),
            equality(Variable("h"), Constant(1)),
        ),
    )
    n_nokey = ConjunctiveQuery(
        (Variable("h"),),
        (
            RelationAtom("R", (Variable("a1"), Variable("a2"), Variable("u1"), Variable("u2"), Variable("u3"), Variable("u4"))),
            RelationAtom("R", (Variable("b1"), Variable("b2"), Variable("v1"), Variable("v2"), Variable("v3"), Variable("v4"))),
        ),
        (
            equality(Variable("a2"), Variable("b2")),
            inequality(Variable("a1"), Variable("b1")),
            equality(Variable("h"), Constant(1)),
        ),
    )
    halt_and_nokeys = ConjunctiveQuery(
        (Variable("h"),),
        halt.atoms + p_nokey.atoms + n_nokey.atoms,
        halt.comparisons + p_nokey.comparisons + n_nokey.comparisons,
    )

    def build(extra_items: list[RuleItem], name: str) -> PublishingTransducer:
        step_items = [
            RuleItem("q1", "a", RuleQuery(query, query.arity)) for query in step_queries()
        ]
        items = tuple(step_items) + tuple(extra_items)
        rules = [
            TransductionRule("q0", "r", (RuleItem("q1", "a", RuleQuery(phi0, phi0.arity)),)),
            TransductionRule("q1", "a", items),
            TransductionRule("q3", "b", ()),
            TransductionRule("q4", "b", ()),
        ]
        return make_transducer(rules, start_state="q0", root_tag="r", name=name)

    tau1 = build(
        [
            RuleItem("q3", "b", RuleQuery(halt, 1)),
            RuleItem("q4", "b", RuleQuery(halt_and_nokeys, 1)),
        ],
        "2rm-tau1",
    )
    tau2 = build(
        [
            RuleItem("q3", "b", RuleQuery(p_nokey, 1)),
            RuleItem("q4", "b", RuleQuery(n_nokey, 1)),
        ],
        "2rm-tau2",
    )
    return tau1, tau2
