"""Containment and equivalence of conjunctive queries with ``!=``.

The equivalence procedure of Theorem 2 rests on deciding (c-)equivalence of
unions of conjunctive queries with inequalities.  Plain CQ containment is the
classical homomorphism (canonical-database) test; with inequalities the test
follows Klug's characterisation: ``Q1 <= Q2`` iff for *every* total, consistent
refinement of ``Q1``'s (in)equality constraints -- i.e. every way of deciding
which of ``Q1``'s terms coincide that is consistent with ``Q1`` -- the frozen
database obtained from that refinement satisfies ``Q2`` with the frozen head
as the answer.  The number of refinements is exponential in the number of
terms of ``Q1``, matching the higher complexity the paper assigns to these
analyses; queries in practice are small.

The module also implements the *reduction* and *c-equivalence* (equal answer
cardinalities) notions from the proof of Theorem 2: a query is reduced by
dropping head variables that are forced constant or duplicates of other head
variables; two queries are c-equivalent iff their reductions are equivalent.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.logic.cq import Comparison, ConjunctiveQuery, RelationAtom, UnionOfConjunctiveQueries
from repro.logic.terms import Constant, Term, Variable

#: Safety cap on the number of constraint refinements enumerated per query.
MAX_REFINEMENTS = 200_000


class ContainmentBudgetError(RuntimeError):
    """The refinement enumeration exceeded the configured budget."""


# ---------------------------------------------------------------------------
# Homomorphisms.
# ---------------------------------------------------------------------------


def find_homomorphism(
    source: ConjunctiveQuery,
    target_atoms: Sequence[RelationAtom],
    target_valuation: dict[Variable, object],
    head_image: Sequence[object],
) -> dict[Variable, object] | None:
    """Find a homomorphism from ``source`` into a frozen database.

    ``target_atoms`` together with ``target_valuation`` describe the frozen
    (canonical) database: each atom's terms are interpreted through the
    valuation.  The homomorphism must map ``source``'s head variables to
    ``head_image`` (position-wise), map every body atom of ``source`` onto a
    frozen atom, and satisfy ``source``'s comparisons.  Returns the mapping or
    ``None``.
    """
    facts: dict[str, set[tuple]] = {}
    for atom in target_atoms:
        row = tuple(
            term.value if isinstance(term, Constant) else target_valuation[term]
            for term in atom.terms
        )
        facts.setdefault(atom.relation, set()).add(row)

    assignment: dict[Variable, object] = {}
    for variable, value in zip(source.head, head_image):
        if variable in assignment and assignment[variable] != value:
            return None
        assignment[variable] = value

    atoms = sorted(source.atoms, key=lambda a: -len([t for t in a.terms if isinstance(t, Variable)]))

    def backtrack(index: int) -> dict[Variable, object] | None:
        if index == len(atoms):
            if _comparisons_hold(source.comparisons, assignment):
                return dict(assignment)
            return None
        atom = atoms[index]
        candidates = facts.get(atom.relation, set())
        for row in candidates:
            added: list[Variable] = []
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    if term in assignment:
                        if assignment[term] != value:
                            ok = False
                            break
                    else:
                        assignment[term] = value
                        added.append(term)
            if ok:
                result = backtrack(index + 1)
                if result is not None:
                    return result
            for variable in added:
                del assignment[variable]
        return None

    return backtrack(0)


def _comparisons_hold(comparisons: Iterable[Comparison], assignment: dict[Variable, object]) -> bool:
    comparisons = list(comparisons)
    scratch = dict(assignment)
    # First propagate equalities that determine variables occurring only in
    # comparisons (e.g. an existential variable equated to a constant); such a
    # variable can always be *chosen* to satisfy the equality.
    changed = True
    while changed:
        changed = False
        for comparison in comparisons:
            if comparison.negated:
                continue
            left_bound = isinstance(comparison.left, Constant) or comparison.left in scratch
            right_bound = isinstance(comparison.right, Constant) or comparison.right in scratch
            if left_bound and not right_bound:
                value = comparison.left.value if isinstance(comparison.left, Constant) else scratch[comparison.left]
                scratch[comparison.right] = value
                changed = True
            elif right_bound and not left_bound:
                value = comparison.right.value if isinstance(comparison.right, Constant) else scratch[comparison.right]
                scratch[comparison.left] = value
                changed = True
    for comparison in comparisons:
        left = comparison.left.value if isinstance(comparison.left, Constant) else scratch.get(comparison.left)
        right = comparison.right.value if isinstance(comparison.right, Constant) else scratch.get(comparison.right)
        if left is None or right is None:
            # A still-unbound variable can be chosen fresh, which satisfies any
            # inequality; an equality between two unbound variables can also be
            # satisfied by choosing them equal.
            continue
        if comparison.negated and left == right:
            return False
        if not comparison.negated and left != right:
            return False
    return True


# ---------------------------------------------------------------------------
# Refinements (Klug's completions) of a query's constraints.
# ---------------------------------------------------------------------------


def _refinements(
    query: ConjunctiveQuery,
    budget: int = MAX_REFINEMENTS,
    extra_constants: frozenset = frozenset(),
):
    """Enumerate total consistent refinements of the query's constraints.

    A refinement is a partition of the query's terms into groups that will be
    interpreted by pairwise distinct values; it must respect the query's
    equalities (equated terms share a group), inequalities (unequated terms in
    distinct groups), and constants (two distinct constants never share a
    group).  ``extra_constants`` are constants of the *container* query: a
    refinement may additionally identify a variable group with one of them,
    which Klug's characterisation requires (the container may distinguish
    those constants through its own comparisons).  Each refinement is returned
    as a mapping from terms to concrete frozen values.
    """
    classes = query.equality_classes()
    foreign = sorted(extra_constants - query.constants(), key=repr)
    if foreign:
        # Add each foreign constant as its own singleton class so that the
        # partition enumeration can merge variable classes with it.
        for value in foreign:
            constant = Constant(value)
            classes.setdefault(constant, {constant})
    # Start from the equality classes; the refinement decides which classes merge.
    roots = list(classes)
    class_members = [classes[root] for root in roots]
    class_constants: list[object | None] = []
    for members in class_members:
        constant_values = {m.value for m in members if isinstance(m, Constant)}
        if len(constant_values) > 1:
            return  # unsatisfiable query: no refinements
        class_constants.append(next(iter(constant_values)) if constant_values else None)

    forbidden: set[tuple[int, int]] = set()
    index_of: dict[Term, int] = {}
    for class_index, members in enumerate(class_members):
        for member in members:
            index_of[member] = class_index
    for comparison in query.comparisons:
        if comparison.negated:
            left = index_of.get(comparison.left)
            right = index_of.get(comparison.right)
            if left is None or right is None:
                continue
            if left == right:
                return  # unsatisfiable
            forbidden.add((min(left, right), max(left, right)))

    count = 0
    for grouping in _set_partitions(len(roots)):
        # grouping: list of blocks (lists of class indices)
        consistent = True
        for block in grouping:
            constants_in_block = {class_constants[i] for i in block if class_constants[i] is not None}
            if len(constants_in_block) > 1:
                consistent = False
                break
            for a, b in itertools.combinations(sorted(block), 2):
                if (a, b) in forbidden:
                    consistent = False
                    break
            if not consistent:
                break
        if not consistent:
            continue
        count += 1
        if count > budget:
            raise ContainmentBudgetError(
                f"more than {budget} constraint refinements; the query is too large "
                "for the exact containment test"
            )
        valuation: dict[Variable, object] = {}
        for block_index, block in enumerate(grouping):
            constants_in_block = {class_constants[i] for i in block if class_constants[i] is not None}
            value = next(iter(constants_in_block)) if constants_in_block else f"_f{block_index}"
            for class_index in block:
                for member in class_members[class_index]:
                    if isinstance(member, Variable):
                        valuation[member] = value
        yield valuation


def _set_partitions(n: int):
    """Enumerate set partitions of ``range(n)`` (restricted growth strings)."""
    if n == 0:
        yield []
        return
    codes = [0] * n

    def generate(position: int, max_code: int):
        if position == n:
            blocks: dict[int, list[int]] = {}
            for index, code in enumerate(codes):
                blocks.setdefault(code, []).append(index)
            yield [blocks[code] for code in sorted(blocks)]
            return
        for code in range(max_code + 2):
            codes[position] = code
            yield from generate(position + 1, max(max_code, code))

    yield from generate(1, 0)


# ---------------------------------------------------------------------------
# Containment and equivalence.
# ---------------------------------------------------------------------------


def cq_contained_in(
    contained: ConjunctiveQuery,
    container: ConjunctiveQuery | UnionOfConjunctiveQueries,
    budget: int = MAX_REFINEMENTS,
) -> bool:
    """Decide ``contained ⊆ container`` for CQs (or a UCQ container) with ``!=``.

    For every consistent refinement of ``contained``'s constraints, the frozen
    database must satisfy ``container`` with the frozen head as answer.
    """
    if not contained.is_satisfiable():
        return True
    containers = (
        container.disjuncts
        if isinstance(container, UnionOfConjunctiveQueries)
        else (container,)
    )
    if len(contained.head) != len(containers[0].head):
        raise ValueError("containment requires queries of equal head width")
    container_constants: set = set()
    for candidate in containers:
        container_constants |= set(candidate.constants())
    for valuation in _refinements(contained, budget, frozenset(container_constants)):
        head_image = [valuation[v] for v in contained.head]
        witnessed = False
        for candidate in containers:
            if not candidate.is_satisfiable():
                continue
            if find_homomorphism(candidate, contained.atoms, valuation, head_image) is not None:
                witnessed = True
                break
        if not witnessed:
            return False
    return True


def ucq_contained_in(
    contained: UnionOfConjunctiveQueries | ConjunctiveQuery,
    container: UnionOfConjunctiveQueries | ConjunctiveQuery,
    budget: int = MAX_REFINEMENTS,
) -> bool:
    """Decide containment between unions of conjunctive queries with ``!=``."""
    disjuncts = (
        contained.disjuncts
        if isinstance(contained, UnionOfConjunctiveQueries)
        else (contained,)
    )
    return all(cq_contained_in(disjunct, container, budget) for disjunct in disjuncts)


def cq_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery, budget: int = MAX_REFINEMENTS) -> bool:
    """Equivalence of two CQs with ``!=`` (mutual containment)."""
    return cq_contained_in(left, right, budget) and cq_contained_in(right, left, budget)


def ucq_equivalent(
    left: UnionOfConjunctiveQueries | ConjunctiveQuery,
    right: UnionOfConjunctiveQueries | ConjunctiveQuery,
    budget: int = MAX_REFINEMENTS,
) -> bool:
    """Equivalence of two UCQs with ``!=`` (mutual containment)."""
    return ucq_contained_in(left, right, budget) and ucq_contained_in(right, left, budget)


# ---------------------------------------------------------------------------
# Reduction and c-equivalence (Claim 3 of Theorem 2).
# ---------------------------------------------------------------------------


def reduce_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The *reduced version* ``Q^r`` of a query.

    A head variable is dropped when its equivalence class is *constant* (it
    has a value, or none of its variables occur in a relation atom) or when an
    earlier head variable belongs to the same equivalence class.  The answer
    tuples of ``Q`` are in bijection with those of ``Q^r`` (each dropped
    column is determined by the kept ones), which is why c-equivalence --
    equal answer cardinality on every instance -- reduces to equivalence of
    the reduced queries.
    """
    classes = query.equality_classes()
    root_of: dict[Term, Term] = {}
    for root, members in classes.items():
        for member in members:
            root_of[member] = root
    atom_variables: set[Variable] = set()
    for atom in query.atoms:
        atom_variables.update(atom.variables())

    kept: list[Variable] = []
    seen_roots: set[Term] = set()
    for variable in query.head:
        root = root_of.get(variable, variable)
        members = classes.get(root, {variable})
        has_value = any(isinstance(member, Constant) for member in members)
        occurs_in_atom = any(
            isinstance(member, Variable) and member in atom_variables for member in members
        )
        if has_value or not occurs_in_atom:
            continue  # constant class: determined on every answer
        if root in seen_roots:
            continue  # duplicate of an earlier head variable
        seen_roots.add(root)
        kept.append(variable)
    return query.with_head(tuple(kept))


def count_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery, budget: int = MAX_REFINEMENTS) -> bool:
    """c-equivalence: ``|Q1(I)| = |Q2(I)|`` on every instance (Claim 3).

    Decided by reducing both queries and testing ordinary equivalence of the
    reductions.  Queries whose reductions have different widths are never
    c-equivalent (except when both are unsatisfiable).
    """
    if not left.is_satisfiable() and not right.is_satisfiable():
        return True
    if left.is_satisfiable() != right.is_satisfiable():
        return False
    reduced_left = reduce_query(left)
    reduced_right = reduce_query(right)
    if len(reduced_left.head) != len(reduced_right.head):
        return False
    return cq_equivalent(reduced_left, reduced_right, budget)


def ucq_count_equivalent(
    left: Sequence[ConjunctiveQuery],
    right: Sequence[ConjunctiveQuery],
    budget: int = MAX_REFINEMENTS,
) -> bool:
    """c-equivalence lifted to unions of CQs (as used by Claim 4).

    The reduction of each disjunct is taken individually; the unions of the
    reduced disjuncts must be equivalent and have a common reduced width.
    """
    sat_left = [q for q in left if q.is_satisfiable()]
    sat_right = [q for q in right if q.is_satisfiable()]
    if not sat_left and not sat_right:
        return True
    if bool(sat_left) != bool(sat_right):
        return False
    reduced_left = [reduce_query(q) for q in sat_left]
    reduced_right = [reduce_query(q) for q in sat_right]
    widths = {len(q.head) for q in reduced_left} | {len(q.head) for q in reduced_right}
    if len(widths) != 1:
        return False
    return ucq_equivalent(
        UnionOfConjunctiveQueries(reduced_left),
        UnionOfConjunctiveQueries(reduced_right),
        budget,
    )
