"""The complexity registry reproducing Table II.

For every fragment of the paper's lattice and every decision problem the
registry records the exact bound proved in the paper (Proposition 2,
Theorems 1 and 2) together with the statement it comes from.  The decision
procedures of this package consult the registry and refuse -- by raising
:class:`UndecidableProblemError` -- to pretend to decide an undecidable
problem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.classes import OutputKind, StoreKind, TransducerClass
from repro.logic.base import QueryLogic


class DecisionProblem(enum.Enum):
    """The three classical decision problems studied in Section 5."""

    EMPTINESS = "emptiness"
    MEMBERSHIP = "membership"
    EQUIVALENCE = "equivalence"

    def __str__(self) -> str:
        return self.value


class ComplexityBound(enum.Enum):
    """Complexity bounds appearing in Table II (all bounds are tight)."""

    PTIME = "PTIME"
    NP_COMPLETE = "NP-complete"
    SIGMA2P_COMPLETE = "Sigma^p_2-complete"
    PI3P_COMPLETE = "Pi^p_3-complete"
    UNDECIDABLE = "undecidable"

    def __str__(self) -> str:
        return self.value

    @property
    def decidable(self) -> bool:
        """Whether the bound denotes a decidable problem."""
        return self is not ComplexityBound.UNDECIDABLE


@dataclass(frozen=True)
class ComplexityEntry:
    """One cell of Table II."""

    problem: DecisionProblem
    fragment: str
    bound: ComplexityBound
    reference: str

    def __str__(self) -> str:
        return f"{self.problem} for {self.fragment}: {self.bound} ({self.reference})"


class UndecidableProblemError(RuntimeError):
    """Raised when a decision procedure is asked about an undecidable fragment."""

    def __init__(self, problem: DecisionProblem, fragment: TransducerClass, reference: str) -> None:
        super().__init__(
            f"the {problem} problem is undecidable for {fragment} ({reference}); "
            "use the testing-based utilities (e.g. find_counterexample) instead"
        )
        self.problem = problem
        self.fragment = fragment
        self.reference = reference


#: Table II of the paper, row by row.  ``S`` ranges over both stores and ``O``
#: over both outputs where the paper states the bound uniformly.
TABLE_II: tuple[ComplexityEntry, ...] = (
    # PT(IFP, S, O) and PT(FO, S, O): everything undecidable (Proposition 2).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PT(IFP, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PT(IFP, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PT(IFP, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PT(FO, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PT(FO, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PT(FO, S, O)", ComplexityBound.UNDECIDABLE, "Prop. 2"),
    # PT(CQ, tuple, normal) (Theorem 1).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PT(CQ, tuple, normal)", ComplexityBound.UNDECIDABLE, "Thm. 1(3)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PT(CQ, tuple, normal)", ComplexityBound.PTIME, "Thm. 1(1)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PT(CQ, tuple, normal)", ComplexityBound.SIGMA2P_COMPLETE, "Thm. 1(2)"),
    # PT(CQ, relation, normal) (Theorem 1).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PT(CQ, relation, normal)", ComplexityBound.UNDECIDABLE, "Thm. 1(3)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PT(CQ, relation, normal)", ComplexityBound.PTIME, "Thm. 1(1)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PT(CQ, relation, normal)", ComplexityBound.UNDECIDABLE, "Thm. 1(2)"),
    # PT(CQ, S, virtual) (Theorem 1).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PT(CQ, S, virtual)", ComplexityBound.UNDECIDABLE, "Thm. 1(3)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PT(CQ, S, virtual)", ComplexityBound.NP_COMPLETE, "Thm. 1(1)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PT(CQ, S, virtual)", ComplexityBound.UNDECIDABLE, "Thm. 1(2)"),
    # PTnr(FO, tuple, normal) (Theorem 2(1)).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PTnr(FO, tuple, normal)", ComplexityBound.UNDECIDABLE, "Thm. 2(1)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PTnr(FO, tuple, normal)", ComplexityBound.UNDECIDABLE, "Thm. 2(1)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PTnr(FO, tuple, normal)", ComplexityBound.UNDECIDABLE, "Thm. 2(1)"),
    # PTnr(CQ, tuple, normal) (Theorem 2(2-4)).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PTnr(CQ, tuple, normal)", ComplexityBound.PI3P_COMPLETE, "Thm. 2(4)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PTnr(CQ, tuple, normal)", ComplexityBound.PTIME, "Thm. 2(2)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PTnr(CQ, tuple, normal)", ComplexityBound.SIGMA2P_COMPLETE, "Thm. 2(3)"),
    # PTnr(CQ, tuple, virtual) (Theorem 2(2-4)).
    ComplexityEntry(DecisionProblem.EQUIVALENCE, "PTnr(CQ, tuple, virtual)", ComplexityBound.PI3P_COMPLETE, "Thm. 2(4)"),
    ComplexityEntry(DecisionProblem.EMPTINESS, "PTnr(CQ, tuple, virtual)", ComplexityBound.NP_COMPLETE, "Thm. 2(2)"),
    ComplexityEntry(DecisionProblem.MEMBERSHIP, "PTnr(CQ, tuple, virtual)", ComplexityBound.SIGMA2P_COMPLETE, "Thm. 2(3)"),
)


def complexity_of(problem: DecisionProblem, fragment: TransducerClass) -> ComplexityEntry:
    """Look up the Table II entry governing ``fragment`` for ``problem``.

    The registry keys are the row names of Table II; a concrete fragment is
    matched against the most specific row that covers it.  Rows with ``S`` or
    ``O`` wildcards cover both stores / outputs.
    """
    candidates = []
    for entry in TABLE_II:
        if entry.problem is not problem:
            continue
        if _row_covers(entry.fragment, fragment):
            candidates.append(entry)
    if not candidates:
        raise KeyError(f"no Table II row covers {fragment} for {problem}")
    # Prefer the most specific matching row: non-recursive rows first (they
    # are only produced for non-recursive fragments), then rows without
    # wildcards, then wildcard rows.
    def specificity(entry: ComplexityEntry) -> tuple[int, int]:
        wildcards = entry.fragment.count(" S,") + entry.fragment.count(" S)") + entry.fragment.count(" O)")
        return (0 if entry.fragment.startswith("PTnr") else 1, wildcards)

    return sorted(candidates, key=specificity)[0]


def is_decidable(problem: DecisionProblem, fragment: TransducerClass) -> bool:
    """Whether Table II marks ``problem`` decidable for ``fragment``."""
    return complexity_of(problem, fragment).bound.decidable


def _row_covers(row: str, fragment: TransducerClass) -> bool:
    """Whether a Table II row name covers a concrete fragment."""
    row = row.strip()
    row_nonrecursive = row.startswith("PTnr")
    body = row[row.index("(") + 1 : row.rindex(")")]
    logic_text, store_text, output_text = [part.strip() for part in body.split(",")]
    if row_nonrecursive and fragment.recursive:
        return False
    if not row_nonrecursive and not fragment.recursive:
        # A recursive row also covers the non-recursive special case *unless*
        # a dedicated PTnr row exists; specificity sorting handles preference,
        # so here we simply allow the cover.
        pass
    logic_map = {"CQ": QueryLogic.CQ, "FO": QueryLogic.FO, "IFP": QueryLogic.IFP, "FP": QueryLogic.IFP}
    if logic_map[logic_text] is not fragment.logic:
        return False
    if store_text != "S":
        expected = StoreKind.TUPLE if store_text == "tuple" else StoreKind.RELATION
        if expected is not fragment.store:
            return False
    if output_text != "O":
        expected_output = OutputKind.NORMAL if output_text == "normal" else OutputKind.VIRTUAL
        if expected_output is not fragment.output:
            return False
    return True


def table_ii_rows() -> list[tuple[str, str, str, str]]:
    """Table II as printable rows ``(fragment, equivalence, emptiness, membership)``."""
    fragments: dict[str, dict[DecisionProblem, ComplexityBound]] = {}
    for entry in TABLE_II:
        fragments.setdefault(entry.fragment, {})[entry.problem] = entry.bound
    rows = []
    for fragment, cells in fragments.items():
        rows.append(
            (
                fragment,
                str(cells.get(DecisionProblem.EQUIVALENCE, "")),
                str(cells.get(DecisionProblem.EMPTINESS, "")),
                str(cells.get(DecisionProblem.MEMBERSHIP, "")),
            )
        )
    return rows
