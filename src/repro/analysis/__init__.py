"""Static analysis of publishing transducers (Section 5).

The classical decision problems -- **emptiness**, **membership** and
**equivalence** -- are implemented for every fragment for which the paper
proves them decidable, with the exact complexity bounds the paper establishes
(Table II).  For undecidable fragments the procedures raise
:class:`~repro.analysis.complexity.UndecidableProblemError` and the
lower-bound *reductions* used in the proofs are available as executable gadget
constructions in :mod:`repro.analysis.reductions`.
"""

from repro.analysis.complexity import (
    DecisionProblem,
    ComplexityBound,
    ComplexityEntry,
    TABLE_II,
    UndecidableProblemError,
    complexity_of,
    is_decidable,
)
from repro.analysis.composition import compose_path, compose_rule_query
from repro.analysis.containment import (
    cq_contained_in,
    cq_equivalent,
    count_equivalent,
    reduce_query,
    ucq_contained_in,
    ucq_equivalent,
)
from repro.analysis.emptiness import EmptinessResult, is_empty, witness_instance
from repro.analysis.equivalence import EquivalenceResult, are_equivalent, find_counterexample
from repro.analysis.membership import MembershipResult, MembershipStatus, is_member

__all__ = [
    "ComplexityBound",
    "ComplexityEntry",
    "DecisionProblem",
    "EmptinessResult",
    "EquivalenceResult",
    "MembershipResult",
    "MembershipStatus",
    "TABLE_II",
    "UndecidableProblemError",
    "are_equivalent",
    "complexity_of",
    "compose_path",
    "compose_rule_query",
    "cq_contained_in",
    "cq_equivalent",
    "count_equivalent",
    "find_counterexample",
    "is_decidable",
    "is_empty",
    "is_member",
    "reduce_query",
    "ucq_contained_in",
    "ucq_equivalent",
    "witness_instance",
]
