"""The equivalence problem (Theorem 1(3) and Theorem 2(4)).

*Equivalence*: do two transducers over the same relational schema produce the
same Σ-tree on every instance?

The paper proves the problem undecidable as soon as recursion is available
(already for ``PT(CQ, tuple, normal)``, by reduction from the halting problem
of two-register machines) and Πᵖ₃-complete for the non-recursive classes
``PTnr(CQ, tuple, normal)`` and ``PTnr(CQ, tuple, virtual)``.

The decidable case is implemented along the characterisation of Claim 4:

1. the (reachable parts of the) dependency graphs must be isomorphic via a
   mapping that preserves tags and *types* (the runs of equal child tags of
   every rule);
2. for every root-anchored node path and every run of equal child tags, the
   unions of the conjunctive queries composed along the path must be
   *c-equivalent* (equal answer cardinality on every instance; plain
   equivalence for ``text`` children, whose PCDATA exposes the full register).

Virtual tags are first compiled away by splicing virtual rule items into their
parents (the ``G'_tau`` construction from the proof of Theorem 2), which is
possible because non-recursive tuple-register CQ compositions are again CQs.

For fragments where the problem is undecidable the procedure raises
:class:`UndecidableProblemError`; :func:`find_counterexample` offers a
testing-based refutation utility that works for every fragment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.complexity import DecisionProblem, UndecidableProblemError, complexity_of
from repro.analysis.composition import compose_rule_query
from repro.analysis.containment import ucq_count_equivalent, ucq_equivalent
from repro.core.classes import classify
from repro.core.dependency import DependencyGraph
from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.runtime import publish
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.relational.instance import Instance
from repro.xmltree.tree import TEXT_TAG

#: A node of the dependency graph.
Node = tuple[str, str]


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of the equivalence analysis."""

    equivalent: bool
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def are_equivalent(
    left: PublishingTransducer,
    right: PublishingTransducer,
    max_paths: int = 20_000,
) -> EquivalenceResult:
    """Decide equivalence of two non-recursive tuple-register CQ transducers."""
    fragment = classify(left).join(classify(right))
    entry = complexity_of(DecisionProblem.EQUIVALENCE, fragment)
    if not entry.bound.decidable:
        raise UndecidableProblemError(DecisionProblem.EQUIVALENCE, fragment, entry.reference)

    left = eliminate_virtual_nonrecursive(left)
    right = eliminate_virtual_nonrecursive(right)

    if left.root_tag != right.root_tag:
        return EquivalenceResult(False, "different root tags")

    graph_left, graph_right = DependencyGraph(left), DependencyGraph(right)
    isomorphism = _find_isomorphism(left, right, graph_left, graph_right)
    if isomorphism is None:
        return EquivalenceResult(False, "dependency graphs are not type-isomorphic")

    for node_path in _node_paths(graph_left, max_paths):
        node = node_path[-1]
        image_path = tuple(isomorphism[n] for n in node_path)
        verdict = _compare_children(left, right, node_path, image_path)
        if verdict is not None:
            return verdict
    return EquivalenceResult(True, "dependency graphs isomorphic and all path queries c-equivalent")


def find_counterexample(
    left: PublishingTransducer,
    right: PublishingTransducer,
    instances: Iterable[Instance],
) -> Instance | None:
    """Testing-based refutation: the first instance on which the outputs differ.

    Works for every fragment (including the undecidable ones); a ``None``
    result is of course *not* a proof of equivalence.
    """
    for instance in instances:
        if publish(left, instance) != publish(right, instance):
            return instance
    return None


# ---------------------------------------------------------------------------
# Virtual-node elimination for non-recursive tuple-register CQ transducers.
# ---------------------------------------------------------------------------


def eliminate_virtual_nonrecursive(transducer: PublishingTransducer) -> PublishingTransducer:
    """Compile virtual tags away by splicing their rules into their parents.

    Every rule item that spawns a virtual tag is replaced, in place, by the
    items of the virtual node's own rule with their queries composed with the
    spawning query (the ``G'_tau`` construction of Theorem 2).  The transducer
    must be non-recursive with tuple registers and CQ queries; transducers
    without virtual tags are returned unchanged.
    """
    if not transducer.uses_virtual_nodes():
        return transducer
    graph = DependencyGraph(transducer)
    if graph.is_recursive():
        raise ValueError("virtual elimination requires a non-recursive transducer")

    virtual = transducer.virtual_tags

    def expand_item(item: RuleItem, depth: int = 0) -> list[RuleItem]:
        if item.tag not in virtual:
            return [item]
        if depth > len(graph):
            raise ValueError("virtual chains longer than the dependency graph")
        inner_rule = transducer.rule_for(item.state, item.tag)
        expanded: list[RuleItem] = []
        outer_query = item.query.query
        if not isinstance(outer_query, ConjunctiveQuery):
            raise ValueError("virtual elimination requires CQ rule queries")
        for inner in inner_rule.items:
            inner_query = inner.query.query
            if not isinstance(inner_query, ConjunctiveQuery):
                raise ValueError("virtual elimination requires CQ rule queries")
            composed = compose_rule_query(inner_query, item.tag, outer_query)
            new_item = RuleItem(inner.state, inner.tag, RuleQuery(composed, inner.query.group_arity))
            expanded.extend(expand_item(new_item, depth + 1))
        return expanded

    new_rules: list[TransductionRule] = []
    for rule_ in transducer.rules:
        if rule_.tag in virtual:
            continue  # rules for virtual tags have been inlined
        items: list[RuleItem] = []
        for item in rule_.items:
            items.extend(expand_item(item))
        new_rules.append(TransductionRule(rule_.state, rule_.tag, tuple(items)))

    register_arities = {
        tag: arity for tag, arity in transducer.register_arities.items() if tag not in virtual
    }
    return make_transducer(
        new_rules,
        start_state=transducer.start_state,
        root_tag=transducer.root_tag,
        register_arities=register_arities,
        name=f"{transducer.name}-devirtualised",
    )


# ---------------------------------------------------------------------------
# Graph isomorphism preserving tags and types.
# ---------------------------------------------------------------------------


def _find_isomorphism(
    left: PublishingTransducer,
    right: PublishingTransducer,
    graph_left: DependencyGraph,
    graph_right: DependencyGraph,
) -> dict[Node, Node] | None:
    nodes_left = sorted(graph_left.reachable_nodes())
    nodes_right = sorted(graph_right.reachable_nodes())
    if len(nodes_left) != len(nodes_right):
        return None
    types_left = graph_left.node_types()
    types_right = graph_right.node_types()

    mapping: dict[Node, Node] = {}
    used: set[Node] = set()

    def compatible(a: Node, b: Node) -> bool:
        if a[1] != b[1]:
            return False
        return types_left[a] == types_right[b]

    def extend(index: int) -> bool:
        if index == len(nodes_left):
            return _edges_preserved(graph_left, graph_right, mapping)
        node = nodes_left[index]
        for candidate in nodes_right:
            if candidate in used or not compatible(node, candidate):
                continue
            mapping[node] = candidate
            used.add(candidate)
            if extend(index + 1):
                return True
            del mapping[node]
            used.discard(candidate)
        return False

    root_left, root_right = graph_left.root, graph_right.root
    if not compatible(root_left, root_right):
        return None
    mapping[root_left] = root_right
    used.add(root_right)
    remaining = [n for n in nodes_left if n != root_left]

    def extend_remaining(index: int) -> bool:
        if index == len(remaining):
            return _edges_preserved(graph_left, graph_right, mapping)
        node = remaining[index]
        for candidate in nodes_right:
            if candidate in used or not compatible(node, candidate):
                continue
            mapping[node] = candidate
            used.add(candidate)
            if extend_remaining(index + 1):
                return True
            del mapping[node]
            used.discard(candidate)
        return False

    if extend_remaining(0):
        return dict(mapping)
    return None


def _edges_preserved(
    graph_left: DependencyGraph, graph_right: DependencyGraph, mapping: dict[Node, Node]
) -> bool:
    for node, image in mapping.items():
        succ_left = {mapping[s] for s in graph_left.successors(node) if s in mapping}
        succ_right = set(graph_right.successors(image)) & set(mapping.values())
        if succ_left != succ_right:
            return False
    return True


# ---------------------------------------------------------------------------
# Path and child comparisons (Claim 4).
# ---------------------------------------------------------------------------


def _node_paths(graph: DependencyGraph, max_paths: int) -> list[tuple[Node, ...]]:
    """All root-anchored node paths of a non-recursive dependency graph."""
    paths: list[tuple[Node, ...]] = [(graph.root,)]
    frontier: list[tuple[Node, ...]] = [(graph.root,)]
    while frontier and len(paths) < max_paths:
        path = frontier.pop()
        for successor in set(graph.successors(path[-1])):
            extended = path + (successor,)
            paths.append(extended)
            frontier.append(extended)
    return paths


def _composed_queries_for_node_path(
    transducer: PublishingTransducer, node_path: Sequence[Node]
) -> list[ConjunctiveQuery]:
    """All CQ compositions realising a node path (several parallel edges may exist)."""
    current: list[ConjunctiveQuery | None] = [None]
    for parent, child in zip(node_path, node_path[1:]):
        rule_ = transducer.rule_for(*parent)
        next_queries: list[ConjunctiveQuery | None] = []
        for item in rule_.items:
            if (item.state, item.tag) != child:
                continue
            query = item.query.query
            if not isinstance(query, ConjunctiveQuery):
                raise ValueError("the equivalence procedure requires CQ rule queries")
            for previous in current:
                next_queries.append(compose_rule_query(query, parent[1], previous))
        current = next_queries
    return [q for q in current if q is not None]


def _child_runs(transducer: PublishingTransducer, node: Node) -> list[tuple[str, list[int]]]:
    """The maximal runs of equal child tags of the node's rule (tag, item indices)."""
    rule_ = transducer.rule_for(*node)
    runs: list[tuple[str, list[int]]] = []
    for index, item in enumerate(rule_.items):
        if runs and runs[-1][0] == item.tag:
            runs[-1][1].append(index)
        else:
            runs.append((item.tag, [index]))
    return runs


def _compare_children(
    left: PublishingTransducer,
    right: PublishingTransducer,
    node_path: Sequence[Node],
    image_path: Sequence[Node],
) -> EquivalenceResult | None:
    """Compare the child-producing queries of two corresponding nodes; None = agree."""
    base_left = _composed_queries_for_node_path(left, node_path)
    base_right = _composed_queries_for_node_path(right, image_path)
    if len(node_path) == 1:
        base_left, base_right = [None], [None]
    elif not base_left and not base_right:
        return None
    runs_left = _child_runs(left, node_path[-1])
    runs_right = _child_runs(right, image_path[-1])
    if [tag for tag, _ in runs_left] != [tag for tag, _ in runs_right]:
        return EquivalenceResult(False, f"nodes {node_path[-1]} / {image_path[-1]} have different child types")
    rule_left = left.rule_for(*node_path[-1])
    rule_right = right.rule_for(*image_path[-1])
    parent_tag_left = node_path[-1][1]
    parent_tag_right = image_path[-1][1]
    for (tag, indices_left), (_, indices_right) in zip(runs_left, runs_right):
        union_left = _compose_run(rule_left, indices_left, parent_tag_left, base_left)
        union_right = _compose_run(rule_right, indices_right, parent_tag_right, base_right)
        if tag == TEXT_TAG:
            agree = ucq_equivalent(
                UnionOfConjunctiveQueries(union_left), UnionOfConjunctiveQueries(union_right)
            )
        else:
            agree = ucq_count_equivalent(union_left, union_right)
        if not agree:
            return EquivalenceResult(
                False,
                f"the queries spawning {tag!r} children of {node_path[-1]} differ "
                f"(path {' -> '.join(f'{s}/{t}' for s, t in node_path)})",
            )
    return None


def _compose_run(
    rule_,
    indices: list[int],
    parent_tag: str,
    base_queries: Sequence[ConjunctiveQuery | None],
) -> list[ConjunctiveQuery]:
    queries: list[ConjunctiveQuery] = []
    for index in indices:
        item = rule_.items[index]
        query = item.query.query
        if not isinstance(query, ConjunctiveQuery):
            raise ValueError("the equivalence procedure requires CQ rule queries")
        for base in base_queries:
            queries.append(compose_rule_query(query, parent_tag, base))
    return queries
