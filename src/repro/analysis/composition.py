"""Composition of rule queries along dependency-graph paths.

Several procedures of Section 5 analyse the conjunctive query obtained by
composing the rule queries along a path of the dependency graph: emptiness of
transducers with virtual nodes (Theorem 1(1)) checks satisfiability of such
compositions, and the equivalence characterisation of non-recursive CQ
transducers (Theorem 2, Claim 4) compares unions of them.

Composition replaces every occurrence of the register relation in a query by
the query that produced the parent register.  For tuple registers the register
holds exactly one tuple -- the head of the producing query -- so the
replacement is ordinary CQ unfolding; for relation registers the register
holds the full answer set, and an atom ``Reg(t)`` means "``t`` belongs to the
answer", which is the same unfolding.  (Satisfiability of the composed query
is therefore the right emptiness test in both cases, as used in the proofs.)
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dependency import DependencyGraph, Edge
from repro.core.rules import GENERIC_REGISTER_NAME
from repro.core.transducer import PublishingTransducer
from repro.logic.cq import ConjunctiveQuery, RelationAtom


class CompositionError(ValueError):
    """Raised when a path cannot be composed (non-CQ queries on the path)."""


def _as_cq(query, context: str) -> ConjunctiveQuery:
    if not isinstance(query, ConjunctiveQuery):
        raise CompositionError(f"{context}: path composition requires conjunctive queries")
    return query


def _register_names(parent_tag: str) -> frozenset[str]:
    return frozenset({GENERIC_REGISTER_NAME, f"Reg_{parent_tag}"})


def compose_rule_query(
    query: ConjunctiveQuery,
    parent_tag: str,
    parent_query: ConjunctiveQuery | None,
) -> ConjunctiveQuery:
    """Unfold the register atoms of ``query`` using ``parent_query``.

    ``parent_query`` is the composed query describing the content of the
    parent register (``None`` for children of the root, whose register is
    empty: register atoms then make the query unsatisfiable and are replaced
    by an explicit contradiction).
    """
    register_names = _register_names(parent_tag)
    uses_register = any(atom.relation in register_names for atom in query.atoms)
    if not uses_register:
        return query
    if parent_query is None:
        # The root register is empty; a query reading it returns nothing.
        from repro.logic.builders import empty_cq

        contradiction = empty_cq()
        return ConjunctiveQuery(
            query.head,
            tuple(atom for atom in query.atoms if atom.relation not in register_names),
            query.comparisons + contradiction.comparisons,
        )
    result = query
    for name in register_names:
        if any(atom.relation == name for atom in result.atoms):
            result = result.compose(name, parent_query)
    return result


def compose_path(
    transducer: PublishingTransducer,
    path: Sequence[Edge],
) -> ConjunctiveQuery:
    """The composed query ``Q_rho`` along a root-anchored dependency-graph path."""
    parent_query: ConjunctiveQuery | None = None
    for edge in path:
        parent_tag = edge.source[1]
        query = _as_cq(edge.query.query, f"edge {edge.source} -> {edge.target}")
        parent_query = compose_rule_query(query, parent_tag, parent_query)
    if parent_query is None:
        raise CompositionError("cannot compose an empty path")
    return parent_query


def composed_queries_to_tag(
    transducer: PublishingTransducer,
    tag: str,
    max_paths: int | None = 10_000,
) -> list[ConjunctiveQuery]:
    """All composed queries along simple root-anchored paths ending in ``tag``."""
    graph = DependencyGraph(transducer)
    queries = []
    for path in graph.paths_to_tag(tag, max_paths=max_paths):
        queries.append(compose_path(transducer, path))
    return queries
