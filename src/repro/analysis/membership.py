"""The membership problem (Theorem 1(2) and Theorem 2(3)).

*Membership*: given a Σ-tree ``t`` and a transducer ``tau``, is there an
instance ``I`` with ``tau(I) = t``?

The paper proves the problem Σ₂ᵖ-complete for ``PT(CQ, tuple, normal)`` and
``PTnr(CQ, tuple, O)`` and undecidable beyond (relation registers, virtual
nodes with recursion, FO/IFP).  The procedure implemented here follows the
Σ₂ᵖ algorithm of the proof:

1. a *small-model property*: if a witness instance exists then one exists
   with at most ``K * |t|`` tuples (``K * D * |t|`` with virtual nodes),
   where ``K`` bounds the number of source atoms per rule query and ``D`` is
   the depth of the dependency graph;
2. guess an instance within that bound and check ``tau(I) = t``.

The "guess" is realised two ways:

* a **constructive candidate** built by freezing the composed queries along
  each root-to-node path of ``t`` (fast; sound for the positive answer and
  sufficient for all canonical trees produced by a transducer);
* an optional **exhaustive search** over all instances within the small-model
  bound (exact but exponential -- the problem *is* Σ₂ᵖ-complete), enabled via
  ``exhaustive=True`` and governed by explicit budgets.

The result is a three-valued :class:`MembershipResult` so callers always know
whether an answer is definitive.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.analysis.complexity import DecisionProblem, UndecidableProblemError, complexity_of
from repro.analysis.composition import compose_rule_query
from repro.core.classes import classify
from repro.core.rules import GENERIC_REGISTER_NAME
from repro.core.runtime import TransformationLimitError
from repro.core.transducer import PublishingTransducer
from repro.engine.plan import PublishingPlan, compile_plan
from repro.logic.cq import ConjunctiveQuery, equality
from repro.logic.terms import Constant
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema, RelationalSchema
from repro.xmltree.tree import TEXT_TAG, TreeNode


class MembershipStatus(enum.Enum):
    """Outcome of the membership analysis."""

    MEMBER = "member"
    NOT_MEMBER = "not-member"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class MembershipResult:
    """Result of :func:`is_member` with an optional witness instance."""

    status: MembershipStatus
    witness: Instance | None = None
    note: str = ""

    @property
    def is_member(self) -> bool:
        """True when a witness instance was found."""
        return self.status is MembershipStatus.MEMBER


def is_member(
    transducer: PublishingTransducer,
    tree: TreeNode,
    exhaustive: bool = False,
    max_domain_size: int = 6,
    max_tuples: int = 6,
    max_candidates: int = 200_000,
) -> MembershipResult:
    """Decide (within budgets) whether some instance publishes exactly ``tree``."""
    fragment = classify(transducer)
    entry = complexity_of(DecisionProblem.MEMBERSHIP, fragment)
    if not entry.bound.decidable:
        raise UndecidableProblemError(DecisionProblem.MEMBERSHIP, fragment, entry.reference)

    if tree.label != transducer.root_tag:
        return MembershipResult(MembershipStatus.NOT_MEMBER, note="root tag mismatch")
    if not tree.labels() <= transducer.normal_tags():
        return MembershipResult(
            MembershipStatus.NOT_MEMBER, note="the tree uses tags the transducer cannot emit"
        )

    assignment = _assign_states(transducer, tree)
    if assignment is None and not transducer.uses_virtual_nodes():
        return MembershipResult(
            MembershipStatus.NOT_MEMBER,
            note="no consistent assignment of tree nodes to transduction rules",
        )

    schema = source_schema(transducer)
    # One compiled plan serves every candidate check of this call: the NP
    # oracle step re-runs the same transducer over many guessed instances,
    # which is exactly the engine's compile-once/run-many split.
    plan = compile_plan(
        transducer, max_nodes=max(10_000, 50 * tree.size()), cache_instances=2
    )

    # Constructive candidate: freeze composed queries along the tree's paths.
    if assignment is not None:
        candidate = _constructive_candidate(transducer, tree, assignment, schema)
        if candidate is not None and _produces(plan, candidate, tree):
            return MembershipResult(MembershipStatus.MEMBER, witness=candidate)

    if not exhaustive:
        return MembershipResult(
            MembershipStatus.UNKNOWN,
            note="constructive candidates failed; re-run with exhaustive=True for an exact answer",
        )

    found, complete = _exhaustive_search(
        transducer, plan, tree, schema, max_domain_size, max_tuples, max_candidates
    )
    if found is not None:
        return MembershipResult(MembershipStatus.MEMBER, witness=found)
    if complete:
        return MembershipResult(
            MembershipStatus.NOT_MEMBER, note="exhaustive search within the small-model bound"
        )
    return MembershipResult(
        MembershipStatus.UNKNOWN, note="search budget exhausted before covering the small model bound"
    )


# ---------------------------------------------------------------------------
# Structural assignment of tree nodes to rules.
# ---------------------------------------------------------------------------


def _assign_states(
    transducer: PublishingTransducer, tree: TreeNode
) -> dict[int, tuple[str, str]] | None:
    """Assign a ``(state, tag)`` pair to every tree node consistently with the rules.

    Children must be attributable to right-hand-side items of the parent's
    rule in a left-to-right, item-order-monotone fashion.  Returns a mapping
    from ``id(node)`` to the pair, or ``None`` when no assignment exists.
    """
    assignment: dict[int, tuple[str, str]] = {}

    def assign(node: TreeNode, state: str, tag: str) -> bool:
        if node.label != tag:
            return False
        assignment[id(node)] = (state, tag)
        rule_ = transducer.rule_for(state, tag)
        items = rule_.items
        item_index = 0
        for child in node.children:
            progressed = False
            while item_index < len(items):
                item = items[item_index]
                if item.tag == child.label and assign(child, item.state, item.tag):
                    progressed = True
                    break
                item_index += 1
            if not progressed:
                return False
        return True

    if assign(tree, transducer.start_state, transducer.root_tag):
        return assignment
    return None


# ---------------------------------------------------------------------------
# Candidate construction.
# ---------------------------------------------------------------------------


def source_schema(transducer: PublishingTransducer) -> RelationalSchema:
    """Reconstruct the source schema (names and arities) from the rule queries.

    Shared with the emptiness analysis, which freezes composed queries over
    this schema to produce concrete witness instances.
    """
    arities: dict[str, int] = {}
    for rule_query in transducer.all_rule_queries():
        query = rule_query.query
        if not isinstance(query, ConjunctiveQuery):
            continue
        for atom in query.atoms:
            if atom.relation == GENERIC_REGISTER_NAME or atom.relation.startswith("Reg_"):
                continue
            arities.setdefault(atom.relation, atom.arity)
    return RelationalSchema(RelationSchema(name, arity) for name, arity in arities.items())


def _constructive_candidate(
    transducer: PublishingTransducer,
    tree: TreeNode,
    assignment: dict[int, tuple[str, str]],
    schema: RelationalSchema,
) -> Instance | None:
    """Build a candidate instance by freezing one rule query per tree node.

    The tree is walked top-down carrying a *concrete* register tuple for every
    node: a child's rule query is grounded by replacing register atoms with
    the parent's concrete register values, then frozen with fresh constants
    (this contributes the child's "source tuples" in the sense of Claim 2).
    PCDATA of text children is used to pin the frozen value of unary
    registers, so trees whose text content carries data values can be hit
    exactly.
    """
    counter = itertools.count()
    data: dict[str, set[tuple[DataValue, ...]]] = {name: set() for name in schema}

    def ground_register(query: ConjunctiveQuery, parent_tag: str, register: tuple) -> ConjunctiveQuery | None:
        register_names = {GENERIC_REGISTER_NAME, f"Reg_{parent_tag}"}
        atoms = []
        comparisons = list(query.comparisons)
        for atom in query.atoms:
            if atom.relation in register_names:
                if len(atom.terms) != len(register):
                    return None
                for term, value in zip(atom.terms, register):
                    comparisons.append(equality(term, Constant(value)))
            else:
                atoms.append(atom)
        return ConjunctiveQuery(query.head, tuple(atoms), tuple(comparisons))

    def visit(node: TreeNode, register: tuple) -> bool:
        state, tag = assignment[id(node)]
        rule_ = transducer.rule_for(state, tag)
        for child in node.children:
            if child.label == TEXT_TAG and id(child) not in assignment:
                continue
            child_state, child_tag = assignment[id(child)]
            item = next(
                (i for i in rule_.items if (i.state, i.tag) == (child_state, child_tag)), None
            )
            if item is None:
                return False
            query = item.query.query
            if not isinstance(query, ConjunctiveQuery):
                return False
            grounded = ground_register(query, tag, register)
            if grounded is None or not grounded.is_satisfiable():
                return False
            text_values = _text_values(child)
            preset = {}
            if text_values is not None and len(grounded.head) == 1 and len(text_values) == 1:
                preset = {grounded.head[0]: text_values[0]}
            frozen, valuation = grounded.canonical_instance(
                schema, preset, prefix=f"_m{next(counter)}_"
            )
            for name in schema:
                data[name] |= set(frozen[name].tuples)
            child_register = tuple(valuation[v] for v in grounded.head)
            if not visit(child, child_register):
                return False
        return True

    if not visit(tree, ()):
        return None
    return Instance(schema, data)


def _text_values(node: TreeNode) -> list[str] | None:
    """PCDATA carried by the text children of ``node`` (None when there are none)."""
    values = [child.text for child in node.children if child.label == TEXT_TAG and child.text]
    return values or None


def _produces(plan: PublishingPlan, instance: Instance, tree: TreeNode) -> bool:
    """Check ``tau(I) = t`` exactly (the NP-oracle step of the proof)."""
    try:
        produced = plan.publish(instance)
    except TransformationLimitError:
        return False
    return _trees_equal_modulo_text(produced, tree)


def _trees_equal_modulo_text(left: TreeNode, right: TreeNode) -> bool:
    """Structural equality; text leaves compare equal when either side omits PCDATA."""
    if left.label != right.label:
        return False
    if left.label == TEXT_TAG:
        if left.text is None or right.text is None:
            return True
        return left.text == right.text
    if len(left.children) != len(right.children):
        return False
    return all(
        _trees_equal_modulo_text(a, b) for a, b in zip(left.children, right.children)
    )


# ---------------------------------------------------------------------------
# Exhaustive small-model search.
# ---------------------------------------------------------------------------


def _exhaustive_search(
    transducer: PublishingTransducer,
    plan: PublishingPlan,
    tree: TreeNode,
    schema: RelationalSchema,
    max_domain_size: int,
    max_tuples: int,
    max_candidates: int,
) -> tuple[Instance | None, bool]:
    """Enumerate instances within the small-model bound; returns (witness, complete?)."""
    constants: set[DataValue] = set()
    for rule_query in transducer.all_rule_queries():
        constants |= set(rule_query.query.constants())
    for node in tree.walk():
        if node.label == TEXT_TAG and node.text:
            constants.add(node.text)
    source_atom_bound = max(
        (
            len([a for a in q.query.atoms if not a.relation.startswith("Reg") and a.relation != GENERIC_REGISTER_NAME])
            for q in transducer.all_rule_queries()
            if isinstance(q.query, ConjunctiveQuery)
        ),
        default=1,
    )
    small_model_tuples = max(1, source_atom_bound) * tree.size()
    needed_fresh = min(max_domain_size, small_model_tuples)
    domain = sorted(constants, key=repr) + [f"_u{i}" for i in range(needed_fresh)]
    tuple_budget = min(max_tuples, small_model_tuples)
    complete = tuple_budget >= small_model_tuples and len(domain) >= small_model_tuples + len(constants)

    all_possible: list[tuple[str, tuple[DataValue, ...]]] = []
    for name in schema:
        arity = schema.arity(name)
        for combo in itertools.product(domain, repeat=arity):
            all_possible.append((name, combo))

    prefilter = _start_query_prefilter(transducer, tree)
    candidates_checked = 0
    for size in range(0, tuple_budget + 1):
        for selection in itertools.combinations(all_possible, size):
            candidates_checked += 1
            if candidates_checked > max_candidates:
                return None, False
            data: dict[str, set[tuple[DataValue, ...]]] = {name: set() for name in schema}
            for name, row in selection:
                data[name].add(row)
            instance = Instance(schema, data)
            if prefilter is not None and not any(run(instance) for run in prefilter):
                # The root would stay childless on this candidate; skip the
                # (much more expensive) publish-and-compare oracle step.
                continue
            if _produces(plan, instance, tree):
                return instance, True
    return None, complete


def _start_query_prefilter(transducer: PublishingTransducer, tree: TreeNode):
    """Planned start-rule queries used to discard hopeless candidates early.

    The root's children are produced exclusively by the start rule's queries,
    and the root register is empty, so a query reading ``Reg`` cannot fire --
    direct evaluation on the bare candidate agrees with the engine's empty
    register overlay for the CQ queries of the decidable membership
    fragments.  Returns ``None`` (no prefiltering) when the target tree is a
    bare root or a start query is not a CQ.
    """
    if not tree.children:
        return None
    start_rule = transducer.rule_for(transducer.start_state, transducer.root_tag)
    runs = []
    for item in start_rule.items:
        query = item.query.query
        if not isinstance(query, ConjunctiveQuery):
            return None
        # evaluate() is plan-first (the plan is cached on the query object).
        runs.append(query.evaluate)
    return runs or None
