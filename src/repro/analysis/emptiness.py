"""The emptiness problem (Section 5.2, Theorem 1(1) and Theorem 2(2)).

*Emptiness*: given a transducer ``tau``, is there an instance ``I`` with
``tau(I)`` different from the single-node root tree?

* ``PT(CQ, S, normal)`` -- decidable in PTIME: the output is non-trivial iff
  some query of the *start rule* is satisfiable (normal children are never
  removed), and CQ satisfiability is a quadratic syntactic check.
* ``PT(CQ, S, virtual)`` -- NP-complete: the output is non-trivial iff some
  simple path of the dependency graph from the root to a *non-virtual* node
  has a satisfiable composed query; the procedure enumerates those paths
  (the NP guess) and checks satisfiability of each composition.
* ``FO`` / ``IFP`` fragments -- undecidable (Proposition 2);
  :class:`UndecidableProblemError` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.complexity import DecisionProblem, UndecidableProblemError, complexity_of
from repro.analysis.composition import compose_path, compose_rule_query
from repro.analysis.membership import source_schema
from repro.core.classes import OutputKind, classify
from repro.core.dependency import DependencyGraph, Edge
from repro.core.transducer import PublishingTransducer
from repro.logic.base import QueryLogic
from repro.logic.cq import ConjunctiveQuery
from repro.relational.instance import Instance


@dataclass(frozen=True)
class EmptinessResult:
    """Outcome of the emptiness analysis."""

    empty: bool
    witness_path: tuple[Edge, ...] | None = None
    witness_query: ConjunctiveQuery | None = None
    witness_instance: Instance | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.empty


def is_empty(transducer: PublishingTransducer, max_paths: int | None = 100_000) -> EmptinessResult:
    """Decide emptiness for CQ transducers; raise for undecidable fragments.

    Returns an :class:`EmptinessResult`; when the transducer is *not* empty
    the result carries a witness path of the dependency graph whose composed
    query is satisfiable (for the virtual case) or the satisfiable start-rule
    query (for the normal case).
    """
    fragment = classify(transducer)
    entry = complexity_of(DecisionProblem.EMPTINESS, fragment)
    if not entry.bound.decidable:
        raise UndecidableProblemError(DecisionProblem.EMPTINESS, fragment, entry.reference)

    if fragment.output is OutputKind.NORMAL:
        return _emptiness_normal(transducer)
    return _emptiness_virtual(transducer, max_paths)


def _emptiness_normal(transducer: PublishingTransducer) -> EmptinessResult:
    """PTIME procedure: some start-rule query satisfiable <=> non-empty."""
    graph = DependencyGraph(transducer)
    for edge in graph.edges_from(graph.root):
        query = edge.query.query
        if not isinstance(query, ConjunctiveQuery):
            continue
        # The root register is empty, so register atoms in a start-rule query
        # can never be satisfied; compose_rule_query turns them into an
        # explicit contradiction before the satisfiability check.
        grounded = compose_rule_query(query, transducer.root_tag, None)
        if grounded.is_satisfiable():
            return EmptinessResult(
                empty=False,
                witness_path=(edge,),
                witness_query=grounded,
                witness_instance=_witness_instance(transducer, grounded),
            )
    return EmptinessResult(empty=True)


def _emptiness_virtual(
    transducer: PublishingTransducer, max_paths: int | None
) -> EmptinessResult:
    """NP procedure: a simple path to a non-virtual node with satisfiable composition."""
    graph = DependencyGraph(transducer)
    virtual = transducer.virtual_tags
    paths = graph.simple_paths_from_root(
        target_predicate=lambda node: node[1] not in virtual, max_paths=max_paths
    )
    # Shorter paths first: their compositions are smaller and more often satisfiable.
    for path in sorted(paths, key=len):
        composed = compose_path(transducer, path)
        if composed.is_satisfiable():
            return EmptinessResult(
                empty=False,
                witness_path=path,
                witness_query=composed,
                witness_instance=_witness_instance(transducer, composed),
            )
    return EmptinessResult(empty=True)


def witness_instance(
    transducer: PublishingTransducer,
    query: ConjunctiveQuery,
    prefix: str = "_v",
) -> Instance | None:
    """A concrete source instance on which ``query`` fires.

    The public face of the witness machinery: the satisfiable (usually
    path-composed) query is frozen into its canonical database over the
    transducer's reconstructed source schema, then re-checked through the
    shared query planner; ``None`` when the construction does not verify
    (verdicts that use witnesses never depend on this succeeding).  The
    typechecker (:mod:`repro.typecheck`) and tests build counterexample
    sources through this helper; ``prefix`` names the frozen constants, so
    two differently-prefixed witnesses can be unioned into one instance with
    disjoint, multiplicity-bearing facts.
    """
    schema = source_schema(transducer)
    try:
        frozen, _ = query.canonical_instance(schema, prefix=prefix)
    except Exception:  # out-of-schema atoms: the witness is only best-effort
        return None
    # evaluate() is plan-first (the plan is cached on the query object).
    return frozen if query.evaluate(frozen) else None


#: Backwards-compatible private alias (pre-publication name).
_witness_instance = witness_instance
