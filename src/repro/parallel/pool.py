"""A process worker pool for the publishing stack (stdlib only).

The paper's transducers are confluent: every ``(state, tag, register)``
expansion is a pure function of its own triple over an immutable MVCC
snapshot.  That makes three levels of the stack embarrassingly parallel --
sibling subtrees of one publish, independent ``publish()`` calls of a
:class:`~repro.serve.server.ViewServer`, and per-``(view, source, binding)``
subscriber groups of the network tier -- provided the compiled artefacts
can cross a process boundary.  They can: plans pickle without their caches
(:meth:`PublishingPlan.__getstate__`), instances and
:class:`~repro.relational.columnar.DictionaryEncoder` decode tables are
plain data, and encoded registers are int-only.

Design:

* **explicit workers, explicit shipping.**  Each worker is one forked (or
  spawned) process holding a *registry* of installed objects.  The parent
  pickles a plan or instance **once** (:meth:`WorkerPool.install`) and
  ships the payload lazily to each worker the first time a task routed
  there needs it -- "shipped once per worker", never once per task.
* **sharded dispatch.**  :meth:`WorkerPool.submit` takes an optional
  ``key``; equal keys always land on the same worker (`crc32` of the key's
  ``repr``), which gives subscriber groups a stable owner and publish
  storms cache affinity (same view -> same worker-side memo).  Keyless
  tasks round-robin over live workers.
* **graceful degradation.**  A dead worker fails its in-flight futures
  with :class:`WorkerCrashed`; later submits re-route to surviving
  workers (re-shipping whatever the task needs).  When nothing survives,
  :class:`PoolBroken` is raised and callers fall back to the serial path
  -- the contract every call site of ``repro.parallel`` honours.
* **merged observability.**  Every task reply piggybacks the delta of the
  worker's plan cache counters since its previous reply; the pool sums
  them (:meth:`WorkerPool.stats`), so ``ViewServer.stats()`` reports the
  whole fleet's cache behaviour, not just the parent process.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import traceback
from concurrent.futures import Future
from zlib import crc32


class NotShippable(RuntimeError):
    """The object cannot be pickled across the process boundary.

    Raised by :meth:`WorkerPool.install`; call sites catch it and run the
    task serially in the parent.
    """


class PoolBroken(RuntimeError):
    """No live worker is left to take tasks."""


class WorkerCrashed(RuntimeError):
    """The worker owning this task died before replying."""


class WorkerTaskError(RuntimeError):
    """The task raised in the worker; carries the worker-side traceback."""

    def __init__(self, message: str, worker_traceback: str) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


class _InstallFailed:
    """Registry marker: the payload for this token failed to unpickle."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


def _registry_get(registry: dict, token: int):
    found = registry.get(token)
    if found is None:
        raise KeyError(f"token {token} was never installed in this worker")
    if isinstance(found, _InstallFailed):
        raise RuntimeError(f"install of token {token} failed: {found.reason}")
    return found


def _cache_stats_delta(registry: dict, last: dict) -> dict:
    """The per-plan cache-counter movement since the previous task reply."""
    delta: dict[str, int] = {}
    for token, obj in registry.items():
        stats = getattr(obj, "cache_stats", None)
        if stats is None or not hasattr(stats, "as_dict"):
            continue
        current = stats.as_dict()
        previous = last.get(token, {})
        for field, value in current.items():
            if isinstance(value, float):
                continue  # derived ratios: summing them is meaningless
            moved = value - previous.get(field, 0)
            if moved:
                delta[field] = delta.get(field, 0) + moved
        last[token] = current
    return delta


def _worker_main(conn) -> None:
    """The worker loop: installs objects, runs named task handlers.

    Handlers live in :mod:`repro.parallel.tasks` (imported here so a
    ``spawn``-started worker resolves them by module path, never by
    pickling code objects).  Replies are ``("ok", task_id, result,
    stats_delta)`` or ``("err", task_id, message, traceback)``.
    """
    from repro.parallel.tasks import HANDLERS

    registry: dict = {}
    last_stats: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "exit":
            break
        if kind == "install":
            _, token, payload = message
            try:
                registry[token] = pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                registry[token] = _InstallFailed(repr(exc))
            continue
        _, task_id, name, args, kwargs = message
        try:
            handler = HANDLERS[name]
            result = handler(registry, *args, **kwargs)
            reply = ("ok", task_id, result, _cache_stats_delta(registry, last_stats))
        except Exception as exc:  # noqa: BLE001 - shipped back as the outcome
            # Ship the exception object itself when it pickles, so the
            # parent re-raises the real type (node-budget errors must look
            # identical to a serial publish); fall back to its repr.
            try:
                pickle.dumps(exc)
                reply = ("err", task_id, exc, traceback.format_exc())
            except Exception:
                reply = ("err", task_id, repr(exc), traceback.format_exc())
        try:
            conn.send(reply)
        except Exception as exc:  # result not picklable: still answer
            try:
                conn.send(("err", task_id, f"reply not shippable: {exc!r}", ""))
            except Exception:
                break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("index", "process", "conn", "send_lock", "installed", "alive", "tasks")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.installed: set[int] = set()
        self.alive = True
        self.tasks = 0


class WorkerPool:
    """A pool of worker processes with sticky sharding and lazy shipping.

    ``workers`` defaults to the process's effective CPU count.  The pool
    starts lazily on first use; ``close()`` (or use as a context manager)
    shuts the fleet down.  All public methods are thread-safe: the serving
    layer calls into one pool from many request threads.
    """

    def __init__(self, workers: int | None = None, start_method: str | None = None):
        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except (AttributeError, OSError):
                workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._size = workers
        self._start_method = start_method
        self._workers: list[_Worker] = []
        self._started = False
        self._closed = False
        self._lock = threading.Lock()
        self._pending: dict[int, tuple[Future, _Worker]] = {}
        self._task_ids = itertools.count(1)
        self._token_ids = itertools.count(1)
        self._round_robin = itertools.count()
        # token -> (object, payload).  The object reference keeps id()s
        # stable for the identity-keyed lookup below.
        self._installed: dict[int, tuple[object, bytes]] = {}
        self._tokens_by_id: dict[int, int] = {}
        self._counters = {
            "tasks_dispatched": 0,
            "installs_shipped": 0,
            "failures": 0,
            "span_merges": 0,
        }
        self._worker_cache: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def size(self) -> int:
        """How many workers the pool runs."""
        return self._size

    def _start(self) -> None:
        import multiprocessing as mp

        method = self._start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(method)
        for index in range(self._size):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            worker = _Worker(index, process, parent_conn)
            self._workers.append(worker)
            reader = threading.Thread(
                target=self._read_replies, args=(worker,), daemon=True
            )
            reader.start()
        self._started = True

    def close(self) -> None:
        """Shut every worker down and fail whatever is still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            if worker.alive:
                try:
                    with worker.send_lock:
                        worker.conn.send(("exit",))
                except (OSError, ValueError):
                    pass
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            self._mark_dead(worker)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shipping ------------------------------------------------------------

    def install(self, obj) -> int:
        """Register ``obj`` for worker use; returns its token.

        The object is pickled once, here -- a failure raises
        :class:`NotShippable` *before* any worker is involved, which is the
        serial-fallback signal.  The payload ships to each worker lazily on
        first use.  Idempotent per object (identity-keyed), and the pool
        keeps the object alive so the identity key stays valid.
        """
        with self._lock:
            token = self._tokens_by_id.get(id(obj))
            if token is not None and self._installed[token][0] is obj:
                return token
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise NotShippable(f"cannot ship {type(obj).__name__}: {exc!r}") from exc
        with self._lock:
            token = self._tokens_by_id.get(id(obj))
            if token is not None and self._installed[token][0] is obj:
                return token
            token = next(self._token_ids)
            self._installed[token] = (obj, payload)
            self._tokens_by_id[id(obj)] = token
        return token

    def _ship(self, worker: _Worker, tokens) -> None:
        """Send any not-yet-shipped payloads to ``worker`` (FIFO-ordered
        ahead of the task that needs them, so no acknowledgement round
        trip is required)."""
        for token in tokens:
            if token in worker.installed:
                continue
            with self._lock:
                entry = self._installed.get(token)
            if entry is None:
                raise KeyError(f"unknown install token {token}")
            try:
                with worker.send_lock:
                    worker.conn.send(("install", token, entry[1]))
            except (OSError, ValueError) as exc:
                # The reader thread marks a dead worker asynchronously, so a
                # crash can surface here first, as a broken pipe.
                self._mark_dead(worker)
                raise WorkerCrashed(
                    f"worker {worker.index} is gone: {exc!r}"
                ) from exc
            worker.installed.add(token)
            with self._lock:
                self._counters["installs_shipped"] += 1

    # -- dispatch ------------------------------------------------------------

    def submit(self, name: str, *args, key=None, tokens=(), **kwargs) -> Future:
        """Run handler ``name`` (see :mod:`repro.parallel.tasks`) remotely.

        ``tokens`` lists the installed objects the task dereferences; they
        are shipped to the chosen worker first if it has never seen them.
        ``key`` pins the task to a shard (stable across calls); without it
        the task round-robins.  Returns a standard
        :class:`concurrent.futures.Future`.
        """
        if self._closed:
            raise PoolBroken("the pool is closed")
        with self._lock:
            if not self._started:
                self._start()
        worker = self._worker_for(key)
        self._ship(worker, tokens)
        task_id = next(self._task_ids)
        future: Future = Future()
        with self._lock:
            self._pending[task_id] = (future, worker)
            self._counters["tasks_dispatched"] += 1
        worker.tasks += 1
        try:
            with worker.send_lock:
                worker.conn.send(("task", task_id, name, args, kwargs))
        except (OSError, ValueError) as exc:
            with self._lock:
                self._pending.pop(task_id, None)
            self._mark_dead(worker)
            raise WorkerCrashed(f"worker {worker.index} is gone: {exc!r}") from exc
        return future

    def _worker_for(self, key) -> _Worker:
        live = [worker for worker in self._workers if worker.alive]
        if not live:
            raise PoolBroken("every worker has died")
        if key is None:
            return live[next(self._round_robin) % len(live)]
        shard = crc32(repr(key).encode("utf-8", "backslashreplace"))
        # Shard over the *configured* size so the mapping is stable while
        # all workers live; fall through to the live list after a crash.
        preferred = self._workers[shard % self._size]
        if preferred.alive:
            return preferred
        return live[shard % len(live)]

    # -- replies -------------------------------------------------------------

    def _read_replies(self, worker: _Worker) -> None:
        while True:
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                break
            kind, task_id, payload, extra = reply
            with self._lock:
                entry = self._pending.pop(task_id, None)
                if kind == "ok" and isinstance(extra, dict):
                    for field, moved in extra.items():
                        self._worker_cache[field] = (
                            self._worker_cache.get(field, 0) + moved
                        )
                if kind == "err":
                    self._counters["failures"] += 1
            if entry is None:
                continue
            future = entry[0]
            if kind == "ok":
                future.set_result(payload)
            elif isinstance(payload, BaseException):
                future.set_exception(payload)
            else:
                future.set_exception(WorkerTaskError(payload, extra))
        self._mark_dead(worker)

    def _mark_dead(self, worker: _Worker) -> None:
        orphaned: list[Future] = []
        with self._lock:
            first_death = worker.alive
            worker.alive = False
            worker.installed.clear()
            for task_id, (future, owner) in list(self._pending.items()):
                if owner is worker:
                    del self._pending[task_id]
                    orphaned.append(future)
            if first_death and not self._closed:
                self._counters["failures"] += 1
        for future in orphaned:
            if not future.done():
                future.set_exception(
                    WorkerCrashed(f"worker {worker.index} died mid-task")
                )

    # -- observability -------------------------------------------------------

    def note_merges(self, count: int) -> None:
        """Record parent-side re-installs of worker-rendered spans."""
        if count:
            with self._lock:
                self._counters["span_merges"] += count

    @property
    def broken(self) -> bool:
        """Whether no worker is left to take tasks."""
        if not self._started:
            return self._closed
        return not any(worker.alive for worker in self._workers)

    def stats(self) -> dict:
        """Aggregate pool counters plus the merged per-worker cache stats."""
        with self._lock:
            return {
                "workers": self._size,
                "alive": sum(1 for worker in self._workers if worker.alive)
                if self._started
                else self._size,
                "started": self._started,
                "tasks_per_worker": [worker.tasks for worker in self._workers],
                "worker_cache": dict(self._worker_cache),
                **self._counters,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("live" if self._started else "cold")
        return f"WorkerPool(workers={self._size}, {state})"
