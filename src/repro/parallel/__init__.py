"""Multi-core publishing: a stdlib process pool over the compiled stack.

Three parallel surfaces, one pool (:class:`WorkerPool`):

* :func:`parallel_publish_bytes` fans the sibling subtrees of one publish
  across workers (confluent expansions over an immutable snapshot are
  embarrassingly parallel) and splices the spans byte-identically;
* ``ViewServer(pool=...)`` (:mod:`repro.serve.server`) runs batches of
  ``publish()`` calls for different views/versions concurrently
  (:meth:`~repro.serve.server.ViewServer.publish_batch`);
* ``NetServer(pool=...)`` (:mod:`repro.serve.net.app`) shards per-commit
  subscriber delivery by ``(view, source, binding)`` group.

Everything degrades to the serial path when the pool is absent, broken, or
a task is not shippable (:class:`NotShippable`); output bytes never change.
"""

from repro.parallel.pool import (
    NotShippable,
    PoolBroken,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
)
from repro.parallel.publish import parallel_publish_bytes

__all__ = [
    "NotShippable",
    "PoolBroken",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerTaskError",
    "parallel_publish_bytes",
]
