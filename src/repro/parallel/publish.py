"""Parallel subtree expansion: one publish fanned across the worker pool.

Confluence is the whole trick.  Every child of the root expands as a pure
function of its own ``(state, tag, register)`` triple over the snapshot, so
the root's sibling subtrees -- including the Proposition-1 blow-up fan-outs
-- can render in different processes and splice back in document order.
The parent renders only the root frame itself: it runs the root expansion,
hands contiguous runs of element children to the pool
(:func:`repro.parallel.tasks._render_spans` -> worker-side
:func:`repro.engine.emit.render_subtree` with the root triple blocked for
stop-condition safety), renders text children from its own interned
fragments, and replays the exact close algebra of the serial driver --
empty / inline / mixed -- over the returned
:class:`~repro.engine.emit.SpanResult`\\ s.  Node-budget charges are applied
in document order from the same cursor, so the budget raises (or does not)
exactly as a serial publish would.

The output is byte-identical to ``plan.publish_bytes`` by construction;
:func:`parallel_publish_bytes` falls back to the serial driver whenever the
pool cannot help (no pool, a virtual/text root, fewer than two element
children, unpicklable artefacts, or a mid-flight worker crash).  Returned
spans are merged into the parent's rendered-span cache, so a later serial
publish or republish of the same version is cache-hot.
"""

from __future__ import annotations

from repro.engine.emit import _RenderEntry, _confirmed_entry
from repro.parallel.pool import (
    NotShippable,
    PoolBroken,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
)
from repro.xmltree.tree import TEXT_TAG

#: Pool dispatch needs at least this many element children to beat the
#: serial driver (two: anything less has no sibling parallelism).
_MIN_FANOUT = 2


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for index in range(chunks):
        end = start + size + (1 if index < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def parallel_publish_bytes(
    plan,
    instance,
    pool: WorkerPool | None,
    *,
    indent: int | None = 2,
    max_nodes: int | None = None,
) -> str:
    """``plan.publish_bytes(instance)`` with sibling subtrees on the pool.

    Byte-identical to the serial driver on every backend; serial fallback
    whenever the pool is absent, broken, or the task is not shippable.
    """
    serial = lambda: plan.publish_bytes(instance, indent=indent, max_nodes=max_nodes)
    if pool is None or pool.broken:
        return serial()
    virtual = plan._virtual
    if plan._root_tag in virtual or plan._root_tag == TEXT_TAG:
        return serial()  # spliced-root documents keep the serialiser path

    state = plan._instance_state(instance)
    budget = plan._max_nodes if max_nodes is None else max_nodes
    pretty = indent is not None
    root_triple = plan._root_triple()
    root_key = (indent, root_triple, 0)
    if _confirmed_entry(plan, state, root_key) is not None:
        return serial()  # cache-hot: the serial fast path is a dict lookup

    expansion = plan._expansion(state, root_triple)
    children = list(expansion)
    element_positions = [
        position
        for position, child in enumerate(children)
        if child[1] != TEXT_TAG and child != root_triple
    ]
    if len(element_positions) < _MIN_FANOUT:
        return serial()

    try:
        plan_token = pool.install(plan)
        instance_token = pool.install(instance)
    except NotShippable:
        return serial()

    child_level = 1 if pretty else 0
    blocked = (root_triple,)

    # Reuse parent-cached spans; dispatch only the cold subtrees.
    spans: dict[int, object] = {}
    dispatch: list[int] = []
    parent_hits = 0
    for position in element_positions:
        child = children[position]
        entry = _confirmed_entry(plan, state, (indent, child, child_level))
        if entry is not None and root_triple not in entry.triples:
            spans[position] = entry
            parent_hits += 1
        else:
            dispatch.append(position)

    merged = 0
    if dispatch:
        batches = _chunked(dispatch, pool.size * 2)
        futures = []
        try:
            for batch in batches:
                futures.append(
                    (
                        batch,
                        pool.submit(
                            "render_spans",
                            plan_token,
                            instance_token,
                            [children[position] for position in batch],
                            child_level,
                            indent,
                            budget,
                            blocked,
                            tokens=(plan_token, instance_token),
                        ),
                    )
                )
        except (PoolBroken, WorkerCrashed):
            return serial()
        for batch, future in futures:
            try:
                results = future.result()
            except (PoolBroken, WorkerCrashed, WorkerTaskError):
                # The worker died (or could not ship its reply): render
                # this batch in-process; real publish errors (budget and
                # friends) arrive as their own exception types and raise.
                from repro.engine.emit import render_subtree

                results = [
                    render_subtree(
                        plan, state, budget, indent, children[position],
                        child_level, blocked,
                    )
                    for position in batch
                ]
            for position, result in zip(batch, results):
                spans[position] = result
                # Merge the worker's span into this process's cache so the
                # next (serial or incremental) publish of this version is
                # warm.  Mirrors the serial driver's cacheability rules.
                if result.triples is not None:
                    state.renders[(indent, children[position], child_level)] = (
                        _RenderEntry(
                            (result.span,),
                            result.texts,
                            result.triples,
                            result.weight,
                            result.opened,
                        )
                    )
                    merged += 1
        pool.note_merges(merged)

    # -- the root frame's close algebra, replayed over the results ----------
    encoder = state.encoder
    if encoder is not None:
        text_of = encoder.escaped_text
    else:
        from xml.sax.saxutils import escape

        from repro.relational.domain import relation_to_text

        fragments = state.text_fragments

        def text_of(register):
            found = fragments.get(register)
            if found is None:
                found = fragments[register] = escape(relation_to_text(register))
            return found

    from repro.engine.plan import _SUBTREE_TRIPLE_LIMIT

    tag = root_triple[1]
    pad0 = "\n" if pretty else ""
    child_pad = "\n" + " " * indent if pretty else ""
    cursor = plan._cursor(state, budget)
    cursor.charge(len(expansion))
    out: list[str] = [""]  # the root placeholder, patched below
    texts: list | None = []
    triples: set | None = {root_triple}
    weight = len(expansion)
    opened = 1
    with plan._lock:
        plan._render_hits += parent_hits

    for position, child in enumerate(children):
        ctag = child[1]
        if ctag == TEXT_TAG:
            fragment = text_of(child[2])
            opened += 1
            if ctag in virtual:
                continue
            out.append(child_pad + fragment if pretty else fragment)
            if texts is not None:
                texts.append(fragment)
            continue
        if child == root_triple:
            # Stop condition directly under the root.
            triples = None
            opened += 1
            if ctag not in virtual:
                pad = child_pad if pretty else ""
                out.append(f"{pad}<{ctag}/>")
                texts = None
            continue
        result = spans[position]
        cursor.charge(result.weight)
        if isinstance(result, _RenderEntry):
            out.extend(result.chunks)
            saved = result.saved
        else:
            out.append(result.span)
            saved = result.opened
        weight += result.weight
        opened += saved
        if result.texts is None:
            texts = None
        elif texts is not None:
            texts.extend(result.texts)
        if triples is not None:
            if result.triples is None:
                triples = None
            else:
                triples |= result.triples
                if len(triples) > _SUBTREE_TRIPLE_LIMIT:
                    triples = None

    if texts is None:
        out[0] = f"{pad0}<{tag}>"
        out.append(f"{pad0}</{tag}>")
    elif texts:
        out = [f"{pad0}<{tag}>{''.join(texts)}</{tag}>"]
    else:
        out = [f"{pad0}<{tag}/>"]
    with plan._lock:
        plan._render_misses += 1

    from repro.engine.emit import _RENDER_SPAN_LIMIT

    document = "".join(out)
    if pretty:
        document = document[1:]
    if triples is not None and len(out) <= _RENDER_SPAN_LIMIT:
        entry = _RenderEntry(tuple(out), None, frozenset(triples), weight, opened)
        entry.document = document
        state.renders[root_key] = entry
    return document
