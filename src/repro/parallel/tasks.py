"""Worker-side task handlers of the :mod:`repro.parallel` pool.

Each handler is a named, module-level function so a worker started with any
``multiprocessing`` start method resolves it by import, never by pickling
code.  The first argument is always the worker's *registry* -- the token ->
object store filled by install messages (compiled plans, source instances,
their shared :class:`~repro.relational.columnar.DictionaryEncoder` decode
tables ride along inside the instance pickle).  Everything a handler
returns is plain picklable data; the parent never receives live caches,
only their rendered products plus the piggybacked cache-counter deltas
(:func:`repro.parallel.pool._cache_stats_delta`).
"""

from __future__ import annotations

from repro.parallel.pool import _registry_get

HANDLERS: dict = {}


def task(name: str):
    """Register a handler under ``name`` (the ``submit()`` routing key)."""

    def decorate(fn):
        HANDLERS[name] = fn
        return fn

    return decorate


@task("ping")
def _ping(registry, value=None):
    """Liveness probe; echoes ``value`` (tests and pool warm-up)."""
    return value


@task("publish_bytes")
def _publish_bytes(registry, plan_token, instance_token, indent=2, max_nodes=None):
    """One full serialised publish: the unit of a multi-view storm.

    The worker's plan copy keeps its own per-instance memo and rendered-span
    caches across tasks, so sharding a view to a stable worker
    (``submit(key=...)``) gives the same steady-state cache behaviour the
    serial server enjoys.
    """
    plan = _registry_get(registry, plan_token)
    instance = _registry_get(registry, instance_token)
    return plan.publish_bytes(instance, indent=indent, max_nodes=max_nodes)


@task("render_spans")
def _render_spans(
    registry, plan_token, instance_token, triples, level, indent, budget, blocked
):
    """Render sibling subtrees of one publish (parallel expansion).

    ``triples`` are encoded int-only (or row) register configurations --
    exactly the memo keys -- and ``blocked`` is the ancestor path, so the
    stop condition behaves as in a serial walk.  Returns one
    :class:`~repro.engine.emit.SpanResult` per triple, in order.
    """
    from repro.engine.emit import render_subtree

    plan = _registry_get(registry, plan_token)
    instance = _registry_get(registry, instance_token)
    state = plan._instance_state(instance)
    return [
        render_subtree(plan, state, budget, indent, triple, level, blocked)
        for triple in triples
    ]


@task("encode_events")
def _encode_events(registry, events):
    """Wire-encode one subscriber group's pending commit events.

    ``events`` is a list of ``(view, source, version, edits)`` tuples with
    the :class:`~repro.xmltree.diff.EditScript` pickled as-is; the worker
    produces the exact canonical-JSON WebSocket text frame the serial
    fan-out loop would (:func:`canonical_json` and the frame builder are
    deterministic), so pooled delivery is byte-identical on the wire.
    """
    from repro.relational.wire import canonical_json
    from repro.serve.net import protocol

    frames = []
    for view, source, version, edits in events:
        payload = canonical_json(
            {
                "type": "edits",
                "view": view,
                "source": source,
                "version": version,
                "empty": edits.is_empty(),
                "edits": edits.to_wire(),
            }
        )
        frames.append(protocol.ws_text_frame(payload))
    return frames
