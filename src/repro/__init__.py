"""repro -- a reproduction of "Expressiveness and Complexity of XML Publishing Transducers".

The package is organised by subsystem:

* :mod:`repro.relational` -- relational substrate (schemas, instances, algebra);
* :mod:`repro.logic` -- the query logics CQ, FO and IFP;
* :mod:`repro.query` -- the set-at-a-time query planner every layer
  evaluates relational queries through;
* :mod:`repro.datalog` -- Datalog / LinDatalog / LinDatalog(FO);
* :mod:`repro.xmltree` -- Sigma-trees, serialisation, DTDs and extended DTDs;
* :mod:`repro.core` -- publishing transducers ``PT(L, S, O)`` (the paper's
  primary contribution): rules, runtime, classification, relational view;
* :mod:`repro.engine` -- the compiled, streaming, batch-first publishing API
  (the primary evaluation surface: builder DSL, plans, event streams);
* :mod:`repro.incremental` -- delta-driven incremental view maintenance
  across all four layers (deltas, answer maintenance, republish, edit
  scripts);
* :mod:`repro.serve` -- the unified serving layer: a :class:`ViewServer`
  holding named views (from any front-end) over versioned sources, with
  snapshots, parameter bindings, subscriptions and aggregated stats;
* :mod:`repro.analysis` -- the Section 5 decision problems and Table II;
* :mod:`repro.transductions` -- logical transductions (Theorem 4);
* :mod:`repro.languages` -- the ten publishing-language front-ends (Table I);
* :mod:`repro.workloads` -- the registrar example and benchmark workloads;
* :mod:`repro.expressiveness` -- Table III and the separation witnesses.

The most common entry points are re-exported here for convenience.
"""

from repro.core import PublishingTransducer, classify, publish
from repro.engine import (
    CacheStats,
    Engine,
    PublishingPlan,
    RepublishResult,
    TransducerBuilder,
    compile_plan,
)
from repro.incremental import IncrementalPublisher
from repro.query import QueryPlan, plan_query
from repro.relational import Delta, Instance, RelationalSchema
from repro.serve import (
    ServerStats,
    SourceHandle,
    SourceVersion,
    Subscription,
    ViewServer,
)
from repro.xmltree import EditScript, diff_trees

__version__ = "1.4.0"

__all__ = [
    "CacheStats",
    "Delta",
    "EditScript",
    "Engine",
    "IncrementalPublisher",
    "Instance",
    "PublishingPlan",
    "PublishingTransducer",
    "QueryPlan",
    "RelationalSchema",
    "RepublishResult",
    "ServerStats",
    "SourceHandle",
    "SourceVersion",
    "Subscription",
    "TransducerBuilder",
    "ViewServer",
    "classify",
    "compile_plan",
    "diff_trees",
    "plan_query",
    "publish",
    "__version__",
]
