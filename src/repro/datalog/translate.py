"""The two translations of Theorem 3(2): ``PT(CQ, tuple, O)`` = LinDatalog.

* :func:`transducer_to_lindatalog` -- a tuple-register CQ transducer, viewed
  as a relational query with designated output label ``a_o``, becomes a
  linear Datalog program with one IDB predicate ``T`` encoding the reachable
  ``(state, tag, register)`` configurations plus the answer predicate.

* :func:`lindatalog_to_transducer` -- a LinDatalog program in the normal form
  of the proof (a single recursive IDB predicate ``S`` plus the output
  predicate ``ans``) becomes a ``PT(CQ, tuple, normal)`` transducer whose
  output relation for the designated tag equals the program's answer.

Both translations preserve the induced *relational query*; they do not (and
need not) preserve the generated trees.
"""

from __future__ import annotations

import itertools

from repro.core.dependency import DependencyGraph
from repro.core.rules import GENERIC_REGISTER_NAME, RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.base import QueryLogic
from repro.logic.cq import Comparison, ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Term, Variable

#: Constant used to pad registers up to the maximal register arity.
PAD = "_#"

#: Name of the configuration predicate of the forward translation.
CONFIGURATION_PREDICATE = "T"


class TranslationError(ValueError):
    """Raised when a transducer or program is outside the translatable fragment."""


# ---------------------------------------------------------------------------
# PT(CQ, tuple, O)  ->  LinDatalog.
# ---------------------------------------------------------------------------


def transducer_to_lindatalog(
    transducer: PublishingTransducer,
    output_tag: str,
    output_predicate: str = "ans",
) -> DatalogProgram:
    """Translate a tuple-register CQ transducer into an equivalent LinDatalog program.

    Equivalence is as relational queries: for every instance ``I`` the
    program's ``ans`` facts coincide with ``R_tau(I)`` for the designated
    ``output_tag``.  Raises :class:`TranslationError` when the transducer is
    not in ``PT(CQ, tuple, O)``.
    """
    if transducer.logic() != QueryLogic.CQ:
        raise TranslationError("the translation to LinDatalog needs CQ rule queries")
    if transducer.uses_relation_registers():
        raise TranslationError("the translation to LinDatalog needs tuple registers")
    if output_tag in transducer.virtual_tags:
        raise TranslationError("the output tag must not be virtual")

    max_arity = max(
        [transducer.register_arity(tag) for tag in transducer.alphabet] or [0]
    )
    config_vars = tuple(Variable(f"z{i}") for i in range(max_arity))

    rules: list[DatalogRule] = []
    # The root configuration is a fact.
    root_head = RelationAtom(
        CONFIGURATION_PREDICATE,
        (Constant(transducer.start_state), Constant(transducer.root_tag))
        + tuple(Constant(PAD) for _ in range(max_arity)),
    )
    rules.append(DatalogRule(root_head, ()))

    graph = DependencyGraph(transducer)
    reachable = graph.reachable_nodes()
    for state, tag in sorted(reachable):
        rule_ = transducer.rule_for(state, tag)
        parent_arity = transducer.register_arity(tag)
        for item in rule_.items:
            child_arity = item.query.register_arity
            body, head_terms = _child_configuration_rule(
                transducer, state, tag, parent_arity, item, child_arity, max_arity, config_vars
            )
            rules.append(DatalogRule(RelationAtom(CONFIGURATION_PREDICATE, head_terms), body))

    # Answer rules: project the register out of every output-tag configuration.
    out_arity = transducer.register_arity(output_tag)
    answer_vars = tuple(Variable(f"o{i}") for i in range(out_arity))
    for state in sorted(transducer.states):
        if (state, output_tag) not in reachable:
            continue
        body_terms: tuple[Term, ...] = (
            Constant(state),
            Constant(output_tag),
        ) + answer_vars + tuple(Constant(PAD) for _ in range(max_arity - out_arity))
        rules.append(
            DatalogRule(
                RelationAtom(output_predicate, answer_vars),
                (RelationAtom(CONFIGURATION_PREDICATE, body_terms),),
            )
        )
    return DatalogProgram(rules, output_predicate)


def _child_configuration_rule(
    transducer: PublishingTransducer,
    state: str,
    tag: str,
    parent_arity: int,
    item: RuleItem,
    child_arity: int,
    max_arity: int,
    config_vars: tuple[Variable, ...],
):
    """Build the body and head of one configuration-propagation rule."""
    query = item.query.query
    if not isinstance(query, ConjunctiveQuery):
        raise TranslationError("rule queries must be conjunctive queries")
    taken = set(query.variables()) | set(config_vars)
    parent_vars = config_vars[:parent_arity]

    # Replace register atoms by equalities with the parent configuration's columns.
    atoms: list[RelationAtom] = []
    comparisons: list[Comparison] = list(query.comparisons)
    register_names = {GENERIC_REGISTER_NAME, f"Reg_{tag}"}
    for atom in query.atoms:
        if atom.relation in register_names:
            if len(atom.terms) != parent_arity:
                raise TranslationError(
                    f"register atom {atom} does not match the register arity {parent_arity} of tag {tag!r}"
                )
            for term, parent_var in zip(atom.terms, parent_vars):
                comparisons.append(equality(term, parent_var))
        elif atom.relation.startswith("Reg_"):
            raise TranslationError(
                f"rule query for ({state}, {tag}) references a foreign register {atom.relation!r}"
            )
        else:
            atoms.append(atom)

    parent_terms: tuple[Term, ...] = (
        Constant(state),
        Constant(tag),
    ) + parent_vars + tuple(Constant(PAD) for _ in range(max_arity - parent_arity))
    body = (RelationAtom(CONFIGURATION_PREDICATE, parent_terms),) + tuple(atoms) + tuple(comparisons)
    head_terms: tuple[Term, ...] = (
        Constant(item.state),
        Constant(item.tag),
    ) + tuple(query.head[:child_arity]) + tuple(Constant(PAD) for _ in range(max_arity - child_arity))
    return body, head_terms


# ---------------------------------------------------------------------------
# LinDatalog (normal form)  ->  PT(CQ, tuple, normal).
# ---------------------------------------------------------------------------


def lindatalog_to_transducer(
    program: DatalogProgram,
    output_tag: str = "ao",
) -> PublishingTransducer:
    """Translate a LinDatalog program in normal form into a CQ tuple transducer.

    The required normal form (from the proof of Theorem 3(2)) is:

    * exactly one IDB predicate ``S`` besides the output predicate;
    * initialisation rules ``S(y) <- body`` whose bodies are EDB-only;
    * recursive rules ``S(y) <- S(z), body`` with exactly one ``S`` atom;
    * output rules ``ans(y) <- S(z), body`` with exactly one ``S`` atom.

    The resulting transducer's output relation for ``output_tag`` equals the
    program's answer on every instance.
    """
    idb = program.idb_predicates()
    recursive_predicates = sorted(idb - {program.output_predicate})
    if len(recursive_predicates) != 1:
        raise TranslationError(
            "normal form requires exactly one IDB predicate besides the output predicate"
        )
    s_predicate = recursive_predicates[0]
    s_arity = program.predicate_arity(s_predicate)

    init_rules: list[DatalogRule] = []
    step_rules: list[DatalogRule] = []
    for rule_ in program.rules_for(s_predicate):
        s_atoms = [a for a in rule_.body_atoms() if a.relation == s_predicate]
        if len(s_atoms) == 0:
            init_rules.append(rule_)
        elif len(s_atoms) == 1:
            step_rules.append(rule_)
        else:
            raise TranslationError("normal form requires at most one S atom per body")
    answer_rules = program.rules_for(program.output_predicate)
    for rule_ in answer_rules:
        if len([a for a in rule_.body_atoms() if a.relation == s_predicate]) != 1:
            raise TranslationError("normal form requires exactly one S atom in output rules")

    counter = itertools.count()

    def fresh_tag(prefix: str) -> str:
        return f"{prefix}{next(counter)}"

    # One tag per initialisation rule and per recursive rule; all of them carry
    # an S-tuple in a tuple register and share the same continuation.
    init_tags = {fresh_tag("s_init"): rule_ for rule_ in init_rules}
    step_tags = {fresh_tag("s_step"): rule_ for rule_ in step_rules}
    s_tags = list(init_tags) + list(step_tags)

    def rule_to_query(rule_: DatalogRule, replace_s_with_register: bool) -> ConjunctiveQuery:
        head_vars, extra = _head_as_variables(rule_.head.terms)
        atoms: list[RelationAtom] = []
        comparisons: list[Comparison] = list(rule_.comparisons()) + extra
        for atom in rule_.body_atoms():
            if replace_s_with_register and atom.relation == s_predicate:
                atoms.append(RelationAtom(GENERIC_REGISTER_NAME, atom.terms))
            else:
                atoms.append(atom)
        return ConjunctiveQuery(tuple(head_vars), tuple(atoms), tuple(comparisons))

    continuation_items = []
    for tag, rule_ in step_tags.items():
        query = rule_to_query(rule_, replace_s_with_register=True)
        continuation_items.append(RuleItem("q", tag, RuleQuery(query, query.arity)))
    for rule_ in answer_rules:
        # Several answer rules map to several items with the same output tag;
        # the step relation happily spawns multiple sibling groups with one
        # tag, and the output relation is the union of all their registers.
        query = rule_to_query(rule_, replace_s_with_register=True)
        continuation_items.append(RuleItem("q", output_tag, RuleQuery(query, query.arity)))

    start_items = []
    for tag, rule_ in init_tags.items():
        query = rule_to_query(rule_, replace_s_with_register=False)
        start_items.append(RuleItem("q", tag, RuleQuery(query, query.arity)))

    transduction_rules = [TransductionRule("q0", "r", tuple(start_items))]
    rhs = tuple(continuation_items)
    for tag in s_tags:
        transduction_rules.append(TransductionRule("q", tag, rhs))
    transduction_rules.append(TransductionRule("q", output_tag, ()))

    register_arities = {tag: s_arity for tag in s_tags}
    register_arities[output_tag] = program.predicate_arity(program.output_predicate)
    return make_transducer(
        transduction_rules,
        start_state="q0",
        root_tag="r",
        register_arities=register_arities,
        name=f"lindatalog-{program.output_predicate}",
    )


def _head_as_variables(terms: tuple[Term, ...]) -> tuple[list[Variable], list[Comparison]]:
    """Turn a rule-head term tuple into distinct variables plus equalities."""
    head_vars: list[Variable] = []
    extra: list[Comparison] = []
    seen: set[Variable] = set()
    for index, term in enumerate(terms):
        if isinstance(term, Variable) and term not in seen:
            head_vars.append(term)
            seen.add(term)
        else:
            fresh = Variable(f"_o{index}")
            head_vars.append(fresh)
            extra.append(equality(fresh, term))
            seen.add(fresh)
    return head_vars, extra
