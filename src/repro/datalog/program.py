"""Datalog programs with (in)equalities and optional FO body conditions.

A rule has the shape ``p(t) <- p1(t1), ..., pn(tn), comparisons, conditions``
where each ``pi`` is an EDB or IDB predicate, comparisons are ``=`` / ``!=``
literals, and conditions are arbitrary FO formulas over the EDB (only used by
LinDatalog(FO) programs).  Programs designate an output predicate, by default
``ans``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.logic.cq import Comparison, RelationAtom
from repro.logic.fo import Formula
from repro.logic.terms import Constant, Term, Variable


@dataclass(frozen=True)
class FormulaCondition:
    """An FO condition allowed in LinDatalog(FO) rule bodies."""

    formula: Formula

    def free_variables(self) -> frozenset[Variable]:
        return self.formula.free_variables()

    def __str__(self) -> str:
        return f"[{self.formula}]"


#: A body literal: a relation atom, a comparison, or an FO condition.
BodyLiteral = RelationAtom | Comparison | FormulaCondition


@dataclass(frozen=True)
class DatalogRule:
    """A single rule ``head <- body``."""

    head: RelationAtom
    body: tuple[BodyLiteral, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def body_atoms(self) -> tuple[RelationAtom, ...]:
        """The relation atoms of the body (EDB and IDB)."""
        return tuple(literal for literal in self.body if isinstance(literal, RelationAtom))

    def comparisons(self) -> tuple[Comparison, ...]:
        """The (in)equality literals of the body."""
        return tuple(literal for literal in self.body if isinstance(literal, Comparison))

    def conditions(self) -> tuple[FormulaCondition, ...]:
        """The FO conditions of the body."""
        return tuple(literal for literal in self.body if isinstance(literal, FormulaCondition))

    def idb_atoms(self, idb_predicates: frozenset[str]) -> tuple[RelationAtom, ...]:
        """Body atoms over IDB predicates."""
        return tuple(atom for atom in self.body_atoms() if atom.relation in idb_predicates)

    def variables(self) -> frozenset[Variable]:
        """All variables of the rule."""
        found: set[Variable] = set(t for t in self.head.terms if isinstance(t, Variable))
        for literal in self.body:
            if isinstance(literal, RelationAtom):
                found.update(literal.variables())
            elif isinstance(literal, Comparison):
                found.update(literal.variables())
            else:
                found.update(literal.free_variables())
        return frozenset(found)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} <- {', '.join(str(l) for l in self.body)}."


class DatalogProgram:
    """A Datalog program: a list of rules plus a designated output predicate."""

    def __init__(self, rules: Iterable[DatalogRule], output_predicate: str = "ans") -> None:
        self._rules = tuple(rules)
        self._output = output_predicate

    @property
    def rules(self) -> tuple[DatalogRule, ...]:
        """The rules, in declaration order."""
        return self._rules

    @property
    def output_predicate(self) -> str:
        """The predicate holding the program's answer."""
        return self._output

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head."""
        return frozenset(rule.head.relation for rule in self._rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined."""
        idb = self.idb_predicates()
        found: set[str] = set()
        for rule in self._rules:
            for atom in rule.body_atoms():
                if atom.relation not in idb:
                    found.add(atom.relation)
            for condition in rule.conditions():
                found |= set(condition.formula.relation_names()) - idb
        return frozenset(found)

    def rules_for(self, predicate: str) -> tuple[DatalogRule, ...]:
        """All rules whose head predicate is ``predicate``."""
        return tuple(rule for rule in self._rules if rule.head.relation == predicate)

    def predicate_arity(self, predicate: str) -> int:
        """Arity of an IDB predicate (taken from its first rule head)."""
        for rule in self._rules:
            if rule.head.relation == predicate:
                return len(rule.head.terms)
        raise KeyError(f"predicate {predicate!r} has no rule")

    def dependency_edges(self) -> frozenset[tuple[str, str]]:
        """IDB dependency edges ``(head predicate, body IDB predicate)``."""
        idb = self.idb_predicates()
        edges: set[tuple[str, str]] = set()
        for rule in self._rules:
            for atom in rule.body_atoms():
                if atom.relation in idb:
                    edges.add((rule.head.relation, atom.relation))
        return frozenset(edges)

    def uses_inequalities(self) -> bool:
        """True when some rule body uses ``!=``."""
        return any(
            comparison.negated for rule in self._rules for comparison in rule.comparisons()
        )

    def constants(self) -> frozenset:
        """All constants appearing in the program."""
        values: set = set()
        for rule in self._rules:
            for term in rule.head.terms:
                if isinstance(term, Constant):
                    values.add(term.value)
            for literal in rule.body:
                if isinstance(literal, RelationAtom):
                    values |= literal.constants()
                elif isinstance(literal, Comparison):
                    values |= literal.constants()
                else:
                    values |= literal.formula.constants()
        return frozenset(values)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    def __len__(self) -> int:
        return len(self._rules)
