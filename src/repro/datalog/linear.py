"""Linearity, recursion and determinism of Datalog programs; CQ unfolding.

These are the structural notions the paper needs around LinDatalog:

* **linear** -- every rule body contains at most one IDB atom (the definition
  of LinDatalog / LinDatalog(FO));
* **non-recursive** -- the IDB dependency graph is acyclic;
* **deterministic** -- every IDB predicate has exactly one rule (Claim 5 of
  Theorem 2 speaks about deterministic sub-programs of a non-recursive
  LinDatalog program);
* :func:`deterministic_subprograms` enumerates the deterministic sub-programs
  of a program (choosing one rule per IDB predicate);
* :func:`unfold_to_cq` implements Claim 5: a non-recursive *deterministic*
  LinDatalog program unfolds, in linear time, into a single equivalent CQ.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.cq import Comparison, ConjunctiveQuery, RelationAtom
from repro.logic.terms import Variable


def is_linear(program: DatalogProgram) -> bool:
    """True when every rule body has at most one IDB atom."""
    idb = program.idb_predicates()
    return all(len(rule.idb_atoms(idb)) <= 1 for rule in program.rules)


def is_nonrecursive(program: DatalogProgram) -> bool:
    """True when the IDB dependency graph of the program is acyclic."""
    edges = program.dependency_edges()
    adjacency: dict[str, set[str]] = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[str, int] = {}

    def visit(node: str) -> bool:
        colour[node] = GREY
        for successor in adjacency.get(node, ()):
            if colour.get(successor, WHITE) == GREY:
                return True
            if colour.get(successor, WHITE) == WHITE and visit(successor):
                return True
        colour[node] = BLACK
        return False

    return not any(
        visit(predicate)
        for predicate in program.idb_predicates()
        if colour.get(predicate, WHITE) == WHITE
    )


def is_deterministic(program: DatalogProgram) -> bool:
    """True when every IDB predicate has exactly one rule."""
    counts: dict[str, int] = {}
    for rule in program.rules:
        counts[rule.head.relation] = counts.get(rule.head.relation, 0) + 1
    return all(count == 1 for count in counts.values())


def deterministic_subprograms(program: DatalogProgram) -> Iterator[DatalogProgram]:
    """Enumerate the deterministic sub-programs (one rule per IDB predicate).

    The equivalence procedure of Theorem 2 guesses such a sub-program of one
    program and checks non-containment in the other; the enumeration here
    realises that guess exhaustively.
    """
    predicates = sorted(program.idb_predicates())
    rule_choices = [program.rules_for(predicate) for predicate in predicates]
    for combination in itertools.product(*rule_choices):
        yield DatalogProgram(combination, program.output_predicate)


def unfold_to_cq(program: DatalogProgram, max_unfoldings: int = 10_000) -> ConjunctiveQuery:
    """Unfold a non-recursive *deterministic* LinDatalog program into a CQ.

    Claim 5 (proof of Theorem 2): because the program is linear and
    deterministic, every IDB predicate has a unique defining rule containing
    at most one IDB atom, so repeatedly replacing IDB atoms by their rule
    bodies terminates after linearly many steps and yields a CQ equivalent to
    the program.  Rules with FO conditions are rejected (the claim is about
    LinDatalog, not LinDatalog(FO)).
    """
    if not is_deterministic(program):
        raise ValueError("unfold_to_cq requires a deterministic program")
    if not is_nonrecursive(program):
        raise ValueError("unfold_to_cq requires a non-recursive program")
    if not is_linear(program):
        raise ValueError("unfold_to_cq requires a linear program")
    for rule in program.rules:
        if rule.conditions():
            raise ValueError("unfold_to_cq handles pure LinDatalog rules only")

    idb = program.idb_predicates()
    output_rules = program.rules_for(program.output_predicate)
    if not output_rules:
        raise ValueError(f"no rule for output predicate {program.output_predicate!r}")
    root = output_rules[0]

    head_variables = tuple(t for t in root.head.terms if isinstance(t, Variable))
    query = ConjunctiveQuery(head_variables, root.body_atoms(), root.comparisons())

    steps = 0
    while True:
        idb_atoms = [atom for atom in query.atoms if atom.relation in idb]
        if not idb_atoms:
            return query
        steps += 1
        if steps > max_unfoldings:
            raise RuntimeError("unfolding did not terminate within the step budget")
        atom = idb_atoms[0]
        defining = program.rules_for(atom.relation)[0]
        inner = _rule_to_cq(defining)
        query = query.compose(atom.relation, inner)


def _rule_to_cq(rule: DatalogRule) -> ConjunctiveQuery:
    """View one rule as a CQ whose head is the rule's head argument tuple.

    Constants in the head are handled by introducing fresh head variables
    equated to them, which keeps :meth:`ConjunctiveQuery.compose` applicable.
    """
    head_terms = rule.head.terms
    head_variables: list[Variable] = []
    extra_comparisons: list[Comparison] = []
    used = set()
    for index, term in enumerate(head_terms):
        if isinstance(term, Variable) and term not in used:
            head_variables.append(term)
            used.add(term)
        else:
            fresh = Variable(f"_h{index}")
            head_variables.append(fresh)
            extra_comparisons.append(Comparison(fresh, term, negated=False))
    return ConjunctiveQuery(
        tuple(head_variables),
        rule.body_atoms(),
        rule.comparisons() + tuple(extra_comparisons),
    )
