"""Datalog substrate: Datalog, LinDatalog and LinDatalog(FO).

Theorem 3 characterises the relational expressive power of publishing
transducers in terms of Datalog fragments:

* ``PT(CQ, tuple, O)``  =  **LinDatalog** (linear Datalog with ``!=``),
* ``PT(FO, tuple, O)``  =  **LinDatalog(FO)** (bodies may contain arbitrary
  FO conditions over the EDB),
* ``PT(IFP, tuple, O)`` =  **IFP**.

This package provides programs, semi-naive evaluation, linearity checks, the
deterministic sub-programs and CQ unfoldings used by the equivalence procedure
(Claim 5 of Theorem 2), and the two translations of Theorem 3(2).
"""

from repro.datalog.evaluation import (
    evaluate_all_predicates,
    evaluate_all_predicates_naive,
    evaluate_program,
    evaluate_program_naive,
)
from repro.datalog.linear import (
    deterministic_subprograms,
    is_deterministic,
    is_linear,
    is_nonrecursive,
    unfold_to_cq,
)
from repro.datalog.program import DatalogProgram, DatalogRule, FormulaCondition
from repro.datalog.translate import (
    lindatalog_to_transducer,
    transducer_to_lindatalog,
)

__all__ = [
    "DatalogProgram",
    "DatalogRule",
    "FormulaCondition",
    "deterministic_subprograms",
    "evaluate_all_predicates",
    "evaluate_all_predicates_naive",
    "evaluate_program",
    "evaluate_program_naive",
    "is_deterministic",
    "is_linear",
    "is_nonrecursive",
    "lindatalog_to_transducer",
    "transducer_to_lindatalog",
    "unfold_to_cq",
]
