"""Semi-naive bottom-up evaluation of Datalog programs.

The evaluator supports the three program classes used in the reproduction --
plain Datalog, LinDatalog and LinDatalog(FO) -- uniformly: rules whose body
consists only of relation atoms and comparisons are evaluated with the CQ
join machinery, rules with FO conditions fall back to the formula evaluator.
Evaluation is inflationary and terminates because the Herbrand base over the
active domain is finite.
"""

from __future__ import annotations

from typing import Mapping

from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.builders import cq_to_formula
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import And, FormulaEvaluator, conjunction
from repro.logic.terms import Constant, Variable
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema

#: A mapping from IDB predicate names to their current sets of facts.
IdbState = dict[str, set[tuple[DataValue, ...]]]


def evaluate_program(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> frozenset[tuple[DataValue, ...]]:
    """Evaluate ``program`` on ``instance`` and return the output predicate's facts."""
    state = evaluate_all_predicates(program, instance, max_iterations=max_iterations)
    return frozenset(state.get(program.output_predicate, set()))


def evaluate_all_predicates(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> dict[str, frozenset[tuple[DataValue, ...]]]:
    """Evaluate ``program`` and return the facts of every IDB predicate."""
    idb = program.idb_predicates()
    state: IdbState = {predicate: set() for predicate in idb}
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            break
        extended = _instance_with_idb(instance, program, state)
        for rule in program.rules:
            for fact in _apply_rule(rule, extended):
                if fact not in state[rule.head.relation]:
                    state[rule.head.relation].add(fact)
                    changed = True
    return {predicate: frozenset(facts) for predicate, facts in state.items()}


def _instance_with_idb(
    instance: Instance, program: DatalogProgram, state: Mapping[str, set]
) -> Instance:
    extra_schema = []
    extra_data = {}
    for predicate, facts in state.items():
        arity = program.predicate_arity(predicate)
        extra_schema.append(RelationSchema(predicate, arity))
        extra_data[predicate] = facts
    return instance.extended(extra_data, extra_schema)


def _apply_rule(rule: DatalogRule, instance: Instance) -> set[tuple[DataValue, ...]]:
    """Evaluate one rule body and build its head facts."""
    head_variables: list[Variable] = []
    for term in rule.head.terms:
        if isinstance(term, Variable) and term not in head_variables:
            head_variables.append(term)
    if rule.conditions():
        answers = _evaluate_body_fo(rule, tuple(head_variables), instance)
    else:
        query = ConjunctiveQuery(tuple(head_variables), rule.body_atoms(), rule.comparisons())
        answers = query.evaluate(instance)
    facts: set[tuple[DataValue, ...]] = set()
    for row in answers:
        binding = dict(zip(head_variables, row))
        fact = tuple(
            term.value if isinstance(term, Constant) else binding[term]
            for term in rule.head.terms
        )
        facts.add(fact)
    return facts


def _evaluate_body_fo(
    rule: DatalogRule, head_variables: tuple[Variable, ...], instance: Instance
) -> frozenset[tuple[DataValue, ...]]:
    """Evaluate a rule body containing FO conditions via the formula evaluator."""
    cq_part = ConjunctiveQuery(head_variables, rule.body_atoms(), rule.comparisons())
    conjuncts = [cq_to_formula(cq_part.with_head(tuple(sorted(cq_part.variables(), key=lambda v: v.name))))]
    for condition in rule.conditions():
        conjuncts.append(condition.formula)
    body = conjunction(conjuncts)
    constants: set[DataValue] = set()
    constants |= set(cq_part.constants())
    for condition in rule.conditions():
        constants |= set(condition.formula.constants())
    domain = set(instance.active_domain()) | constants
    evaluator = FormulaEvaluator(instance, domain)
    table = evaluator.evaluate(body)
    table = table.expand(head_variables, evaluator.domain)
    return frozenset(table.rows)
