"""Semi-naive bottom-up evaluation of Datalog programs.

The evaluator supports the three program classes used in the reproduction --
plain Datalog, LinDatalog and LinDatalog(FO) -- uniformly.  Every rule body is
compiled once into a :class:`~repro.query.plan.QueryPlan` (via
:mod:`repro.query.planner`); recursion is then evaluated *semi-naively*: after
the first full round, a rule with IDB atoms only re-fires through per-atom
delta plans whose distinguished occurrence reads the facts derived in the
previous round.  The IDB state and the deltas are fed into the compiled plans
through the plan ``overrides`` channel, so no extended instance (and no
relation re-hashing) is built per round on the fast path.

Rules the planner cannot compile -- bodies whose comparisons or FO conditions
make the query genuinely domain-dependent -- fall back to the naive evaluator
per round, which also remains available wholesale as
:func:`evaluate_program_naive` / :func:`evaluate_all_predicates_naive`: the
executable specification and the differential-test oracle.

Evaluation is inflationary and terminates because the Herbrand base over the
active domain is finite.
"""

from __future__ import annotations

from typing import Mapping

from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.builders import cq_to_formula
from repro.logic.cq import ConjunctiveQuery, RelationAtom
from repro.logic.fo import FormulaEvaluator, FormulaQuery, conjunction
from repro.logic.terms import Constant, Variable
from repro.query.planner import plan_query
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema

#: A mapping from IDB predicate names to their current sets of facts.
IdbState = dict[str, set[tuple[DataValue, ...]]]

#: Base name of the relation a delta plan reads its distinguished occurrence
#: from; underscores are appended until it collides with no program predicate.
DELTA_NAME = "__delta__"


def _fresh_delta_name(program: DatalogProgram) -> str:
    """A delta-relation name no EDB or IDB predicate of the program uses."""
    taken = set(program.idb_predicates()) | set(program.edb_predicates())
    name = DELTA_NAME
    while name in taken:
        name += "_"
    return name


#: Cache attribute for compiled rules, stored on the (immutable) program.
_COMPILED_ATTR = "_repro_compiled_rules"


def _compiled_rules(
    program: DatalogProgram, idb: frozenset[str]
) -> tuple[str, "list[_CompiledRule]"]:
    """Compile the program's rules once and cache them on the program.

    Programs are immutable value objects (frozen dataclasses), so the
    compiled plans -- and their vectorized kernels -- are planned once and
    executed on every subsequent evaluation, matching the "plan once,
    execute many" behaviour of the query layer.
    """
    cached = getattr(program, _COMPILED_ATTR, None)
    if cached is not None:
        return cached
    delta_name = _fresh_delta_name(program)
    compiled = [_CompiledRule(rule, idb, delta_name) for rule in program.rules]
    cached = (delta_name, compiled)
    try:
        object.__setattr__(program, _COMPILED_ATTR, cached)
    except AttributeError:  # slotted program types: just recompile next time
        pass
    return cached


def evaluate_program(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> frozenset[tuple[DataValue, ...]]:
    """Evaluate ``program`` on ``instance`` and return the output predicate's facts."""
    idb = program.idb_predicates()
    delta_name, compiled = _compiled_rules(program, idb)
    encoder = instance._encoding
    if encoder is not None and all(rule.supports_encoded() for rule in compiled):
        # Integer-space fixpoint; only the output predicate is decoded.
        state = _encoded_fixpoint(compiled, idb, encoder, instance, max_iterations)
        return encoder.decode_rows(state.get(program.output_predicate, set()))
    state = evaluate_all_predicates(program, instance, max_iterations=max_iterations)
    return frozenset(state.get(program.output_predicate, set()))


def evaluate_all_predicates(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> dict[str, frozenset[tuple[DataValue, ...]]]:
    """Evaluate ``program`` semi-naively and return every IDB predicate's facts.

    On an instance carrying a dictionary encoding
    (:func:`repro.relational.columnar.ensure_encoded`), a program whose
    every rule compiles to a vectorizable plan runs the whole fixpoint in
    integer space: IDB states and per-round deltas are sets of encoded
    tuples fed through the plans' encoded-override channel, and only the
    final fixpoint is decoded.  Any rule needing the naive fallback drops
    the entire evaluation back to the row backend for a uniform state
    representation.
    """
    idb = program.idb_predicates()
    delta_name, compiled = _compiled_rules(program, idb)
    encoder = instance._encoding
    if encoder is not None and all(rule.supports_encoded() for rule in compiled):
        return _evaluate_all_encoded(
            compiled, idb, encoder, instance, max_iterations
        )
    state: IdbState = {predicate: set() for predicate in idb}
    iterations = 0

    def round_allowed() -> bool:
        nonlocal iterations
        iterations += 1
        return max_iterations is None or iterations <= max_iterations

    # Round 1: every rule, full bodies, empty IDB.
    delta: dict[str, set[tuple[DataValue, ...]]] = {predicate: set() for predicate in idb}
    if round_allowed():
        extended = _extended_if_needed(instance, program, state, compiled, full_round=True)
        for rule in compiled:
            for fact in rule.fire_full(instance, state, extended):
                if fact not in state[rule.head_predicate]:
                    delta[rule.head_predicate].add(fact)
        for predicate, facts in delta.items():
            state[predicate] |= facts

    # Recursive rounds: delta plans only, until a round derives nothing new.
    while any(delta.values()) and round_allowed():
        new_delta: dict[str, set[tuple[DataValue, ...]]] = {p: set() for p in idb}
        extended = _extended_if_needed(instance, program, state, compiled, full_round=False)
        for rule in compiled:
            if not rule.mentions_idb:
                continue  # EDB-only rules cannot derive anything new
            for fact in rule.fire_delta(instance, state, delta, extended):
                if fact not in state[rule.head_predicate]:
                    new_delta[rule.head_predicate].add(fact)
        for predicate, facts in new_delta.items():
            state[predicate] |= facts
        delta = new_delta
    return {predicate: frozenset(facts) for predicate, facts in state.items()}


def _evaluate_all_encoded(
    compiled: "list[_CompiledRule]",
    idb: frozenset[str],
    encoder,
    instance: Instance,
    max_iterations: int | None,
) -> dict[str, frozenset[tuple[DataValue, ...]]]:
    """The encoded fixpoint with every predicate decoded for the caller."""
    state = _encoded_fixpoint(compiled, idb, encoder, instance, max_iterations)
    return {
        predicate: encoder.decode_rows(facts) for predicate, facts in state.items()
    }


def _encoded_fixpoint(
    compiled: "list[_CompiledRule]",
    idb: frozenset[str],
    encoder,
    instance: Instance,
    max_iterations: int | None,
) -> dict[str, set[tuple[int, ...]]]:
    """The semi-naive fixpoint entirely over encoded (integer) tuples."""
    state: dict[str, set[tuple[int, ...]]] = {predicate: set() for predicate in idb}
    iterations = 0

    def round_allowed() -> bool:
        nonlocal iterations
        iterations += 1
        return max_iterations is None or iterations <= max_iterations

    delta: dict[str, set[tuple[int, ...]]] = {predicate: set() for predicate in idb}
    if round_allowed():
        for rule in compiled:
            delta[rule.head_predicate] |= (
                rule.fire_full_encoded(encoder, instance, state)
                - state[rule.head_predicate]
            )
        for predicate, facts in delta.items():
            state[predicate] |= facts

    while any(delta.values()) and round_allowed():
        new_delta: dict[str, set[tuple[int, ...]]] = {p: set() for p in idb}
        for rule in compiled:
            if not rule.mentions_idb:
                continue
            new_delta[rule.head_predicate] |= (
                rule.fire_delta_encoded(encoder, instance, state, delta)
                - state[rule.head_predicate]
            )
        for predicate, facts in new_delta.items():
            state[predicate] |= facts
        delta = new_delta
    return state


class _CompiledRule:
    """One rule compiled to a full plan plus per-IDB-occurrence delta plans."""

    __slots__ = (
        "rule",
        "head_predicate",
        "head_variables",
        "delta_name",
        "mentions_idb",
        "full_plan",
        "delta_plans",
        "needs_fallback",
        "_head_spec",
    )

    def __init__(self, rule: DatalogRule, idb: frozenset[str], delta_name: str) -> None:
        self.rule = rule
        self.delta_name = delta_name
        self.head_predicate = rule.head.relation
        head_variables: list[Variable] = []
        for term in rule.head.terms:
            if isinstance(term, Variable) and term not in head_variables:
                head_variables.append(term)
        self.head_variables = tuple(head_variables)

        atoms = rule.body_atoms()
        condition_idb = any(
            set(condition.formula.relation_names()) & idb for condition in rule.conditions()
        )
        idb_positions = [i for i, atom in enumerate(atoms) if atom.relation in idb]
        self.mentions_idb = bool(idb_positions) or condition_idb

        self.full_plan = plan_query(self._body_query(atoms))
        self.delta_plans: tuple[tuple[str, object], ...] = ()
        self.needs_fallback = self.full_plan is None
        if condition_idb:
            # FO conditions reading IDB predicates cannot be delta-restricted.
            self.needs_fallback = True
        if not self.needs_fallback and idb_positions:
            delta_plans = []
            for position in idb_positions:
                variant = list(atoms)
                variant[position] = RelationAtom(delta_name, atoms[position].terms)
                plan = plan_query(self._body_query(tuple(variant)))
                if plan is None:
                    self.needs_fallback = True
                    break
                delta_plans.append((atoms[position].relation, plan))
            else:
                self.delta_plans = tuple(delta_plans)

        # Head projection: None when the head terms are exactly the plan's
        # head variables (facts are plan rows as-is, the common case), else
        # one ("var", row position) / ("const", value) entry per head term.
        head_terms = rule.head.terms
        if head_terms == self.head_variables:
            self._head_spec = None
        else:
            position = {v: i for i, v in enumerate(self.head_variables)}
            self._head_spec = tuple(
                ("const", term.value)
                if isinstance(term, Constant)
                else ("var", position[term])
                for term in head_terms
            )

    def supports_encoded(self) -> bool:
        """True when every plan of this rule runs on the columnar kernel."""
        if self.needs_fallback or self.full_plan is None:
            return False
        if self.full_plan.vector_kernel() is None:
            return False
        return all(plan.vector_kernel() is not None for _, plan in self.delta_plans)

    def _body_query(self, atoms: tuple[RelationAtom, ...]):
        """The rule body as a CQ, or as a safe FO query when it has conditions.

        The query head is :attr:`head_variables`, so plan rows zip positionally
        against the head terms in :meth:`_head_facts`.
        """
        rule = self.rule
        cq = ConjunctiveQuery(self.head_variables, atoms, rule.comparisons())
        if not rule.conditions():
            return cq
        all_variables = tuple(sorted(cq.variables(), key=lambda v: v.name))
        conjuncts = [cq_to_formula(cq.with_head(all_variables))]
        for condition in rule.conditions():
            conjuncts.append(condition.formula)
        return FormulaQuery(self.head_variables, conjunction(conjuncts))

    # -- firing ---------------------------------------------------------------

    def fire_full(
        self,
        instance: Instance,
        state: IdbState,
        extended: Instance | None,
    ) -> set[tuple[DataValue, ...]]:
        """All head facts derivable from the full current state."""
        if self.full_plan is not None:
            rows = self.full_plan.execute(instance, state)
        else:
            assert extended is not None
            rows = _apply_rule_body_naive(self.rule, self.head_variables, extended)
        return self._head_facts(rows)

    def fire_delta(
        self,
        instance: Instance,
        state: IdbState,
        delta: Mapping[str, set[tuple[DataValue, ...]]],
        extended: Instance | None,
    ) -> set[tuple[DataValue, ...]]:
        """Head facts derivable using at least one last-round fact.

        One plan execution per IDB occurrence, with that occurrence reading
        the delta and every other occurrence the full state (the standard
        semi-naive over-approximation, sound for these monotone rules).
        """
        if self.needs_fallback:
            assert extended is not None
            return self._head_facts(
                _apply_rule_body_naive(self.rule, self.head_variables, extended)
            )
        facts: set[tuple[DataValue, ...]] = set()
        overrides: dict[str, object] = dict(state)
        for predicate, plan in self.delta_plans:
            changed = delta.get(predicate)
            if not changed:
                continue
            overrides[self.delta_name] = changed
            facts |= self._head_facts(plan.execute(instance, overrides))
        return facts

    def _head_facts(self, rows) -> set[tuple[DataValue, ...]]:
        head_variables = self.head_variables
        head_terms = self.rule.head.terms
        facts: set[tuple[DataValue, ...]] = set()
        for row in rows:
            binding = dict(zip(head_variables, row))
            facts.add(
                tuple(
                    term.value if isinstance(term, Constant) else binding[term]
                    for term in head_terms
                )
            )
        return facts

    # -- encoded firing (integer-space fixpoint) -------------------------------

    def fire_full_encoded(self, encoder, instance, state):
        """All head facts (encoded) derivable from the full encoded state."""
        rows = self.full_plan.execute_encoded(instance, state)
        return self._head_facts_encoded(encoder, rows)

    def fire_delta_encoded(self, encoder, instance, state, delta):
        """Encoded head facts using at least one last-round (encoded) fact."""
        facts: set[tuple[int, ...]] = set()
        overrides = dict(state)
        for predicate, plan in self.delta_plans:
            changed = delta.get(predicate)
            if not changed:
                continue
            overrides[self.delta_name] = changed
            facts |= self._head_facts_encoded(
                encoder, plan.execute_encoded(instance, overrides)
            )
        return facts

    def _head_facts_encoded(self, encoder, rows):
        spec = self._head_spec
        if spec is None:
            return rows
        intern = encoder.intern
        return {
            tuple(
                intern(payload) if kind == "const" else row[payload]
                for kind, payload in spec
            )
            for row in rows
        }


def _extended_if_needed(
    instance: Instance,
    program: DatalogProgram,
    state: IdbState,
    compiled: list[_CompiledRule],
    full_round: bool,
) -> Instance | None:
    """The IDB-extended instance, built only when some rule needs the fallback."""
    for rule in compiled:
        if full_round:
            if rule.full_plan is None:
                return _instance_with_idb(instance, program, state)
        elif rule.mentions_idb and rule.needs_fallback:
            return _instance_with_idb(instance, program, state)
    return None


# ---------------------------------------------------------------------------
# The naive evaluator: executable specification and differential-test oracle.
# ---------------------------------------------------------------------------


def evaluate_program_naive(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> frozenset[tuple[DataValue, ...]]:
    """Naive-iteration reference semantics of :func:`evaluate_program`."""
    state = evaluate_all_predicates_naive(program, instance, max_iterations=max_iterations)
    return frozenset(state.get(program.output_predicate, set()))


def evaluate_all_predicates_naive(
    program: DatalogProgram,
    instance: Instance,
    max_iterations: int | None = None,
) -> dict[str, frozenset[tuple[DataValue, ...]]]:
    """Naive bottom-up iteration: every rule, full bodies, until fixpoint."""
    idb = program.idb_predicates()
    state: IdbState = {predicate: set() for predicate in idb}
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            break
        extended = _instance_with_idb(instance, program, state)
        for rule in program.rules:
            for fact in _apply_rule(rule, extended):
                if fact not in state[rule.head.relation]:
                    state[rule.head.relation].add(fact)
                    changed = True
    return {predicate: frozenset(facts) for predicate, facts in state.items()}


def _instance_with_idb(
    instance: Instance, program: DatalogProgram, state: Mapping[str, set]
) -> Instance:
    extra_schema = []
    extra_data = {}
    for predicate, facts in state.items():
        arity = program.predicate_arity(predicate)
        extra_schema.append(RelationSchema(predicate, arity))
        extra_data[predicate] = facts
    return instance.extended(extra_data, extra_schema)


def _apply_rule(rule: DatalogRule, instance: Instance) -> set[tuple[DataValue, ...]]:
    """Evaluate one rule body naively and build its head facts."""
    head_variables: list[Variable] = []
    for term in rule.head.terms:
        if isinstance(term, Variable) and term not in head_variables:
            head_variables.append(term)
    answers = _apply_rule_body_naive(rule, tuple(head_variables), instance)
    facts: set[tuple[DataValue, ...]] = set()
    for row in answers:
        binding = dict(zip(head_variables, row))
        fact = tuple(
            term.value if isinstance(term, Constant) else binding[term]
            for term in rule.head.terms
        )
        facts.add(fact)
    return facts


def _apply_rule_body_naive(
    rule: DatalogRule, head_variables: tuple[Variable, ...], instance: Instance
) -> frozenset[tuple[DataValue, ...]]:
    """Evaluate a rule body on an IDB-extended instance with the naive evaluators."""
    if rule.conditions():
        return _evaluate_body_fo(rule, head_variables, instance)
    query = ConjunctiveQuery(head_variables, rule.body_atoms(), rule.comparisons())
    return query.evaluate_naive(instance)


def _evaluate_body_fo(
    rule: DatalogRule, head_variables: tuple[Variable, ...], instance: Instance
) -> frozenset[tuple[DataValue, ...]]:
    """Evaluate a rule body containing FO conditions via the formula evaluator."""
    cq_part = ConjunctiveQuery(head_variables, rule.body_atoms(), rule.comparisons())
    conjuncts = [cq_to_formula(cq_part.with_head(tuple(sorted(cq_part.variables(), key=lambda v: v.name))))]
    for condition in rule.conditions():
        conjuncts.append(condition.formula)
    body = conjunction(conjuncts)
    constants: set[DataValue] = set()
    constants |= set(cq_part.constants())
    for condition in rule.conditions():
        constants |= set(condition.formula.constants())
    domain = set(instance.active_domain()) | constants
    evaluator = FormulaEvaluator(instance, domain)
    table = evaluator.evaluate(body)
    table = table.expand(head_variables, evaluator.domain)
    return frozenset(table.rows)
