"""A fluent builder DSL for publishing transducers.

Hand-assembling a :class:`~repro.core.transducer.PublishingTransducer` means
spelling out frozen dataclasses (``TransductionRule(state, tag, (RuleItem(...),
...))``) and wiring the arity assignment ``Theta`` by hand.  The builder keeps
the paper's Definition 3.1 vocabulary but reads like the rules it produces::

    builder = TransducerBuilder("tau1-prereq-hierarchy", root="db")
    (builder.state("q0").on("db")
        .emit("q", "course", phi1))
    (builder.state("q").on("course")
        .emit("q", "cno", phi2_cno)
        .emit("q", "title", phi2_title)
        .emit("q", "prereq", phi2_cno))
    (builder.state("q").on("prereq")
        .emit("q", "course", phi3))
    builder.state("q").on("cno").emit_text(phi4_cno)
    builder.state("q").on("title").emit_text(phi4_title)
    tau = builder.build()

Grouping follows the rule-query convention of Section 3: by default a query
spawns one child per answer tuple (a *tuple register*); passing ``group=g``
groups on the first ``g`` head variables, and ``group=0`` produces a single
child carrying the whole answer relation (a *relation register*).

The builder is the single assembly path of the code base: the template
compiler of :mod:`repro.languages.common`, the recursive front-ends (ATG,
DBMS_XMLGEN) and the registrar/blow-up workloads all construct their
transducers through it.
"""

from __future__ import annotations

from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.transducer import PublishingTransducer, make_transducer
from repro.logic.base import Query
from repro.xmltree.tree import DEFAULT_ROOT_TAG, TEXT_TAG


class BuilderError(ValueError):
    """Raised when the builder is used inconsistently."""


def _as_rule_query(query: Query | RuleQuery, group: int | None) -> RuleQuery:
    """Normalise a raw query (plus grouping mode) into a :class:`RuleQuery`."""
    if isinstance(query, RuleQuery):
        if group is not None and group != query.group_arity:
            raise BuilderError(
                f"conflicting group arities: RuleQuery groups on {query.group_arity}, "
                f"emit() was passed group={group}"
            )
        return query
    if group is None:
        group = query.arity
    return RuleQuery(query, group)


class RuleBuilder:
    """Builds the right-hand side of one rule ``(state, tag) -> ...``."""

    def __init__(self, builder: "TransducerBuilder", state: str, tag: str) -> None:
        self._builder = builder
        self._state = state
        self._tag = tag
        self._items: list[RuleItem] = []

    # -- right-hand side ----------------------------------------------------

    def emit(
        self,
        state: str,
        tag: str,
        query: Query | RuleQuery,
        group: int | None = None,
    ) -> "RuleBuilder":
        """Append one item ``(state, tag, phi(x; y))`` to the right-hand side.

        ``group`` selects the number ``|x|`` of grouping variables; ``None``
        (the default) groups on the whole head, i.e. a tuple register.
        """
        self._items.append(RuleItem(state, tag, _as_rule_query(query, group)))
        return self

    def emit_text(
        self,
        query: Query | RuleQuery,
        state: str | None = None,
    ) -> "RuleBuilder":
        """Append a ``text`` item and auto-declare its (empty) leaf rule.

        The text state defaults to this rule's own state; pass ``state``
        explicitly when that would collide with the start state (which may
        not appear on a right-hand side).
        """
        text_state = state if state is not None else self._state
        if text_state == self._builder.start_state:
            raise BuilderError(
                "the start state may not appear on a right-hand side; pass an "
                "explicit state to emit_text()"
            )
        self.emit(text_state, TEXT_TAG, query)
        self._builder.state(text_state).on(TEXT_TAG).leaf()
        return self

    def leaf(self) -> "RuleBuilder":
        """Declare this rule with an empty right-hand side (a leaf rule)."""
        return self

    # -- fluent navigation ---------------------------------------------------

    def on(self, tag: str) -> "RuleBuilder":
        """Switch to the rule for the same state and another tag."""
        return self._builder.state(self._state).on(tag)

    def state(self, state: str) -> "StateScope":
        """Switch to another state (delegates to the owning builder)."""
        return self._builder.state(state)

    def build(self) -> PublishingTransducer:
        """Finish the whole transducer (delegates to the owning builder)."""
        return self._builder.build()

    def _rule(self) -> TransductionRule:
        return TransductionRule(self._state, self._tag, tuple(self._items))


class StateScope:
    """The rules of one state; ``.on(tag)`` picks the rule for a tag."""

    def __init__(self, builder: "TransducerBuilder", state: str) -> None:
        self._builder = builder
        self._state = state

    def on(self, tag: str) -> RuleBuilder:
        """The (unique) rule for ``(state, tag)``, created on first use."""
        return self._builder._rule_builder(self._state, tag)


class TransducerBuilder:
    """Fluent assembly of a publishing transducer (Definition 3.1).

    Parameters
    ----------
    name:
        Human-readable name carried into the transducer.
    root:
        The distinguished root tag ``r``.
    start:
        The start state ``q0``.
    """

    def __init__(
        self,
        name: str = "transducer",
        root: str = DEFAULT_ROOT_TAG,
        start: str = "q0",
    ) -> None:
        self._name = name
        self._root = root
        self._start = start
        self._rules: dict[tuple[str, str], RuleBuilder] = {}
        self._virtual: set[str] = set()
        self._arities: dict[str, int] = {}

    # -- declaration ---------------------------------------------------------

    @property
    def start_state(self) -> str:
        """The start state ``q0``."""
        return self._start

    @property
    def root_tag(self) -> str:
        """The root tag ``r``."""
        return self._root

    def state(self, state: str) -> StateScope:
        """Scope the following ``.on(tag)`` declarations to ``state``."""
        return StateScope(self, state)

    @property
    def declared(self) -> tuple[tuple[str, str], ...]:
        """The ``(state, tag)`` pairs declared so far, in declaration order."""
        return tuple(self._rules)

    def start(self) -> RuleBuilder:
        """The start rule ``(q0, root) -> ...`` (shorthand)."""
        return self.state(self._start).on(self._root)

    def virtual(self, *tags: str) -> "TransducerBuilder":
        """Declare tags as virtual (``Sigma_e``): spliced out of the output."""
        self._virtual.update(tags)
        return self

    def register_arity(self, tag: str, arity: int) -> "TransducerBuilder":
        """Pin the register arity ``Theta(tag)`` (usually inferred from queries)."""
        self._arities[tag] = arity
        return self

    # -- assembly ------------------------------------------------------------

    def _rule_builder(self, state: str, tag: str) -> RuleBuilder:
        key = (state, tag)
        found = self._rules.get(key)
        if found is None:
            found = RuleBuilder(self, state, tag)
            self._rules[key] = found
        return found

    def build(self) -> PublishingTransducer:
        """Assemble and validate the transducer.

        States, the alphabet and (unless pinned) the arity assignment are
        inferred from the declared rules, exactly like
        :func:`~repro.core.transducer.make_transducer`.
        """
        if (self._start, self._root) not in self._rules:
            raise BuilderError(
                f"missing start rule: declare state({self._start!r}).on({self._root!r})"
            )
        rules = [rb._rule() for rb in self._rules.values()]
        return make_transducer(
            rules,
            start_state=self._start,
            root_tag=self._root,
            virtual_tags=frozenset(self._virtual),
            register_arities=dict(self._arities) or None,
            name=self._name,
        )


def transducer(
    name: str = "transducer",
    root: str = DEFAULT_ROOT_TAG,
    start: str = "q0",
) -> TransducerBuilder:
    """Terse entry point: ``transducer("view", root="db").start().emit(...)``."""
    return TransducerBuilder(name, root=root, start=start)
