"""The bytes-native publish driver: serialise straight from the expansions.

:meth:`repro.engine.plan.PublishingPlan.publish_bytes` routes here.  The
other evaluation modes materialise a Σ-tree (or an event stream) and hand it
to a serialiser; profiling shows that on warm caches the publish hot path is
dominated by exactly that re-walk -- per-node ``TreeNode`` construction or
per-event serialiser dispatch plus text re-rendering -- while the memoised
expansions answer in a dictionary lookup.  This driver removes the middle
layer entirely:

* **byte templates** -- the constant skeleton of the output (``<tag>``,
  ``</tag>``, ``<tag/>``, newline-plus-indentation prefixes) is preassembled
  once per ``(tag, level)`` on the plan and reused across publishes, so the
  steady-state cost of an element is a few dict lookups and list appends;
* **interned character data** -- text registers render through
  :meth:`~repro.relational.columnar.DictionaryEncoder.escaped_text` (encoded
  pipeline: escaped fragments are interned next to the value ids on the
  shared encoder and survive version migrations) or a per-instance-state
  fragment memo (row pipeline), so ``escape``/:func:`relation_to_text` run
  once per distinct register, not once per node visit;
* **a rendered-bytes cache** -- the rendered span of every clean subtree is
  cached per ``(state, tag, register)`` configuration and level, exactly
  parallel to the structural subtree cache of tree mode: reuse requires the
  current root-to-node path to be disjoint from the subtree's configuration
  set (stop-condition safety), reuse charges the node budget the subtree's
  traversal would have charged, and :meth:`PublishingPlan.republish`
  migrates entries across versions with per-rule invalidation and lazy
  confirmation.  A republish therefore re-renders only invalidated spans,
  and a cache-hot publish of an unchanged document is a buffer handoff.

Output is **byte-identical** to the established serialisers on every
backend: ``indent=N`` matches :func:`repro.xmltree.serialize.to_xml` /
:class:`~repro.xmltree.serialize.IncrementalXmlSerializer`, ``indent=None``
matches the compact forms.  The rendering rules mirrored here are: an
element with no children is ``<tag/>``; an element whose children are all
text renders inline on one line; anything else renders multi-line with
per-level indentation; virtual tags contribute their children's spans
spliced at the enclosing element's level.

No ``TreeNode`` is ever constructed: working state is a frame stack over
the expansion tuples and one flat list of string chunks.  The frame-stack
driver (:func:`_render_span`) renders any subtree from any starting
configuration, which is also the worker-side unit of ``repro.parallel``:
:func:`render_subtree` renders one sibling subtree with the ancestor path
seeded for stop-condition safety, and the parent process splices the
returned spans — confluence makes every span a pure function of its own
``(state, tag, register)`` over the snapshot, so the parallel document is
byte-identical to the serial one by construction.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.relational.domain import relation_to_text
from repro.xmltree.tree import TEXT_TAG

#: Largest chunk span a cached rendered subtree may hold.  Bigger spans are
#: re-emitted from the (still cached) child entries instead, which bounds
#: the cache's memory on blow-up outputs.
_RENDER_SPAN_LIMIT = 65536


class _RenderEntry:
    """One cached rendered span: the bytes-path analogue of ``_SubtreeEntry``.

    ``chunks`` is the span the subtree contributes to the output buffer
    (already fully rendered, including indentation prefixes); ``texts`` is
    the raw escaped character data when the contribution is pure text (a
    virtual subtree of text leaves -- the enclosing element may still render
    inline), ``None`` when it contains an element.  ``triples`` / ``weight``
    / ``saved`` have the subtree-cache semantics: stop-condition safety and
    delta invalidation, node-budget charge, and hit accounting.  ``document``
    memoises the joined document on root entries so a cache-hot publish
    returns one interned string.
    """

    __slots__ = ("chunks", "texts", "triples", "weight", "saved", "document")

    def __init__(
        self,
        chunks: tuple[str, ...],
        texts: tuple[str, ...] | None,
        triples: frozenset,
        weight: int,
        saved: int,
    ) -> None:
        self.chunks = chunks
        self.texts = texts
        self.triples = triples
        self.weight = weight
        self.saved = saved
        self.document: str | None = None


class SpanResult:
    """What rendering one subtree yields: the span plus its close algebra.

    ``span`` is the rendered contribution (indentation prefixes included);
    ``texts`` carries the raw escaped fragments when the contribution is
    pure text from a virtual subtree (the enclosing element may then still
    render inline), ``None`` otherwise.  ``triples`` is the configuration
    set for stop-condition/cacheability bookkeeping (``None`` when the span
    is path-dependent or oversized), ``weight`` the node-budget charge and
    ``opened`` the node count the span accounts for.  Everything here is
    plain picklable data: this is exactly what a ``repro.parallel`` worker
    sends back across the process boundary.
    """

    __slots__ = ("span", "texts", "triples", "weight", "opened")

    def __init__(self, span, texts, triples, weight, opened):
        self.span = span
        self.texts = texts
        self.triples = triples
        self.weight = weight
        self.opened = opened

    def __getstate__(self):
        return (self.span, self.texts, self.triples, self.weight, self.opened)

    def __setstate__(self, state):
        self.span, self.texts, self.triples, self.weight, self.opened = state


class _EmitFrame:
    """One open node of the byte-rendering walk.

    ``start`` is the frame's span start in the shared output buffer (for an
    element, the index of its placeholder slot -- patched at close once the
    empty/inline/mixed shape is known; the incremental serialiser solves the
    same problem with pending frames).  ``texts`` buffers raw escaped text
    while the frame's contribution is still pure text; it flips to ``None``
    the moment an element child arrives.  ``triples`` / ``weight`` /
    ``opened`` feed the cached entry, with ``None`` poisoning sharing after
    a stop-condition hit exactly as in tree mode.
    """

    __slots__ = (
        "triple",
        "expansion",
        "index",
        "level",
        "child_level",
        "child_pad",
        "start",
        "texts",
        "triples",
        "weight",
        "opened",
        "virtual",
    )


def _confirmed_entry(plan, state, key) -> _RenderEntry | None:
    """The cached entry for ``key``, confirming a migrated suspect if needed.

    Path-disjointness is the caller's concern; this only answers "is there
    a (still valid) rendered span for this configuration".
    """
    entry = state.renders.get(key)
    if entry is None:
        entry = state.render_suspects.pop(key, None)
        if entry is None:
            return None
        if not plan._confirm_triples(state, entry.triples):
            return None
        state.renders[key] = entry
    return entry


def _render_span(plan, state, cursor, indent, start_triple, start_level, blocked=()):
    """The frame-stack driver: render ``start_triple``'s subtree into chunks.

    Returns ``(out, info)`` where ``out`` is the chunk list (the subtree's
    span, indentation prefixes included) and ``info`` the start frame's
    close algebra as a :class:`SpanResult` (its ``span`` left ``None`` --
    the chunks are handed back separately so the document driver can join
    once).  ``blocked`` seeds the root-to-node path with ancestor triples,
    which is how a parallel worker rendering one sibling subtree observes
    the same stop condition a serial walk would.
    """
    from repro.engine.plan import _SUBTREE_TRIPLE_LIMIT

    virtual = plan._virtual
    pretty = indent is not None
    templates = plan._templates.get(indent)
    if templates is None:
        # opens / closes / empties keyed (tag, level); ends keyed tag;
        # pads keyed level.  In compact mode every level is normalised to 0.
        # setdefault so two racing publishes agree on one table (the
        # per-tag entries below are deterministic, so last-wins fills are
        # fine, but the five dicts themselves must be shared).
        templates = plan._templates.setdefault(indent, ({}, {}, {}, {}, {}))
    opens, closes, empties, ends, pads = templates

    def pad_of(level: int) -> str:
        found = pads.get(level)
        if found is None:
            found = pads[level] = "\n" + " " * (indent * level) if pretty else ""
        return found

    def open_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = opens.get(key)
        if found is None:
            found = opens[key] = f"{pad_of(level)}<{tag}>"
        return found

    def close_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = closes.get(key)
        if found is None:
            found = closes[key] = f"{pad_of(level)}</{tag}>"
        return found

    def empty_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = empties.get(key)
        if found is None:
            found = empties[key] = f"{pad_of(level)}<{tag}/>"
        return found

    def end_of(tag: str) -> str:
        found = ends.get(tag)
        if found is None:
            found = ends[tag] = f"</{tag}>"
        return found

    encoder = state.encoder
    if encoder is not None:
        text_of = encoder.escaped_text
    else:
        fragments = state.text_fragments

        def text_of(register) -> str:
            found = fragments.get(register)
            if found is None:
                found = fragments[register] = escape(relation_to_text(register))
            return found

    path = cursor._path
    for ancestor in blocked:
        path.add(ancestor)
    renders = state.renders
    limit = _SUBTREE_TRIPLE_LIMIT

    def lookup(key) -> _RenderEntry | None:
        entry = _confirmed_entry(plan, state, key)
        if entry is None or not path.isdisjoint(entry.triples):
            return None
        return entry

    out: list[str] = []
    info: SpanResult | None = None

    def open_frame(triple, level: int) -> _EmitFrame:
        expansion = plan._expansion(state, triple)
        cursor.charge(len(expansion))
        path.add(triple)
        tag = triple[1]
        frame = _EmitFrame()
        frame.triple = triple
        frame.expansion = expansion
        frame.index = 0
        frame.level = level
        frame.virtual = is_virtual = tag in virtual
        if pretty:
            frame.child_level = level if is_virtual else level + 1
        else:
            frame.child_level = 0
        frame.child_pad = pad_of(frame.child_level)
        frame.start = len(out)
        if not is_virtual:
            out.append("")  # placeholder: empty / inline / open, patched at close
        frame.texts = []
        frame.triples = {triple}
        frame.weight = len(expansion)
        frame.opened = 1
        return frame

    frames = [open_frame(start_triple, start_level)]
    while frames:
        frame = frames[-1]
        expansion = frame.expansion
        if frame.index < len(expansion):
            child = expansion[frame.index]
            frame.index += 1
            ctag = child[1]
            if ctag == TEXT_TAG:
                # Text leaves render from the interned fragments; they are
                # pure functions of their register, so they neither consult
                # the expansion memo nor take part in invalidation.  A
                # stop-condition hit yields empty text and, as in tree
                # mode, makes the surrounding spans path-dependent.
                if child in path:
                    fragment = ""
                    frame.triples = None
                else:
                    fragment = text_of(child[2])
                frame.opened += 1
                if ctag in virtual:
                    continue
                out.append(frame.child_pad + fragment if pretty else fragment)
                if frame.texts is not None:
                    frame.texts.append(fragment)
                continue
            if child in path:
                # Stop condition: the node exists but expands to nothing.
                frame.triples = None
                frame.opened += 1
                if ctag not in virtual:
                    out.append(empty_of(ctag, frame.child_level))
                    frame.texts = None
                continue
            entry = lookup((indent, child, frame.child_level))
            if entry is not None:
                cursor.charge(entry.weight)
                with plan._lock:
                    plan._render_hits += 1
                out.extend(entry.chunks)
                frame.weight += entry.weight
                frame.opened += entry.saved
                if entry.texts is None:
                    frame.texts = None
                elif frame.texts is not None:
                    frame.texts.extend(entry.texts)
                if frame.triples is not None:
                    frame.triples |= entry.triples
                    if len(frame.triples) > limit:
                        frame.triples = None
                continue
            frames.append(open_frame(child, frame.child_level))
            continue
        frames.pop()
        path.remove(frame.triple)
        with plan._lock:
            plan._render_misses += 1
        tag = frame.triple[1]
        start = frame.start
        texts = frame.texts
        if not frame.virtual:
            if texts is None:
                # Mixed content: patch the placeholder into an open tag,
                # close on its own line.  Children rendered themselves into
                # the span as they were visited.
                out[start] = open_of(tag, frame.level)
                out.append(close_of(tag, frame.level))
            elif texts:
                # Text-only: the whole span collapses to one inline line
                # (the buffered raw fragments replace their padded lines).
                out[start:] = [f"{open_of(tag, frame.level)}{''.join(texts)}{end_of(tag)}"]
            else:
                # No children at all (len(out) == start + 1 here).
                out[start] = empty_of(tag, frame.level)
        triples = frame.triples
        if triples is not None and len(out) - start <= _RENDER_SPAN_LIMIT:
            entry = _RenderEntry(
                tuple(out[start:]),
                tuple(texts) if frame.virtual and texts is not None else None,
                frozenset(triples),
                frame.weight,
                frame.opened,
            )
            renders[(indent, frame.triple, frame.level)] = entry
        if frames:
            parent = frames[-1]
            parent.weight += frame.weight
            parent.opened += frame.opened
            if frame.virtual:
                if texts is None:
                    parent.texts = None
                elif parent.texts is not None:
                    parent.texts.extend(texts)
            else:
                parent.texts = None
            if triples is None:
                parent.triples = None
            elif parent.triples is not None:
                # Small-to-large: donate the bigger set upward (see
                # _build_tree), bounding bookkeeping on deep spines.
                if len(parent.triples) < len(triples):
                    triples |= parent.triples
                    parent.triples = triples
                else:
                    parent.triples |= triples
                if len(parent.triples) > limit:
                    parent.triples = None
        else:
            info = SpanResult(
                None,
                tuple(texts) if frame.virtual and texts is not None else None,
                frozenset(triples) if triples is not None else None,
                frame.weight,
                frame.opened,
            )
    for ancestor in blocked:
        path.discard(ancestor)
    return out, info


def render_document(plan, state, budget: int, indent: int | None) -> str:
    """Render one instance's output document as a string (no trees built)."""
    virtual = plan._virtual
    if plan._root_tag in virtual or plan._root_tag == TEXT_TAG:
        # Virtual or text roots splice children at the top level, where the
        # single-root / no-top-level-text document rules live.  They are
        # rare (no shipped workload uses one); keep the event serialiser as
        # the exact reference semantics, error messages included.
        from repro.xmltree.serialize import IncrementalXmlSerializer

        serializer = IncrementalXmlSerializer(indent=indent)
        return serializer.feed_all(plan._stream_events(state, budget)).finish()

    pretty = indent is not None
    cursor = plan._cursor(state, budget)
    root_triple = plan._root_triple()
    root_key = (indent, root_triple, 0)

    # Cache-hot fast path: the whole document was rendered for this
    # instance version (or provably re-renders identically after the
    # migration's delta) -- hand the joined buffer back.  The path is empty
    # here, so confirmation is the only reuse condition.
    root_entry = _confirmed_entry(plan, state, root_key)
    if root_entry is not None:
        cursor.charge(root_entry.weight)
        with plan._lock:
            plan._render_hits += 1
        document = root_entry.document
        if document is None:
            document = "".join(root_entry.chunks)
            if pretty:
                document = document[1:]
            root_entry.document = document
        return document

    out, _ = _render_span(plan, state, cursor, indent, root_triple, 0)
    document = "".join(out)
    if pretty:
        document = document[1:]
    root_entry = state.renders.get(root_key)
    if root_entry is not None:
        root_entry.document = document
    return document


def render_subtree(
    plan,
    state,
    budget: int,
    indent: int | None,
    triple,
    level: int,
    blocked=(),
) -> SpanResult:
    """Render one subtree's span: the worker-side unit of ``repro.parallel``.

    ``blocked`` is the root-to-node path above the subtree (for a direct
    child of the root: the root's triple), so stop-condition hits inside
    the subtree behave exactly as in a serial walk.  The span lands in this
    process's rendered-span cache as a side effect, which is what "merging
    per-worker memo caches" means: the parent re-installs the returned
    entries, a worker keeps its own cache warm across tasks.
    """
    cursor = plan._cursor(state, budget)
    blocked = frozenset(blocked)
    entry = _confirmed_entry(plan, state, (indent, triple, level))
    if entry is not None and blocked.isdisjoint(entry.triples):
        cursor.charge(entry.weight)
        with plan._lock:
            plan._render_hits += 1
        return SpanResult(
            "".join(entry.chunks), entry.texts, entry.triples, entry.weight, entry.saved
        )
    out, info = _render_span(plan, state, cursor, indent, triple, level, blocked)
    info.span = "".join(out)
    return info
