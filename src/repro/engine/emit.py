"""The bytes-native publish driver: serialise straight from the expansions.

:meth:`repro.engine.plan.PublishingPlan.publish_bytes` routes here.  The
other evaluation modes materialise a Σ-tree (or an event stream) and hand it
to a serialiser; profiling shows that on warm caches the publish hot path is
dominated by exactly that re-walk -- per-node ``TreeNode`` construction or
per-event serialiser dispatch plus text re-rendering -- while the memoised
expansions answer in a dictionary lookup.  This driver removes the middle
layer entirely:

* **byte templates** -- the constant skeleton of the output (``<tag>``,
  ``</tag>``, ``<tag/>``, newline-plus-indentation prefixes) is preassembled
  once per ``(tag, level)`` on the plan and reused across publishes, so the
  steady-state cost of an element is a few dict lookups and list appends;
* **interned character data** -- text registers render through
  :meth:`~repro.relational.columnar.DictionaryEncoder.escaped_text` (encoded
  pipeline: escaped fragments are interned next to the value ids on the
  shared encoder and survive version migrations) or a per-instance-state
  fragment memo (row pipeline), so ``escape``/:func:`relation_to_text` run
  once per distinct register, not once per node visit;
* **a rendered-bytes cache** -- the rendered span of every clean subtree is
  cached per ``(state, tag, register)`` configuration and level, exactly
  parallel to the structural subtree cache of tree mode: reuse requires the
  current root-to-node path to be disjoint from the subtree's configuration
  set (stop-condition safety), reuse charges the node budget the subtree's
  traversal would have charged, and :meth:`PublishingPlan.republish`
  migrates entries across versions with per-rule invalidation and lazy
  confirmation.  A republish therefore re-renders only invalidated spans,
  and a cache-hot publish of an unchanged document is a buffer handoff.

Output is **byte-identical** to the established serialisers on every
backend: ``indent=N`` matches :func:`repro.xmltree.serialize.to_xml` /
:class:`~repro.xmltree.serialize.IncrementalXmlSerializer`, ``indent=None``
matches the compact forms.  The rendering rules mirrored here are: an
element with no children is ``<tag/>``; an element whose children are all
text renders inline on one line; anything else renders multi-line with
per-level indentation; virtual tags contribute their children's spans
spliced at the enclosing element's level.

No ``TreeNode`` is ever constructed: working state is a frame stack over
the expansion tuples and one flat list of string chunks.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.relational.domain import relation_to_text
from repro.xmltree.tree import TEXT_TAG

#: Largest chunk span a cached rendered subtree may hold.  Bigger spans are
#: re-emitted from the (still cached) child entries instead, which bounds
#: the cache's memory on blow-up outputs.
_RENDER_SPAN_LIMIT = 65536


class _RenderEntry:
    """One cached rendered span: the bytes-path analogue of ``_SubtreeEntry``.

    ``chunks`` is the span the subtree contributes to the output buffer
    (already fully rendered, including indentation prefixes); ``texts`` is
    the raw escaped character data when the contribution is pure text (a
    virtual subtree of text leaves -- the enclosing element may still render
    inline), ``None`` when it contains an element.  ``triples`` / ``weight``
    / ``saved`` have the subtree-cache semantics: stop-condition safety and
    delta invalidation, node-budget charge, and hit accounting.  ``document``
    memoises the joined document on root entries so a cache-hot publish
    returns one interned string.
    """

    __slots__ = ("chunks", "texts", "triples", "weight", "saved", "document")

    def __init__(
        self,
        chunks: tuple[str, ...],
        texts: tuple[str, ...] | None,
        triples: frozenset,
        weight: int,
        saved: int,
    ) -> None:
        self.chunks = chunks
        self.texts = texts
        self.triples = triples
        self.weight = weight
        self.saved = saved
        self.document: str | None = None


class _EmitFrame:
    """One open node of the byte-rendering walk.

    ``start`` is the frame's span start in the shared output buffer (for an
    element, the index of its placeholder slot -- patched at close once the
    empty/inline/mixed shape is known; the incremental serialiser solves the
    same problem with pending frames).  ``texts`` buffers raw escaped text
    while the frame's contribution is still pure text; it flips to ``None``
    the moment an element child arrives.  ``triples`` / ``weight`` /
    ``opened`` feed the cached entry, with ``None`` poisoning sharing after
    a stop-condition hit exactly as in tree mode.
    """

    __slots__ = (
        "triple",
        "expansion",
        "index",
        "level",
        "child_level",
        "child_pad",
        "start",
        "texts",
        "triples",
        "weight",
        "opened",
        "virtual",
    )


def render_document(plan, state, budget: int, indent: int | None) -> str:
    """Render one instance's output document as a string (no trees built)."""
    virtual = plan._virtual
    if plan._root_tag in virtual or plan._root_tag == TEXT_TAG:
        # Virtual or text roots splice children at the top level, where the
        # single-root / no-top-level-text document rules live.  They are
        # rare (no shipped workload uses one); keep the event serialiser as
        # the exact reference semantics, error messages included.
        from repro.xmltree.serialize import IncrementalXmlSerializer

        serializer = IncrementalXmlSerializer(indent=indent)
        return serializer.feed_all(plan._stream_events(state, budget)).finish()

    from repro.engine.plan import _SUBTREE_TRIPLE_LIMIT

    pretty = indent is not None
    templates = plan._templates.get(indent)
    if templates is None:
        # opens / closes / empties keyed (tag, level); ends keyed tag;
        # pads keyed level.  In compact mode every level is normalised to 0.
        templates = plan._templates[indent] = ({}, {}, {}, {}, {})
    opens, closes, empties, ends, pads = templates

    def pad_of(level: int) -> str:
        found = pads.get(level)
        if found is None:
            found = pads[level] = "\n" + " " * (indent * level) if pretty else ""
        return found

    def open_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = opens.get(key)
        if found is None:
            found = opens[key] = f"{pad_of(level)}<{tag}>"
        return found

    def close_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = closes.get(key)
        if found is None:
            found = closes[key] = f"{pad_of(level)}</{tag}>"
        return found

    def empty_of(tag: str, level: int) -> str:
        key = (tag, level)
        found = empties.get(key)
        if found is None:
            found = empties[key] = f"{pad_of(level)}<{tag}/>"
        return found

    def end_of(tag: str) -> str:
        found = ends.get(tag)
        if found is None:
            found = ends[tag] = f"</{tag}>"
        return found

    encoder = state.encoder
    if encoder is not None:
        text_of = encoder.escaped_text
    else:
        fragments = state.text_fragments

        def text_of(register) -> str:
            found = fragments.get(register)
            if found is None:
                found = fragments[register] = escape(relation_to_text(register))
            return found

    cursor = plan._cursor(state, budget)
    path = cursor._path
    renders = state.renders
    render_suspects = state.render_suspects
    limit = _SUBTREE_TRIPLE_LIMIT
    root_triple = plan._root_triple()
    root_key = (indent, root_triple, 0)

    def lookup(key) -> _RenderEntry | None:
        entry = renders.get(key)
        if entry is None:
            entry = render_suspects.pop(key, None)
            if entry is None:
                return None
            if not plan._confirm_triples(state, entry.triples):
                return None
            renders[key] = entry
        if not path.isdisjoint(entry.triples):
            return None
        return entry

    # Cache-hot fast path: the whole document was rendered for this
    # instance version (or provably re-renders identically after the
    # migration's delta) -- hand the joined buffer back.
    root_entry = lookup(root_key)
    if root_entry is not None:
        cursor.charge(root_entry.weight)
        plan._render_hits += 1
        document = root_entry.document
        if document is None:
            document = "".join(root_entry.chunks)
            if pretty:
                document = document[1:]
            root_entry.document = document
        return document

    out: list[str] = []

    def open_frame(triple, level: int) -> _EmitFrame:
        expansion = plan._expansion(state, triple)
        cursor.charge(len(expansion))
        path.add(triple)
        tag = triple[1]
        frame = _EmitFrame()
        frame.triple = triple
        frame.expansion = expansion
        frame.index = 0
        frame.level = level
        frame.virtual = is_virtual = tag in virtual
        if pretty:
            frame.child_level = level if is_virtual else level + 1
        else:
            frame.child_level = 0
        frame.child_pad = pad_of(frame.child_level)
        frame.start = len(out)
        if not is_virtual:
            out.append("")  # placeholder: empty / inline / open, patched at close
        frame.texts = []
        frame.triples = {triple}
        frame.weight = len(expansion)
        frame.opened = 1
        return frame

    frames = [open_frame(root_triple, 0)]
    while frames:
        frame = frames[-1]
        expansion = frame.expansion
        if frame.index < len(expansion):
            child = expansion[frame.index]
            frame.index += 1
            ctag = child[1]
            if ctag == TEXT_TAG:
                # Text leaves render from the interned fragments; they are
                # pure functions of their register, so they neither consult
                # the expansion memo nor take part in invalidation.  A
                # stop-condition hit yields empty text and, as in tree
                # mode, makes the surrounding spans path-dependent.
                if child in path:
                    fragment = ""
                    frame.triples = None
                else:
                    fragment = text_of(child[2])
                frame.opened += 1
                if ctag in virtual:
                    continue
                out.append(frame.child_pad + fragment if pretty else fragment)
                if frame.texts is not None:
                    frame.texts.append(fragment)
                continue
            if child in path:
                # Stop condition: the node exists but expands to nothing.
                frame.triples = None
                frame.opened += 1
                if ctag not in virtual:
                    out.append(empty_of(ctag, frame.child_level))
                    frame.texts = None
                continue
            entry = lookup((indent, child, frame.child_level))
            if entry is not None:
                cursor.charge(entry.weight)
                plan._render_hits += 1
                out.extend(entry.chunks)
                frame.weight += entry.weight
                frame.opened += entry.saved
                if entry.texts is None:
                    frame.texts = None
                elif frame.texts is not None:
                    frame.texts.extend(entry.texts)
                if frame.triples is not None:
                    frame.triples |= entry.triples
                    if len(frame.triples) > limit:
                        frame.triples = None
                continue
            frames.append(open_frame(child, frame.child_level))
            continue
        frames.pop()
        path.remove(frame.triple)
        plan._render_misses += 1
        tag = frame.triple[1]
        start = frame.start
        texts = frame.texts
        if not frame.virtual:
            if texts is None:
                # Mixed content: patch the placeholder into an open tag,
                # close on its own line.  Children rendered themselves into
                # the span as they were visited.
                out[start] = open_of(tag, frame.level)
                out.append(close_of(tag, frame.level))
            elif texts:
                # Text-only: the whole span collapses to one inline line
                # (the buffered raw fragments replace their padded lines).
                out[start:] = [f"{open_of(tag, frame.level)}{''.join(texts)}{end_of(tag)}"]
            else:
                # No children at all (len(out) == start + 1 here).
                out[start] = empty_of(tag, frame.level)
        triples = frame.triples
        if triples is not None and len(out) - start <= _RENDER_SPAN_LIMIT:
            entry = _RenderEntry(
                tuple(out[start:]),
                tuple(texts) if frame.virtual and texts is not None else None,
                frozenset(triples),
                frame.weight,
                frame.opened,
            )
            renders[(indent, frame.triple, frame.level)] = entry
        if frames:
            parent = frames[-1]
            parent.weight += frame.weight
            parent.opened += frame.opened
            if frame.virtual:
                if texts is None:
                    parent.texts = None
                elif parent.texts is not None:
                    parent.texts.extend(texts)
            else:
                parent.texts = None
            if triples is None:
                parent.triples = None
            elif parent.triples is not None:
                # Small-to-large: donate the bigger set upward (see
                # _build_tree), bounding bookkeeping on deep spines.
                if len(parent.triples) < len(triples):
                    triples |= parent.triples
                    parent.triples = triples
                else:
                    parent.triples |= triples
                if len(parent.triples) > limit:
                    parent.triples = None
    document = "".join(out)
    if pretty:
        document = document[1:]
    root_entry = renders.get(root_key)
    if root_entry is not None:
        root_entry.document = document
    return document
