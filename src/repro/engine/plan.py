"""The compiled, batch-first evaluation engine.

The interpreter of :mod:`repro.core.runtime` follows the step relation of
Section 3 literally and pays for that fidelity on every call: each ``publish``
re-validates the transducer, re-extends the source instance with the register
relations at *every* node (copying the whole schema and relation table), and
re-evaluates rule queries from scratch even when the same ``(state, tag,
register)`` configuration repeats thousands of times.

:class:`Engine.compile` performs all per-transducer work once and returns a
:class:`PublishingPlan`:

* **dispatch** -- the rule for every ``(state, tag)`` pair is resolved to a
  tuple of compiled items with pre-bound query evaluators;
* **register schemas** -- the extended schemas making ``Reg`` / ``Reg_<tag>``
  visible are built once per ``(tag, arity)`` and shared across nodes, and
  register relations are overlaid on the source without copying it
  (:meth:`~repro.relational.instance.Instance.overlaid`);
* **memoised expansions** -- the transformation is *confluent*: the one-step
  expansion of a node depends only on its ``(state, tag, register)`` triple
  and the source instance, never on its ancestors (the stop condition is
  applied per path, outside the memo).  The plan caches expansions per
  instance, within and across runs, so repeated subtree configurations --
  ubiquitous in recursive views like the prerequisite hierarchy -- cost a
  dictionary lookup instead of a query evaluation.

Three evaluation modes share that machinery:

* :meth:`PublishingPlan.publish` -- the materialised Σ-tree of one instance
  (batches of instances share the plan's LRU-bounded per-instance caches);
* :meth:`PublishingPlan.publish_full` -- the interpreter-compatible
  :class:`~repro.core.runtime.TransformationResult` with the annotated tree;
* :meth:`PublishingPlan.publish_events` -- a lazy SAX-style event stream with
  virtual-tag elimination done on the fly, so Proposition 1 blow-ups can be
  serialised without ever materialising the tree.

These (plus :meth:`~PublishingPlan.republish` below) are the core drivers
the serving layer (:class:`repro.serve.ViewServer`) routes onto; the batch
and serialisation conveniences (:meth:`~PublishingPlan.publish_many`,
:meth:`~PublishingPlan.publish_iter`, :meth:`~PublishingPlan.publish_xml`)
are deprecated shims delegating to :mod:`repro.serve.oneshot`.

On instances carrying a dictionary encoding
(:func:`repro.relational.columnar.ensure_encoded`) the whole pipeline runs
in **integer space**: register contents and memo keys are frozensets of
encoded tuples, planned rule queries execute on the vectorized columnar
kernel with the registers fed through the encoded-override channel (no
overlay instance, no per-node schema extension), and values are decoded only
where text is emitted or sibling order consults the implicit order on ``D``.
Output is byte-identical with the encoding on or off.

On top of them sits **incremental view maintenance**
(:meth:`PublishingPlan.republish`): given a source
:class:`~repro.relational.delta.Delta`, the per-instance caches migrate to
the updated instance instead of being discarded.  Memoised expansions are
invalidated *per rule*: only ``(state, tag, register)`` entries whose rule
queries read a changed relation are dropped (``cache_stats`` counts them as
``invalidated`` vs ``retained``), and whole previously-built subtrees are
reused by object identity when every configuration inside them provably
re-expands the same way -- which also makes the
:func:`~repro.xmltree.diff.diff_trees` edit script between the old and new
documents cheap to compute.  Incremental output is always equal -- tree- and
byte-wise -- to a from-scratch publish; the full republish stays as the
executable specification and differential oracle.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.rules import GENERIC_REGISTER_NAME, RuleQuery, register_relation_name
from repro.core.runtime import (
    DEFAULT_MAX_NODES,
    AnnotatedNode,
    RegisterContent,
    TransformationLimitError,
    TransformationResult,
)
from repro.core.transducer import PublishingTransducer
from repro.core.virtual import eliminate_virtual_nodes, strip_annotations
from repro.query.planner import plan_query
from repro.relational.delta import Delta
from repro.relational.domain import DataValue, relation_to_text, tuple_order_key
from repro.relational.instance import Instance, Relation
from repro.relational.schema import RelationSchema, RelationalSchema
from repro.xmltree.diff import EditScript, diff_trees
from repro.xmltree.events import CloseEvent, OpenEvent, TextEvent, XmlEvent
from repro.xmltree.tree import TEXT_TAG, TreeNode

#: A node configuration: the triple the transformation is confluent over.
Triple = tuple[str, str, RegisterContent]

#: Largest configuration-set size a cached subtree may carry.  Bigger
#: subtrees are rebuilt from the (still memoised) expansions instead, which
#: bounds the bookkeeping cost of structural sharing on blow-up outputs.
_SUBTREE_TRIPLE_LIMIT = 4096

def _warn_deprecated(method: str, replacement: str) -> None:
    """One :class:`DeprecationWarning` per callsite (the ``default`` filter
    keys on the caller's file and line) pointing at the serving layer."""
    warnings.warn(
        f"PublishingPlan.{method}() is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _shadowed_names(tag: str) -> frozenset[str]:
    """The relation names the register overlay shadows for ``tag``-nodes."""
    return frozenset({GENERIC_REGISTER_NAME, register_relation_name(tag)})


class _PairDelta:
    """How one rule's expansions respond to the current migration's delta.

    ``mode`` is one of ``"clean"`` (no rule query reads a changed relation:
    every register re-expands identically), ``"witness"`` (``dirty`` holds
    the register tuples that can participate in a changed derivation --
    computed once per rule by running the delta variants over the union of
    all invalidated registers -- so a register disjoint from it is provably
    unaffected; ``dirty_all`` marks register-independent changes),
    ``"variants"`` (witnesses unavailable: check each register with the
    per-occurrence delta plans) or ``"recompute"`` (unplanned or
    non-monotone rule queries: no cheap check exists).
    """

    __slots__ = ("mode", "checks", "dirty", "dirty_all")

    def __init__(self, mode, checks=None, dirty=None, dirty_all=False) -> None:
        self.mode = mode
        self.checks = checks
        self.dirty = dirty
        self.dirty_all = dirty_all


_PAIR_CLEAN = _PairDelta("clean")
_PAIR_RECOMPUTE = _PairDelta("recompute")


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the plan's expansion-cache counters.

    Attributes
    ----------
    hits:
        Expansions answered from the memo (including every expansion inside
        a structurally reused subtree).
    misses:
        Expansions that had to evaluate their rule queries.
    evictions:
        Whole per-instance caches dropped by the LRU policy.
    instances:
        Distinct per-instance caches created (including migrated versions).
    invalidated:
        Memoised expansions dropped by :meth:`PublishingPlan.republish`
        because their rule queries read a changed relation.
    retained:
        Memoised expansions carried over across :meth:`republish` untouched.
    rendered_hits:
        Pre-rendered byte spans reused by the bytes-native publish path
        (:meth:`PublishingPlan.publish_bytes`).
    rendered_misses:
        Subtree spans the bytes path had to render from the expansions.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    instances: int = 0
    invalidated: int = 0
    retained: int = 0
    rendered_hits: int = 0
    rendered_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of expansions answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """The counters as a plain dict (the pre-dataclass key set plus the
        incremental-maintenance counters and ``hit_rate``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "instances": self.instances,
            "invalidated": self.invalidated,
            "retained": self.retained,
            "rendered_hits": self.rendered_hits,
            "rendered_misses": self.rendered_misses,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class RepublishResult:
    """The outcome of one incremental republish step.

    ``tree`` equals (and serialises byte-identically to) a from-scratch
    publish of ``instance``; unchanged subtrees are shared by object
    identity with the previous tree.  ``edits`` is the
    :class:`~repro.xmltree.diff.EditScript` from the previous tree to
    ``tree``, so consumers can ship the diff instead of the document.
    ``invalidated`` / ``retained`` count the memoised expansions dropped
    vs carried over by this step.  A result can be passed back to
    :meth:`PublishingPlan.republish` as ``prev`` to chain updates.
    """

    instance: Instance
    tree: TreeNode
    edits: EditScript
    delta: Delta
    invalidated: int = 0
    retained: int = 0


class _CompiledItem:
    """One right-hand-side item with its evaluator pre-bound.

    The rule query is planned once at compile time through the shared
    :mod:`repro.query` planner; range-restricted queries bind directly to
    :meth:`QueryPlan.execute`, unsafe ones to the query's own (active-domain)
    evaluator.
    """

    __slots__ = ("state", "tag", "group_arity", "plan", "evaluate", "relations")

    def __init__(self, state: str, tag: str, rule_query: RuleQuery) -> None:
        self.state = state
        self.tag = tag
        self.group_arity = rule_query.group_arity
        self.plan = plan_query(rule_query.query)
        self.evaluate = (
            self.plan.execute if self.plan is not None else rule_query.query.evaluate
        )
        self.relations = frozenset(rule_query.query.relation_names())


class _SubtreeEntry:
    """A cached, context-free contribution of one configuration's subtree.

    ``nodes`` is what the subtree adds to its parent's child list (one
    element node, or the spliced children for a virtual tag); ``triples`` is
    every configuration occurring in the subtree, used both for
    stop-condition safety (the subtree may only be reused on a path disjoint
    from it) and for invalidation after a source delta; ``weight`` is the
    node-budget cost the subtree's traversal would have charged; ``saved``
    is the number of expansions a reuse answers at once.
    """

    __slots__ = ("nodes", "triples", "weight", "saved")

    def __init__(
        self,
        nodes: tuple[TreeNode, ...],
        triples: frozenset[Triple],
        weight: int,
        saved: int,
    ) -> None:
        self.nodes = nodes
        self.triples = triples
        self.weight = weight
        self.saved = saved


class _InstanceState:
    """Everything the plan caches for one source instance.

    ``subtrees`` holds :class:`_SubtreeEntry` values known to be valid for
    this instance; after a :meth:`PublishingPlan.republish` migration,
    entries touching an invalidated ``(state, tag)`` pair are parked in
    ``suspects`` and confirmed lazily against ``prior_expansions`` (the
    expansions the previous version memoised for the invalidated pairs): a
    suspect whose configurations all re-expand identically is promoted back,
    anything else is dropped.  Suspects live for one migration generation
    only -- the next migration discards whatever was never confirmed.

    ``renders`` / ``render_suspects`` are the bytes-path analogue (see
    :mod:`repro.engine.emit`): pre-rendered byte spans keyed by
    ``(indent, triple, level)``, migrated and lazily confirmed exactly like
    subtrees.  ``text_fragments`` memoises escaped character data per row
    register (the encoded pipeline interns fragments on the shared encoder
    instead, so they survive version migrations for free); it carries over
    across migrations unconditionally because a text node's rendering is a
    function of its register alone, never of the source instance.
    """

    __slots__ = (
        "instance",
        "encoder",
        "active_domain",
        "ext_schemas",
        "expansions",
        "subtrees",
        "suspects",
        "renders",
        "render_suspects",
        "text_fragments",
        "prior_expansions",
        "invalid_pairs",
        "prior_instance",
        "delta",
        "pair_checks",
    )

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        # When the instance carries a dictionary encoding, the whole
        # pipeline for it runs in integer space: register contents and memo
        # keys are frozensets of encoded tuples, planned rule queries run on
        # the columnar kernel, and values are decoded only where text is
        # emitted.  Ids are stable across apply_delta migrations (the
        # encoder is append-only and shared along the version lineage), so
        # encoded memo entries survive republish.
        self.encoder = instance._encoding
        self.active_domain = instance.active_domain()
        self.ext_schemas: dict[tuple[str, int], RelationalSchema] = {}
        self.expansions: dict[Triple, tuple[Triple, ...]] = {}
        self.subtrees: dict[Triple, _SubtreeEntry] = {}
        self.suspects: dict[Triple, _SubtreeEntry] = {}
        # Keyed (indent, triple, level) -> repro.engine.emit._RenderEntry.
        self.renders: dict[tuple, object] = {}
        self.render_suspects: dict[tuple, object] = {}
        self.text_fragments: dict[RegisterContent, str] = {}
        self.prior_expansions: dict[Triple, tuple[Triple, ...]] = {}
        self.invalid_pairs: frozenset[tuple[str, str]] = frozenset()
        self.prior_instance: Instance | None = None
        self.delta: Delta | None = None
        # Per-(state, tag) delta-check machinery for this migration's delta:
        # a list of (DeltaPlan, touched relations) or None for rules whose
        # queries cannot be checked cheaply (unplanned / non-monotone).
        self.pair_checks: dict[tuple[str, str], list | None] = {}


class _Frame:
    """One node of the depth-first construction (tree and event modes).

    ``triples`` accumulates the configurations of the subtree while it is
    still shareable; it flips to ``None`` -- poisoning every ancestor -- when
    a stop-condition hit makes the subtree path-dependent or the set
    outgrows :data:`_SUBTREE_TRIPLE_LIMIT`.  ``weight`` and ``opened`` feed
    the cached entry's budget charge and hit accounting.
    """

    __slots__ = (
        "triple",
        "expansion",
        "index",
        "built",
        "text",
        "stopped",
        "triples",
        "weight",
        "opened",
    )

    def __init__(
        self,
        triple: Triple,
        expansion: tuple[Triple, ...],
        text: str | None,
        stopped: bool,
    ) -> None:
        self.triple = triple
        self.expansion = expansion
        self.index = 0
        self.built: list[TreeNode] = []
        self.text = text
        self.stopped = stopped
        self.triples: set[Triple] | None = None if stopped else {triple}
        self.weight = len(expansion)
        self.opened = 1


class _Cursor:
    """The traversal invariant shared by all three evaluation modes.

    One cursor per run owns the stop-condition path, the node-budget
    accounting and the text extraction, so the tree, event and annotated
    drivers cannot diverge on those semantics.
    """

    __slots__ = ("_plan", "_state", "_budget", "_path", "produced")

    def __init__(self, plan: "PublishingPlan", state: "_InstanceState", budget: int) -> None:
        self._plan = plan
        self._state = state
        self._budget = budget
        self._path: set[Triple] = set()
        self.produced = 1

    def charge(self, count: int) -> None:
        """Account for ``count`` produced nodes against the budget."""
        self.produced += count
        if self.produced > self._budget:
            raise TransformationLimitError(
                f"transformation exceeded the node budget of {self._budget} nodes; "
                f"raise max_nodes if the blow-up is intended"
            )

    def path_disjoint(self, triples: frozenset[Triple]) -> bool:
        """True when no configuration of ``triples`` lies on the current path."""
        return self._path.isdisjoint(triples)

    def open(self, triple: Triple) -> _Frame:
        """Enter a node: stop condition, memoised expansion, budget, path push."""
        if triple in self._path:
            return _Frame(triple, (), None, stopped=True)
        expansion = self._plan._expansion(self._state, triple)
        self.charge(len(expansion))
        if triple[1] == TEXT_TAG:
            register = triple[2]
            encoder = self._state.encoder
            if encoder is not None:
                register = encoder.decode_rows(register)
            text = relation_to_text(register)
        else:
            text = None
        self._path.add(triple)
        return _Frame(triple, expansion, text, stopped=False)

    def close(self, frame: _Frame) -> None:
        """Leave a node: pop it from the stop-condition path."""
        if not frame.stopped:
            self._path.remove(frame.triple)


class PublishingPlan:
    """A transducer compiled for repeated evaluation.  Built by :class:`Engine`."""

    def __init__(
        self,
        transducer: PublishingTransducer,
        schema: RelationalSchema | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        cache_instances: int = 8,
    ) -> None:
        if schema is not None:
            problems = transducer.validate_against_schema(schema)
            if problems:
                raise ValueError("; ".join(problems))
        self._transducer = transducer
        self._schema = schema
        self._max_nodes = max_nodes
        self._cache_instances = max(1, cache_instances)
        self._virtual = transducer.virtual_tags
        self._start_state = transducer.start_state
        self._root_tag = transducer.root_tag
        self._dispatch_table: dict[tuple[str, str], tuple[_CompiledItem, ...]] = {}
        # Source relations read per (state, tag): the invalidation index of
        # incremental republish.  Only the two names the overlay actually
        # shadows for this rule's tag are excluded -- a source relation that
        # happens to be called ``Reg_<other>`` is still a source dependency.
        self._pair_sources: dict[tuple[str, str], frozenset[str]] = {}
        for rule_ in transducer.rules:
            self._dispatch_table[(rule_.state, rule_.tag)] = tuple(
                _CompiledItem(item.state, item.tag, item.query) for item in rule_.items
            )
            shadowed = _shadowed_names(rule_.tag)
            sources: set[str] = set()
            for item in rule_.items:
                sources.update(item.query.query.relation_names() - shadowed)
            self._pair_sources[(rule_.state, rule_.tag)] = frozenset(sources)
        # Per-instance caches in LRU order (the batch-first working set).
        # The lock guards the LRU structure and the counters below so
        # concurrent publish() calls (ViewServer with a pool, threaded
        # callers) neither corrupt the eviction order nor tear counter
        # updates.  Memo *values* need no lock: expansions are pure
        # functions of (triple, instance), so racing writers store the
        # same result and CPython dict operations are atomic.
        self._lock = threading.RLock()
        self._states: dict[Instance, _InstanceState] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._instances_seen = 0
        self._invalidated = 0
        self._retained = 0
        self._render_hits = 0
        self._render_misses = 0
        # Byte-template tables of the bytes-native publish path, one per
        # indent mode (repro.engine.emit._Templates); tag sets are
        # per-transducer, so per-plan caching is exactly right.
        self._templates: dict[int | None, object] = {}

    # -- process-boundary support --------------------------------------------

    def __getstate__(self):
        """Pickle only the compiled core: no caches, no lock, zero counters.

        This is what ``repro.parallel`` ships to a worker once per plan:
        the transducer, dispatch table and query plans cross the process
        boundary; per-instance memo/render caches are rebuilt worker-side
        (they are keyed by instance objects that do not cross), and the
        counters start at zero so a worker copy reports only its own work.
        """
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_states"] = {}
        state["_templates"] = {}
        for counter in (
            "_hits",
            "_misses",
            "_evictions",
            "_instances_seen",
            "_invalidated",
            "_retained",
            "_render_hits",
            "_render_misses",
        ):
            state[counter] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- introspection -------------------------------------------------------

    @property
    def transducer(self) -> PublishingTransducer:
        """The compiled transducer."""
        return self._transducer

    @property
    def max_nodes(self) -> int:
        """The default node budget of this plan."""
        return self._max_nodes

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of the shared expansion cache, as a typed
        :class:`CacheStats` (use :meth:`CacheStats.as_dict` for a plain dict)."""
        with self._lock:
            return CacheStats(
                self._hits,
                self._misses,
                self._evictions,
                self._instances_seen,
                self._invalidated,
                self._retained,
                self._render_hits,
                self._render_misses,
            )

    def clear_cache(self) -> None:
        """Drop all per-instance caches (counters are preserved)."""
        with self._lock:
            self._states.clear()

    def rule_plans(self):
        """Yield ``(state, tag, item_index, QueryPlan | None)`` per rule item.

        One entry per right-hand-side item of every declared rule, in
        declaration order; the query plan is ``None`` for items whose rule
        query could not be planned (unsafe queries evaluated naively).  This
        is the introspection hook behind the serving layer's
        :class:`~repro.serve.stats.ExplainReport`, which aggregates each
        plan's join order, backend and delta strategy into one report.
        The table is snapshotted first: dispatch lazily inserts entries for
        undeclared pairs, so a publish interleaved with this iteration must
        not blow it up.
        """
        for (state, tag), items in list(self._dispatch_table.items()):
            for index, item in enumerate(items):
                yield state, tag, index, item.plan

    # -- the public evaluation surface --------------------------------------

    def publish(self, instance: Instance, max_nodes: int | None = None) -> TreeNode:
        """Evaluate on ``instance`` and return the output Σ-tree ``tau(I)``."""
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        return self._build_tree(state, budget)

    def publish_many(
        self, instances: Iterable[Instance], max_nodes: int | None = None
    ) -> list[TreeNode]:
        """Deprecated batch convenience; use the serving layer instead.

        Delegates to :func:`repro.serve.publish_stream` (all instances of
        the batch share this plan's LRU-bounded per-instance caches, as
        before) and emits one :class:`DeprecationWarning` per callsite.  The
        supported surface is :meth:`repro.serve.server.ViewServer.publish`
        -- one call per source -- with :meth:`publish` remaining the core
        single-instance driver.
        """
        from repro.serve.oneshot import publish_stream

        _warn_deprecated(
            "publish_many",
            "ViewServer.publish (one call per source) or repro.serve.publish_stream",
        )
        return list(publish_stream(self, instances, max_nodes))

    def publish_iter(
        self, instances: Iterable[Instance], max_nodes: int | None = None
    ) -> Iterator[TreeNode]:
        """Deprecated lazy-batch convenience; use the serving layer instead.

        Delegates to :func:`repro.serve.publish_stream` -- one tree yielded
        per input instance, the input iterable advanced only on demand --
        and emits one :class:`DeprecationWarning` per callsite.
        """
        from repro.serve.oneshot import publish_stream

        _warn_deprecated("publish_iter", "repro.serve.publish_stream")
        return publish_stream(self, instances, max_nodes)

    def publish_full(
        self, instance: Instance, max_nodes: int | None = None
    ) -> TransformationResult:
        """Evaluate and return the interpreter-compatible full result object."""
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        root, steps = self._build_annotated(state, budget)
        tree = eliminate_virtual_nodes(strip_annotations(root), self._virtual)
        return TransformationResult(self._transducer, instance, root, tree, steps)

    def publish_events(
        self, instance: Instance, max_nodes: int | None = None
    ) -> Iterator[XmlEvent]:
        """Lazily yield the SAX-style event stream of the output Σ-tree.

        Virtual tags are eliminated on the fly: they contribute no events,
        only their (recursively streamed) children.  The traversal itself
        holds one frame per level, so no part of the output tree is ever
        materialised; note that the expansion memo still grows with the
        number of *distinct* ``(state, tag, register)`` configurations (call
        :meth:`clear_cache` between streams to bound it).
        """
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        return self._stream_events(state, budget)

    def publish_bytes(
        self,
        instance: Instance,
        indent: int | None = 2,
        write=None,
        max_nodes: int | None = None,
    ) -> str:
        """Serialise the output document without materialising the tree.

        The bytes-native driver (:mod:`repro.engine.emit`): constant byte
        skeletons (`<tag>`, indentation, closers) are preassembled per tag
        and level, character data is answered from interned escaped
        fragments (per register, on the shared dictionary encoder when the
        instance is encoded), and the rendered span of every clean subtree
        is cached per ``(state, tag, register)`` configuration -- migrated
        across :meth:`republish` exactly like the structural subtree cache,
        so an incremental publish re-renders only invalidated spans and a
        cache-hot publish is a buffer handoff.  Output is byte-identical to
        serialising :meth:`publish` / :meth:`publish_events` with the
        matching ``indent`` (``indent=None`` matches the compact
        serialiser); stop-condition and node-budget semantics are those of
        tree mode.  As with the streaming serialisers, a supplied ``write``
        receives the document (one chunk here) and the return value is
        ``""``.
        """
        from repro.engine.emit import render_document

        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        document = render_document(self, state, budget, indent)
        if write is not None:
            write(document)
            return ""
        return document

    def publish_xml(
        self,
        instance: Instance,
        indent: int | None = 2,
        write=None,
        max_nodes: int | None = None,
    ) -> str:
        """Deprecated serialisation convenience; use the serving layer instead.

        Delegates to :func:`repro.serve.publish_document` (streaming into an
        :class:`~repro.xmltree.serialize.IncrementalXmlSerializer`, with
        ``write`` receiving chunks incrementally when given) and emits one
        :class:`DeprecationWarning` per callsite.  The supported surface is
        ``ViewServer.publish(view, output="bytes")``, which produces
        byte-identical documents.
        """
        from repro.serve.oneshot import publish_document

        _warn_deprecated("publish_xml", 'ViewServer.publish(view, output="bytes")')
        return publish_document(
            self, instance, indent=indent, write=write, max_nodes=max_nodes
        )

    # -- incremental maintenance ----------------------------------------------

    def republish(
        self,
        prev: "Instance | RepublishResult",
        delta: Delta,
        *,
        prev_tree: TreeNode | None = None,
        max_nodes: int | None = None,
    ) -> RepublishResult:
        """Incrementally re-evaluate after a source delta.

        ``prev`` is the previously published instance (or the
        :class:`RepublishResult` of the previous step, which chains
        naturally).  The per-instance caches migrate to the updated
        instance: only memoised ``(state, tag, register)`` expansions whose
        rule queries read a relation the (normalized) delta actually touches
        are dropped, everything else -- including previously built subtrees
        proven unaffected -- is reused.  The result's tree and its
        serialisation are always identical to ``publish`` on the updated
        instance from scratch.

        ``prev_tree`` (the previously published tree) is used as the edit
        script's base; when omitted it is recovered with :meth:`publish`,
        which is cheap while the previous instance's cache is still live.
        """
        if isinstance(prev, RepublishResult):
            if prev_tree is None:
                prev_tree = prev.tree
            prev_instance = prev.instance
        else:
            prev_instance = prev
        budget = self._max_nodes if max_nodes is None else max_nodes
        delta = delta.normalized(prev_instance)
        changed = delta.touched_relations()
        if not changed:
            if prev_tree is None:
                prev_tree = self._build_tree(self._instance_state(prev_instance), budget)
            return RepublishResult(prev_instance, prev_tree, EditScript(), delta)
        if prev_tree is None:
            prev_tree = self.publish(prev_instance, max_nodes)
        new_instance = prev_instance.apply_delta(delta)
        with self._lock:
            prev_state = self._states.get(prev_instance)
        if prev_state is not None and prev_state.encoder is not new_instance._encoding:
            # The representation changed mid-lineage (ensure_encoded was
            # called after the previous publish): the memoised triples are
            # in the other mode's register representation, so migrating
            # them would corrupt the output.  Cold-start instead.
            prev_state = None
        invalidated = retained = 0
        if prev_state is not None:
            state, invalidated, retained = self._migrated_state(
                prev_state, new_instance, delta
            )
            self._install_state(new_instance, state)
            with self._lock:
                self._invalidated += invalidated
                self._retained += retained
        else:
            # The previous version's cache was evicted: cold start.
            state = self._instance_state(new_instance)
        new_tree = self._build_tree(state, budget)
        return RepublishResult(
            new_instance,
            new_tree,
            diff_trees(prev_tree, new_tree),
            delta,
            invalidated,
            retained,
        )

    def _migrated_state(
        self,
        prev_state: _InstanceState,
        new_instance: Instance,
        delta: Delta,
    ) -> tuple[_InstanceState, int, int]:
        """Carry a version's caches over to the updated instance.

        Expansions of ``(state, tag)`` pairs whose rule queries read a
        changed relation move to ``prior_expansions``; they are confirmed
        lazily -- cheaply through the per-occurrence delta plans when
        possible (:meth:`_delta_preserves`), by recompute-and-compare
        otherwise -- so unaffected memo entries and subtrees survive.
        Everything else is retained outright.  Subtree entries touching an
        invalidated pair become suspects pending that confirmation.
        """
        changed = delta.touched_relations()
        invalid_pairs = frozenset(
            pair
            for pair, sources in self._pair_sources.items()
            if sources & changed
        )
        state = _InstanceState(new_instance)
        state.prior_instance = prev_state.instance
        state.delta = delta
        # The schema is unchanged by a delta, so the overlay schemas carry
        # over; sharing the dict lets both versions warm it further.
        state.ext_schemas = prev_state.ext_schemas
        retained: dict[Triple, tuple[Triple, ...]] = {}
        prior: dict[Triple, tuple[Triple, ...]] = {}
        for triple, expansion in prev_state.expansions.items():
            if (triple[0], triple[1]) in invalid_pairs:
                prior[triple] = expansion
            else:
                retained[triple] = expansion
        state.expansions = retained
        state.prior_expansions = prior
        state.invalid_pairs = invalid_pairs
        for triple, entry in prev_state.subtrees.items():
            if any((t[0], t[1]) in invalid_pairs for t in entry.triples):
                state.suspects[triple] = entry
            else:
                state.subtrees[triple] = entry
        for key, rentry in prev_state.renders.items():
            if any((t[0], t[1]) in invalid_pairs for t in rentry.triples):
                state.render_suspects[key] = rentry
            else:
                state.renders[key] = rentry
        # Text rendering is a function of the register alone; fragments
        # survive every delta.  (Encoded lineages intern on the encoder.)
        state.text_fragments = prev_state.text_fragments
        return state, len(prior), len(retained)

    def _confirm_triples(
        self, state: _InstanceState, triples: frozenset[Triple]
    ) -> bool:
        """Confirm a migrated cache entry: every configuration of the entry
        belonging to an invalidated ``(state, tag)`` pair must re-expand --
        memoised, so the work is shared across entries -- exactly as the
        previous version memoised it."""
        prior = state.prior_expansions
        invalid_pairs = state.invalid_pairs
        for t in triples:
            if (t[0], t[1]) in invalid_pairs:
                if self._expansion(state, t) != prior.get(t):
                    return False
        return True

    def _subtree_entry(
        self, state: _InstanceState, cursor: _Cursor, triple: Triple
    ) -> _SubtreeEntry | None:
        """A reusable cached subtree for ``triple``, or ``None``.

        Suspects (entries parked by a migration) are confirmed here: every
        configuration of the subtree belonging to an invalidated pair is
        re-expanded -- memoised, so the work is shared across entries -- and
        must match what the previous version memoised.  Reuse additionally
        requires the current root-to-node path to be disjoint from the
        subtree's configurations, which keeps the stop condition exact.
        """
        entry = state.subtrees.get(triple)
        if entry is None:
            entry = state.suspects.pop(triple, None)
            if entry is None:
                return None
            if not self._confirm_triples(state, entry.triples):
                return None
            state.subtrees[triple] = entry
        if not cursor.path_disjoint(entry.triples):
            return None
        return entry

    def _delta_preserves(self, state: _InstanceState, triple: Triple) -> bool:
        """Cheap sufficient check that ``triple`` re-expands identically.

        The semi-naive device of :mod:`repro.query.delta`, applied at the
        rule level: for every rule query reading a changed relation, the
        per-occurrence delta variants are run with the (tiny) changed tuple
        sets -- insertions against the updated overlay, deletions against
        the previous version's overlay.  Monotonicity bounds the query's
        answer changes by those candidate sets, so when every variant comes
        back empty the answers -- and hence the grouped expansion -- are
        provably unchanged without re-evaluating any full rule query.
        Returns ``False`` (meaning *unknown*, not *changed*) for unplanned
        or non-monotone rule queries.
        """
        delta = state.delta
        if delta is None or state.prior_instance is None:
            return False
        q, tag, register = triple
        if tag == TEXT_TAG:
            return True  # the expansion is () on every instance
        pair = (q, tag)
        info = state.pair_checks.get(pair)
        if info is None:
            info = self._pair_delta_info(state, pair, delta)
            state.pair_checks[pair] = info
        mode = info.mode
        if mode == "clean":
            return True
        if mode == "recompute":
            return False
        if mode == "witness":
            return not info.dirty_all and register.isdisjoint(info.dirty)
        # "variants": run the per-occurrence delta plans against this node's
        # overlays; empty candidates on every occurrence prove the answers
        # (and hence the expansion) unchanged.
        if state.encoder is not None:
            return self._variants_clean_encoded(state, tag, register, info, delta)
        new_overlay = self._overlay(state, tag, register)
        old_overlay: Instance | None = None
        for machinery, touched in info.checks:
            name = machinery.delta_name
            for relation in touched:
                inserted = delta.inserted_into(relation)
                if inserted:
                    for variant in machinery.variants[relation]:
                        if variant.execute(new_overlay, {name: inserted}):
                            return False
                deleted = delta.deleted_from(relation)
                if deleted:
                    if old_overlay is None:
                        old_overlay = self._overlay(
                            state, tag, register, base=state.prior_instance
                        )
                    for variant in machinery.variants[relation]:
                        if variant.execute(old_overlay, {name: deleted}):
                            return False
        return True

    def _variants_clean_encoded(
        self, state: _InstanceState, tag: str, register, info, delta: Delta
    ) -> bool:
        """The "variants" check of :meth:`_delta_preserves` in integer space.

        The register stays encoded and is fed to the delta variants through
        the encoded-override channel (shadowing both register names), with
        the tiny delta change sets interned on the fly; insertions run
        against the updated instance, deletions against the previous one.
        """
        encoder = state.encoder
        prior = state.prior_instance
        if prior is None or prior._encoding is not encoder:
            return False
        specific = register_relation_name(tag)
        reg_overrides = {GENERIC_REGISTER_NAME: register, specific: register}
        for machinery, touched in info.checks:
            name = machinery.delta_name
            for relation in touched:
                for rows, source in (
                    (delta.inserted_into(relation), state.instance),
                    (delta.deleted_from(relation), prior),
                ):
                    if not rows:
                        continue
                    encoded = encoder.encode_rows(rows)
                    overrides = {**reg_overrides, name: encoded}
                    for variant in machinery.variants[relation]:
                        if variant.vector_kernel() is None:
                            return False
                        if variant.execute_encoded(source, overrides):
                            return False
        return True

    def _pair_delta_info(
        self, state: _InstanceState, pair: tuple[str, str], delta: Delta
    ) -> _PairDelta:
        """Classify one rule's sensitivity to the migration delta.

        Computed once per republish generation.  When every affected rule
        query admits register witnesses, the delta variants run *once per
        rule* -- the register scans overridden by the union of every
        invalidated register of this rule, insertions against the updated
        source and deletions against the previous one -- and the projected
        witness tuples become the ``dirty`` register index, making the
        per-register check a set-disjointness test.
        """
        items = self._dispatch(*pair)
        if not items:
            return _PAIR_CLEAN
        changed = delta.touched_relations()
        shadowed = _shadowed_names(pair[1])
        checks: list[tuple] = []
        for item in items:
            plan = item.plan
            if plan is None:
                # Unplanned (naive-evaluated) query: no cheap check exists,
                # but it only matters when the delta actually touches it.
                if (item.relations - shadowed) & changed:
                    return _PAIR_RECOMPUTE
                continue
            machinery = plan._delta_plan()
            # Scans of the shadowed names read the register, never the
            # source, so a source delta on them cannot affect this rule.
            touched = (changed - shadowed) & machinery.relations
            if not touched:
                continue
            if not machinery.monotone:
                return _PAIR_RECOMPUTE
            checks.append((machinery, touched))
        if not checks:
            return _PAIR_CLEAN
        witnessed = []
        for machinery, touched in checks:
            witnesses = machinery.register_witnesses(shadowed)
            if witnesses is None:
                return _PairDelta("variants", checks=tuple(checks))
            witnessed.append((machinery, touched, witnesses))
        state_q, tag = pair
        pool: set[tuple[DataValue, ...]] = set()
        for triple in state.prior_expansions:
            if triple[0] == state_q and triple[1] == tag:
                pool |= triple[2]
        reg_rows = frozenset(pool)
        specific = register_relation_name(tag)
        dirty: set[tuple[DataValue, ...]] = set()
        dirty_all = False
        encoder = state.encoder
        if encoder is not None and (
            state.prior_instance is None
            or state.prior_instance._encoding is not encoder
        ):
            # Mixed-encoding lineage (should not happen via republish):
            # no cheap per-register check is trustworthy.
            return _PAIR_RECOMPUTE
        for machinery, touched, witnesses in witnessed:
            name = machinery.delta_name
            for relation in touched:
                for rows, source in (
                    (delta.inserted_into(relation), state.instance),
                    (delta.deleted_from(relation), state.prior_instance),
                ):
                    if not rows or source is None:
                        continue
                    if encoder is not None:
                        # Encoded pipeline: the register pool is already in
                        # integer space; intern the delta rows and keep the
                        # dirty index encoded so the per-register check is
                        # an integer set-disjointness test.
                        overrides = {
                            name: encoder.encode_rows(rows),
                            GENERIC_REGISTER_NAME: reg_rows,
                            specific: reg_rows,
                        }
                        for variant, specs in witnesses[relation]:
                            if variant.vector_kernel() is None:
                                return _PAIR_RECOMPUTE
                            if not specs:
                                if variant.execute_encoded(source, overrides):
                                    dirty_all = True
                            else:
                                for spec in specs:
                                    dirty |= spec.tuples_encoded(
                                        encoder, source, overrides
                                    )
                        continue
                    overrides = {
                        name: rows,
                        GENERIC_REGISTER_NAME: reg_rows,
                        specific: reg_rows,
                    }
                    for variant, specs in witnesses[relation]:
                        if not specs:
                            if variant.execute(source, overrides):
                                dirty_all = True
                        else:
                            for spec in specs:
                                dirty |= spec.tuples(source, overrides)
        return _PairDelta("witness", dirty=frozenset(dirty), dirty_all=dirty_all)

    # -- instance cache -------------------------------------------------------

    def _instance_state(self, instance: Instance) -> _InstanceState:
        with self._lock:
            state = self._states.get(instance)
            if state is not None:
                # Reinsert so eviction is least-recently-used, not
                # first-inserted.  Held under the lock: a concurrent reader
                # between the del and the reinsert would miss the state and
                # build a duplicate, splitting the memo.
                del self._states[instance]
                self._states[instance] = state
                return state
        problems = self._transducer.validate_against_schema(instance.schema)
        if problems:
            raise ValueError("; ".join(problems))
        state = _InstanceState(instance)
        with self._lock:
            # A racing thread may have installed a state meanwhile; adopt
            # theirs so both publishes share one memo.
            existing = self._states.get(instance)
            if existing is not None:
                return existing
            self._install_state(instance, state)
        return state

    def _install_state(self, instance: Instance, state: _InstanceState) -> None:
        """Insert a per-instance cache at the most-recently-used end."""
        with self._lock:
            if instance in self._states:
                del self._states[instance]
            self._states[instance] = state
            self._instances_seen += 1
            while len(self._states) > self._cache_instances:
                oldest = next(iter(self._states))
                del self._states[oldest]
                self._evictions += 1

    # -- dispatch and expansion ----------------------------------------------

    def _dispatch(self, state: str, tag: str) -> tuple[_CompiledItem, ...]:
        key = (state, tag)
        found = self._dispatch_table.get(key)
        if found is None:
            # Undeclared (state, tag) pairs behave as empty rules.
            found = ()
            self._dispatch_table[key] = found
        return found

    def _expansion(self, state: _InstanceState, triple: Triple) -> tuple[Triple, ...]:
        """The memoised one-step expansion of a configuration.

        Confluence (each node's children depend only on its own state, tag
        and register) makes this a pure function of ``(triple, instance)``;
        the stop condition is applied by the callers per root-to-node path.
        """
        found = state.expansions.get(triple)
        if found is not None:
            with self._lock:
                self._hits += 1
            return found
        prior = state.prior_expansions.get(triple)
        if prior is not None and self._delta_preserves(state, triple):
            # Semi-naive adoption: the delta provably leaves this rule's
            # answers unchanged, so the previous version's expansion is
            # promoted without evaluating any full rule query.
            state.expansions[triple] = prior
            with self._lock:
                self._hits += 1
            return prior
        with self._lock:
            self._misses += 1
        q, tag, register = triple
        items = self._dispatch(q, tag)
        if not items or tag == TEXT_TAG:
            result: tuple[Triple, ...] = ()
        elif state.encoder is not None:
            result = self._expand_encoded(state, tag, register, items)
        else:
            extended = self._overlay(state, tag, register)
            children: list[Triple] = []
            for item in items:
                answers = item.evaluate(extended)
                if not answers:
                    continue
                group_arity = item.group_arity
                if group_arity == 0:
                    children.append((item.state, item.tag, frozenset(answers)))
                    continue
                groups: dict[tuple[DataValue, ...], set[tuple[DataValue, ...]]] = {}
                for row in answers:
                    groups.setdefault(row[:group_arity], set()).add(row)
                if len(groups) == 1:
                    # Ubiquitous on recursive views (one child per step):
                    # nothing to order, skip the sort-key construction.
                    children.append(
                        (item.state, item.tag, frozenset(next(iter(groups.values()))))
                    )
                    continue
                for key in sorted(groups, key=tuple_order_key):
                    children.append((item.state, item.tag, frozenset(groups[key])))
            result = tuple(children)
        state.expansions[triple] = result
        return result

    def _expand_encoded(
        self,
        state: _InstanceState,
        tag: str,
        register: RegisterContent,
        items: tuple[_CompiledItem, ...],
    ) -> tuple[Triple, ...]:
        """One-step expansion with registers and answers in integer space.

        Planned rule queries run on the columnar kernel with the (already
        encoded) register supplied through the encoded-override channel --
        no overlay instance, no extended schema, no relation re-wrapping.
        Unplannable queries fall back to the row pipeline: the register is
        decoded, the classic overlay built, and the naive answers
        re-encoded, so both kinds of item agree on the integer register
        representation.  Sibling order is decoded per *group key* only
        (the implicit order on ``D`` is an order on values, not on ids).
        """
        encoder = state.encoder
        specific = register_relation_name(tag)
        overrides = {GENERIC_REGISTER_NAME: register, specific: register}
        extended: Instance | None = None
        children: list[Triple] = []
        for item in items:
            plan = item.plan
            if plan is not None and plan.vector_kernel() is not None:
                answers = plan.execute_encoded(state.instance, overrides)
            else:
                if extended is None:
                    decoded = encoder.decode_rows(register)
                    extended = self._overlay(state, tag, decoded)
                answers = encoder.encode_rows(item.evaluate(extended))
            if not answers:
                continue
            group_arity = item.group_arity
            if group_arity == 0:
                children.append((item.state, item.tag, frozenset(answers)))
                continue
            groups: dict[tuple[int, ...], set[tuple[int, ...]]] = {}
            for row in answers:
                groups.setdefault(row[:group_arity], set()).add(row)
            if len(groups) == 1:
                children.append(
                    (item.state, item.tag, frozenset(next(iter(groups.values()))))
                )
                continue
            # The implicit order on D is an order on values, not on ids;
            # the encoder memoises one order key per id so repeated sorts
            # never rebuild the type-rank tuples.
            for key in sorted(groups, key=encoder.row_order_key):
                children.append((item.state, item.tag, frozenset(groups[key])))
        return tuple(children)

    def _overlay(
        self,
        state: _InstanceState,
        tag: str,
        register: RegisterContent,
        base: Instance | None = None,
    ) -> Instance:
        """The source extended with the register relations -- without copying it.

        ``base`` substitutes another source of the same schema (the previous
        version, when the delta checks of :meth:`_delta_preserves` need the
        pre-update overlay); the overlay schemas are shared either way.
        """
        if register:
            arity = len(next(iter(register)))
        else:
            arity = self._transducer.register_arity(tag)
        specific = register_relation_name(tag)
        key = (tag, arity)
        schema = state.ext_schemas.get(key)
        if schema is None:
            schema = state.instance.schema.extended(
                [RelationSchema(GENERIC_REGISTER_NAME, arity), RelationSchema(specific, arity)]
            )
            state.ext_schemas[key] = schema
        if base is None:
            base = state.instance
            domain = state.active_domain
            if register:
                domain = domain | {value for row in register for value in row}
        else:
            domain = None  # planned delta variants never scan the domain
        # Registers are already-validated query answers: build both overlay
        # relations through the trusted constructor, sharing one frozenset.
        rows = register if isinstance(register, frozenset) else frozenset(register)
        return base.overlaid(
            {
                GENERIC_REGISTER_NAME: Relation._from_frozenset(
                    GENERIC_REGISTER_NAME, arity, rows
                ),
                specific: Relation._from_frozenset(specific, arity, rows),
            },
            schema,
            domain,
        )

    # -- evaluation drivers ---------------------------------------------------

    def _root_triple(self) -> Triple:
        return (self._start_state, self._root_tag, frozenset())

    def _cursor(self, state: _InstanceState, budget: int) -> "_Cursor":
        return _Cursor(self, state, budget)

    def _build_tree(self, state: _InstanceState, budget: int) -> TreeNode:
        """Materialise the output Σ-tree (iterative, virtual splicing inline).

        Structural sharing: the contribution of every "clean" subtree (no
        stop-condition interference, configuration set within bounds) is
        cached per configuration in the instance state, so repeated
        configurations -- within one document, across repeated publishes and
        across :meth:`republish` versions -- reuse the previously built
        :class:`TreeNode` objects instead of re-walking the subtree.  Budget
        accounting and stop-condition semantics are unchanged: a reused
        subtree charges exactly the nodes it would have produced.
        """
        virtual = self._virtual
        cursor = self._cursor(state, budget)
        limit = _SUBTREE_TRIPLE_LIMIT
        root_triple = self._root_triple()
        if self._root_tag not in virtual:
            entry = self._subtree_entry(state, cursor, root_triple)
            if entry is not None:
                cursor.charge(entry.weight)
                with self._lock:
                    self._hits += entry.saved
                return entry.nodes[0]
        result: TreeNode | None = None
        frames = [cursor.open(root_triple)]
        while frames:
            frame = frames[-1]
            if frame.index < len(frame.expansion):
                child = frame.expansion[frame.index]
                frame.index += 1
                entry = self._subtree_entry(state, cursor, child)
                if entry is not None:
                    cursor.charge(entry.weight)
                    with self._lock:
                        self._hits += entry.saved
                    frame.built.extend(entry.nodes)
                    frame.weight += entry.weight
                    frame.opened += entry.saved
                    if frame.triples is not None:
                        frame.triples |= entry.triples
                        if len(frame.triples) > limit:
                            frame.triples = None
                    continue
                frames.append(cursor.open(child))
                continue
            frames.pop()
            cursor.close(frame)
            tag = frame.triple[1]
            if tag in virtual:
                nodes: tuple[TreeNode, ...] = tuple(frame.built)
            else:
                nodes = (TreeNode(tag, tuple(frame.built), frame.text),)
            if frame.triples is not None and not frame.stopped:
                state.subtrees[frame.triple] = _SubtreeEntry(
                    nodes, frozenset(frame.triples), frame.weight, frame.opened
                )
            if frames:
                parent = frames[-1]
                if tag in virtual:
                    parent.built.extend(nodes)
                else:
                    parent.built.append(nodes[0])
                parent.weight += frame.weight
                parent.opened += frame.opened
                if frame.triples is None:
                    parent.triples = None
                elif parent.triples is not None:
                    # Small-to-large: donate the bigger set upward, so deep
                    # spines cost O(n log n) bookkeeping, not O(n * depth).
                    if len(parent.triples) < len(frame.triples):
                        frame.triples |= parent.triples
                        parent.triples = frame.triples
                    else:
                        parent.triples |= frame.triples
                    if len(parent.triples) > limit:
                        parent.triples = None
            elif tag in virtual:
                # A virtual root still renders as an element in tree mode;
                # its cached entry keeps the child-contribution semantics.
                result = TreeNode(tag, tuple(frame.built), frame.text)
            else:
                result = nodes[0]
        assert result is not None
        return result

    def _stream_events(self, state: _InstanceState, budget: int) -> Iterator[XmlEvent]:
        """The lazy event stream behind :meth:`publish_events`."""
        virtual = self._virtual
        cursor = self._cursor(state, budget)
        frames: list[_Frame] = []

        def push(triple: Triple) -> Iterator[XmlEvent]:
            frame = cursor.open(triple)
            tag = frame.triple[1]
            if tag == TEXT_TAG:
                cursor.close(frame)
                if tag not in virtual:
                    yield TextEvent(frame.text)
                return
            frames.append(frame)
            if tag not in virtual:
                yield OpenEvent(tag)

        yield from push(self._root_triple())
        while frames:
            frame = frames[-1]
            if frame.index < len(frame.expansion):
                child = frame.expansion[frame.index]
                frame.index += 1
                yield from push(child)
                continue
            frames.pop()
            cursor.close(frame)
            tag = frame.triple[1]
            if tag not in virtual:
                yield CloseEvent(tag)

    def _build_annotated(
        self, state: _InstanceState, budget: int
    ) -> tuple[AnnotatedNode, int]:
        """The extended tree in ``Tree_{Q x Sigma}`` (interpreter-compatible)."""
        cursor = self._cursor(state, budget)
        encoder = state.encoder
        steps = 0
        root = AnnotatedNode(
            state=self._start_state, tag=self._root_tag, register=frozenset()
        )

        def open_node(node: AnnotatedNode, triple: Triple) -> _Frame:
            nonlocal steps
            steps += 1
            node.finalized = True
            frame = cursor.open(triple)
            if frame.stopped:
                node.stopped_by_condition = True
            elif node.tag == TEXT_TAG:
                node.text = frame.text
            return frame

        # Each stack entry: (annotated node, its traversal frame).  In
        # encoded mode the traversal runs on encoded triples while the
        # interpreter-compatible annotated nodes carry decoded registers.
        stack: list[tuple[AnnotatedNode, _Frame]] = [
            (root, open_node(root, self._root_triple()))
        ]
        while stack:
            node, frame = stack[-1]
            if frame.index < len(frame.expansion):
                child_triple = frame.expansion[frame.index]
                child_state, child_tag, child_register = child_triple
                frame.index += 1
                child = AnnotatedNode(
                    state=child_state,
                    tag=child_tag,
                    register=(
                        child_register
                        if encoder is None
                        else encoder.decode_rows(child_register)
                    ),
                    parent=node,
                )
                node.children.append(child)
                stack.append((child, open_node(child, child_triple)))
                continue
            stack.pop()
            cursor.close(frame)
        return root, steps


class Engine:
    """Compiles publishing transducers into reusable :class:`PublishingPlan` s.

    The engine is the evaluation kernel of the reproduction: compile once,
    run many times, stream when the output is large::

        plan = Engine().compile(tau, schema)
        tree = plan.publish(instance)
        for event in plan.publish_events(big_instance):
            ...

    The recommended serving surface on top of it is
    :class:`repro.serve.ViewServer`, which compiles views through this class
    and routes output form, backend and maintenance in one call.
    """

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        cache_instances: int = 8,
    ) -> None:
        self._max_nodes = max_nodes
        self._cache_instances = cache_instances

    def compile(
        self,
        transducer: PublishingTransducer,
        schema: RelationalSchema | None = None,
        max_nodes: int | None = None,
    ) -> PublishingPlan:
        """Compile ``transducer`` (optionally validated against ``schema``)."""
        return PublishingPlan(
            transducer,
            schema=schema,
            max_nodes=self._max_nodes if max_nodes is None else max_nodes,
            cache_instances=self._cache_instances,
        )


def compile_plan(
    transducer: PublishingTransducer,
    schema: RelationalSchema | None = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    cache_instances: int = 8,
) -> PublishingPlan:
    """One-call convenience: ``compile_plan(tau).publish(instance)``."""
    return PublishingPlan(
        transducer, schema=schema, max_nodes=max_nodes, cache_instances=cache_instances
    )
