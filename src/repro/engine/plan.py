"""The compiled, batch-first evaluation engine.

The interpreter of :mod:`repro.core.runtime` follows the step relation of
Section 3 literally and pays for that fidelity on every call: each ``publish``
re-validates the transducer, re-extends the source instance with the register
relations at *every* node (copying the whole schema and relation table), and
re-evaluates rule queries from scratch even when the same ``(state, tag,
register)`` configuration repeats thousands of times.

:class:`Engine.compile` performs all per-transducer work once and returns a
:class:`PublishingPlan`:

* **dispatch** -- the rule for every ``(state, tag)`` pair is resolved to a
  tuple of compiled items with pre-bound query evaluators;
* **register schemas** -- the extended schemas making ``Reg`` / ``Reg_<tag>``
  visible are built once per ``(tag, arity)`` and shared across nodes, and
  register relations are overlaid on the source without copying it
  (:meth:`~repro.relational.instance.Instance.overlaid`);
* **memoised expansions** -- the transformation is *confluent*: the one-step
  expansion of a node depends only on its ``(state, tag, register)`` triple
  and the source instance, never on its ancestors (the stop condition is
  applied per path, outside the memo).  The plan caches expansions per
  instance, within and across runs, so repeated subtree configurations --
  ubiquitous in recursive views like the prerequisite hierarchy -- cost a
  dictionary lookup instead of a query evaluation.

Three evaluation modes share that machinery:

* :meth:`PublishingPlan.publish` / :meth:`~PublishingPlan.publish_many` --
  materialised Σ-trees (batch-first: one plan, many instances);
* :meth:`PublishingPlan.publish_full` -- the interpreter-compatible
  :class:`~repro.core.runtime.TransformationResult` with the annotated tree;
* :meth:`PublishingPlan.publish_events` -- a lazy SAX-style event stream with
  virtual-tag elimination done on the fly, so Proposition 1 blow-ups can be
  serialised without ever materialising the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.rules import GENERIC_REGISTER_NAME, RuleQuery, register_relation_name
from repro.core.runtime import (
    DEFAULT_MAX_NODES,
    AnnotatedNode,
    RegisterContent,
    TransformationLimitError,
    TransformationResult,
)
from repro.core.transducer import PublishingTransducer
from repro.core.virtual import eliminate_virtual_nodes, strip_annotations
from repro.query.planner import plan_query
from repro.relational.domain import DataValue, relation_to_text, tuple_order_key
from repro.relational.instance import Instance, Relation
from repro.relational.schema import RelationSchema, RelationalSchema
from repro.xmltree.events import CloseEvent, OpenEvent, TextEvent, XmlEvent
from repro.xmltree.serialize import IncrementalXmlSerializer
from repro.xmltree.tree import TEXT_TAG, TreeNode

#: A node configuration: the triple the transformation is confluent over.
Triple = tuple[str, str, RegisterContent]


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the plan's expansion-cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    instances: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of expansions answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _CompiledItem:
    """One right-hand-side item with its evaluator pre-bound.

    The rule query is planned once at compile time through the shared
    :mod:`repro.query` planner; range-restricted queries bind directly to
    :meth:`QueryPlan.execute`, unsafe ones to the query's own (active-domain)
    evaluator.
    """

    __slots__ = ("state", "tag", "group_arity", "plan", "evaluate")

    def __init__(self, state: str, tag: str, rule_query: RuleQuery) -> None:
        self.state = state
        self.tag = tag
        self.group_arity = rule_query.group_arity
        self.plan = plan_query(rule_query.query)
        self.evaluate = (
            self.plan.execute if self.plan is not None else rule_query.query.evaluate
        )


class _InstanceState:
    """Everything the plan caches for one source instance."""

    __slots__ = ("instance", "active_domain", "ext_schemas", "expansions")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.active_domain = instance.active_domain()
        self.ext_schemas: dict[tuple[str, int], RelationalSchema] = {}
        self.expansions: dict[Triple, tuple[Triple, ...]] = {}


class _Frame:
    """One node of the depth-first construction (tree and event modes)."""

    __slots__ = ("triple", "expansion", "index", "built", "text", "stopped")

    def __init__(
        self,
        triple: Triple,
        expansion: tuple[Triple, ...],
        text: str | None,
        stopped: bool,
    ) -> None:
        self.triple = triple
        self.expansion = expansion
        self.index = 0
        self.built: list[TreeNode] = []
        self.text = text
        self.stopped = stopped


class _Cursor:
    """The traversal invariant shared by all three evaluation modes.

    One cursor per run owns the stop-condition path, the node-budget
    accounting and the text extraction, so the tree, event and annotated
    drivers cannot diverge on those semantics.
    """

    __slots__ = ("_plan", "_state", "_budget", "_path", "produced")

    def __init__(self, plan: "PublishingPlan", state: "_InstanceState", budget: int) -> None:
        self._plan = plan
        self._state = state
        self._budget = budget
        self._path: set[Triple] = set()
        self.produced = 1

    def open(self, triple: Triple) -> _Frame:
        """Enter a node: stop condition, memoised expansion, budget, path push."""
        if triple in self._path:
            return _Frame(triple, (), None, stopped=True)
        expansion = self._plan._expansion(self._state, triple)
        self.produced += len(expansion)
        if self.produced > self._budget:
            raise TransformationLimitError(
                f"transformation exceeded the node budget of {self._budget} nodes; "
                f"raise max_nodes if the blow-up is intended"
            )
        text = relation_to_text(triple[2]) if triple[1] == TEXT_TAG else None
        self._path.add(triple)
        return _Frame(triple, expansion, text, stopped=False)

    def close(self, frame: _Frame) -> None:
        """Leave a node: pop it from the stop-condition path."""
        if not frame.stopped:
            self._path.remove(frame.triple)


class PublishingPlan:
    """A transducer compiled for repeated evaluation.  Built by :class:`Engine`."""

    def __init__(
        self,
        transducer: PublishingTransducer,
        schema: RelationalSchema | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        cache_instances: int = 8,
    ) -> None:
        if schema is not None:
            problems = transducer.validate_against_schema(schema)
            if problems:
                raise ValueError("; ".join(problems))
        self._transducer = transducer
        self._schema = schema
        self._max_nodes = max_nodes
        self._cache_instances = max(1, cache_instances)
        self._virtual = transducer.virtual_tags
        self._start_state = transducer.start_state
        self._root_tag = transducer.root_tag
        self._dispatch_table: dict[tuple[str, str], tuple[_CompiledItem, ...]] = {}
        for rule_ in transducer.rules:
            self._dispatch_table[(rule_.state, rule_.tag)] = tuple(
                _CompiledItem(item.state, item.tag, item.query) for item in rule_.items
            )
        # Per-instance caches in LRU order (the batch-first working set).
        self._states: dict[Instance, _InstanceState] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._instances_seen = 0

    # -- introspection -------------------------------------------------------

    @property
    def transducer(self) -> PublishingTransducer:
        """The compiled transducer."""
        return self._transducer

    @property
    def max_nodes(self) -> int:
        """The default node budget of this plan."""
        return self._max_nodes

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of the shared expansion cache."""
        return CacheStats(self._hits, self._misses, self._evictions, self._instances_seen)

    def clear_cache(self) -> None:
        """Drop all per-instance caches (counters are preserved)."""
        self._states.clear()

    # -- the public evaluation surface --------------------------------------

    def publish(self, instance: Instance, max_nodes: int | None = None) -> TreeNode:
        """Evaluate on ``instance`` and return the output Σ-tree ``tau(I)``."""
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        return self._build_tree(state, budget)

    def publish_many(
        self, instances: Iterable[Instance], max_nodes: int | None = None
    ) -> list[TreeNode]:
        """Evaluate on a batch of instances with a shared memo cache.

        Repeated instances (and repeated ``(state, tag, register)``
        configurations within each instance) are answered from the cache;
        :attr:`cache_stats` reports how often that happened.
        """
        return [self.publish(instance, max_nodes) for instance in instances]

    def publish_full(
        self, instance: Instance, max_nodes: int | None = None
    ) -> TransformationResult:
        """Evaluate and return the interpreter-compatible full result object."""
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        root, steps = self._build_annotated(state, budget)
        tree = eliminate_virtual_nodes(strip_annotations(root), self._virtual)
        return TransformationResult(self._transducer, instance, root, tree, steps)

    def publish_events(
        self, instance: Instance, max_nodes: int | None = None
    ) -> Iterator[XmlEvent]:
        """Lazily yield the SAX-style event stream of the output Σ-tree.

        Virtual tags are eliminated on the fly: they contribute no events,
        only their (recursively streamed) children.  The traversal itself
        holds one frame per level, so no part of the output tree is ever
        materialised; note that the expansion memo still grows with the
        number of *distinct* ``(state, tag, register)`` configurations (call
        :meth:`clear_cache` between streams to bound it).
        """
        state = self._instance_state(instance)
        budget = self._max_nodes if max_nodes is None else max_nodes
        return self._stream_events(state, budget)

    def publish_xml(
        self,
        instance: Instance,
        indent: int | None = 2,
        write=None,
        max_nodes: int | None = None,
    ) -> str:
        """Stream the output directly into XML text.

        With ``write`` (a callable receiving string chunks) the document is
        pushed incrementally and an empty string is returned; without it the
        serialised document is returned whole.  Output is byte-identical to
        serialising the materialised tree.
        """
        serializer = IncrementalXmlSerializer(write=write, indent=indent)
        return serializer.feed_all(self.publish_events(instance, max_nodes)).finish()

    # -- instance cache -------------------------------------------------------

    def _instance_state(self, instance: Instance) -> _InstanceState:
        state = self._states.get(instance)
        if state is not None:
            # Reinsert so eviction is least-recently-used, not first-inserted.
            del self._states[instance]
            self._states[instance] = state
            return state
        problems = self._transducer.validate_against_schema(instance.schema)
        if problems:
            raise ValueError("; ".join(problems))
        state = _InstanceState(instance)
        self._states[instance] = state
        self._instances_seen += 1
        while len(self._states) > self._cache_instances:
            oldest = next(iter(self._states))
            del self._states[oldest]
            self._evictions += 1
        return state

    # -- dispatch and expansion ----------------------------------------------

    def _dispatch(self, state: str, tag: str) -> tuple[_CompiledItem, ...]:
        key = (state, tag)
        found = self._dispatch_table.get(key)
        if found is None:
            # Undeclared (state, tag) pairs behave as empty rules.
            found = ()
            self._dispatch_table[key] = found
        return found

    def _expansion(self, state: _InstanceState, triple: Triple) -> tuple[Triple, ...]:
        """The memoised one-step expansion of a configuration.

        Confluence (each node's children depend only on its own state, tag
        and register) makes this a pure function of ``(triple, instance)``;
        the stop condition is applied by the callers per root-to-node path.
        """
        found = state.expansions.get(triple)
        if found is not None:
            self._hits += 1
            return found
        self._misses += 1
        q, tag, register = triple
        items = self._dispatch(q, tag)
        if not items or tag == TEXT_TAG:
            result: tuple[Triple, ...] = ()
        else:
            extended = self._overlay(state, tag, register)
            children: list[Triple] = []
            for item in items:
                answers = item.evaluate(extended)
                if not answers:
                    continue
                group_arity = item.group_arity
                if group_arity == 0:
                    children.append((item.state, item.tag, frozenset(answers)))
                    continue
                groups: dict[tuple[DataValue, ...], set[tuple[DataValue, ...]]] = {}
                for row in answers:
                    groups.setdefault(row[:group_arity], set()).add(row)
                for key in sorted(groups, key=tuple_order_key):
                    children.append((item.state, item.tag, frozenset(groups[key])))
            result = tuple(children)
        state.expansions[triple] = result
        return result

    def _overlay(self, state: _InstanceState, tag: str, register: RegisterContent) -> Instance:
        """The source extended with the register relations -- without copying it."""
        if register:
            arity = len(next(iter(register)))
        else:
            arity = self._transducer.register_arity(tag)
        specific = register_relation_name(tag)
        key = (tag, arity)
        schema = state.ext_schemas.get(key)
        if schema is None:
            schema = state.instance.schema.extended(
                [RelationSchema(GENERIC_REGISTER_NAME, arity), RelationSchema(specific, arity)]
            )
            state.ext_schemas[key] = schema
        domain = state.active_domain
        if register:
            domain = domain | {value for row in register for value in row}
        return state.instance.overlaid(
            {
                GENERIC_REGISTER_NAME: Relation(GENERIC_REGISTER_NAME, arity, register),
                specific: Relation(specific, arity, register),
            },
            schema,
            domain,
        )

    # -- evaluation drivers ---------------------------------------------------

    def _root_triple(self) -> Triple:
        return (self._start_state, self._root_tag, frozenset())

    def _cursor(self, state: _InstanceState, budget: int) -> "_Cursor":
        return _Cursor(self, state, budget)

    def _build_tree(self, state: _InstanceState, budget: int) -> TreeNode:
        """Materialise the output Σ-tree (iterative, virtual splicing inline)."""
        virtual = self._virtual
        cursor = self._cursor(state, budget)
        result: TreeNode | None = None
        frames = [cursor.open(self._root_triple())]
        while frames:
            frame = frames[-1]
            if frame.index < len(frame.expansion):
                child = frame.expansion[frame.index]
                frame.index += 1
                frames.append(cursor.open(child))
                continue
            frames.pop()
            cursor.close(frame)
            tag = frame.triple[1]
            if frames:
                if tag in virtual:
                    frames[-1].built.extend(frame.built)
                else:
                    frames[-1].built.append(TreeNode(tag, tuple(frame.built), frame.text))
            else:
                result = TreeNode(tag, tuple(frame.built), frame.text)
        assert result is not None
        return result

    def _stream_events(self, state: _InstanceState, budget: int) -> Iterator[XmlEvent]:
        """The lazy event stream behind :meth:`publish_events`."""
        virtual = self._virtual
        cursor = self._cursor(state, budget)
        frames: list[_Frame] = []

        def push(triple: Triple) -> Iterator[XmlEvent]:
            frame = cursor.open(triple)
            tag = frame.triple[1]
            if tag == TEXT_TAG:
                cursor.close(frame)
                if tag not in virtual:
                    yield TextEvent(frame.text)
                return
            frames.append(frame)
            if tag not in virtual:
                yield OpenEvent(tag)

        yield from push(self._root_triple())
        while frames:
            frame = frames[-1]
            if frame.index < len(frame.expansion):
                child = frame.expansion[frame.index]
                frame.index += 1
                yield from push(child)
                continue
            frames.pop()
            cursor.close(frame)
            tag = frame.triple[1]
            if tag not in virtual:
                yield CloseEvent(tag)

    def _build_annotated(
        self, state: _InstanceState, budget: int
    ) -> tuple[AnnotatedNode, int]:
        """The extended tree in ``Tree_{Q x Sigma}`` (interpreter-compatible)."""
        cursor = self._cursor(state, budget)
        steps = 0
        root = AnnotatedNode(
            state=self._start_state, tag=self._root_tag, register=frozenset()
        )

        def open_node(node: AnnotatedNode) -> _Frame:
            nonlocal steps
            steps += 1
            node.finalized = True
            frame = cursor.open((node.state, node.tag, node.register))
            if frame.stopped:
                node.stopped_by_condition = True
            elif node.tag == TEXT_TAG:
                node.text = frame.text
            return frame

        # Each stack entry: (annotated node, its traversal frame).
        stack: list[tuple[AnnotatedNode, _Frame]] = [(root, open_node(root))]
        while stack:
            node, frame = stack[-1]
            if frame.index < len(frame.expansion):
                child_state, child_tag, child_register = frame.expansion[frame.index]
                frame.index += 1
                child = AnnotatedNode(
                    state=child_state,
                    tag=child_tag,
                    register=child_register,
                    parent=node,
                )
                node.children.append(child)
                stack.append((child, open_node(child)))
                continue
            stack.pop()
            cursor.close(frame)
        return root, steps


class Engine:
    """Compiles publishing transducers into reusable :class:`PublishingPlan` s.

    The engine is the primary public API of the reproduction: compile once,
    run many times, stream when the output is large::

        plan = Engine().compile(tau, schema)
        trees = plan.publish_many(instances)
        for event in plan.publish_events(big_instance):
            ...
    """

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        cache_instances: int = 8,
    ) -> None:
        self._max_nodes = max_nodes
        self._cache_instances = cache_instances

    def compile(
        self,
        transducer: PublishingTransducer,
        schema: RelationalSchema | None = None,
        max_nodes: int | None = None,
    ) -> PublishingPlan:
        """Compile ``transducer`` (optionally validated against ``schema``)."""
        return PublishingPlan(
            transducer,
            schema=schema,
            max_nodes=self._max_nodes if max_nodes is None else max_nodes,
            cache_instances=self._cache_instances,
        )


def compile_plan(
    transducer: PublishingTransducer,
    schema: RelationalSchema | None = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    cache_instances: int = 8,
) -> PublishingPlan:
    """One-call convenience: ``compile_plan(tau).publish(instance)``."""
    return PublishingPlan(
        transducer, schema=schema, max_nodes=max_nodes, cache_instances=cache_instances
    )
