"""``repro.engine`` -- the compiled, streaming, batch-first publishing API.

This subsystem is the primary public surface for *evaluating* publishing
transducers.  It separates specification from evaluation, in the spirit of
streaming tree transducers:

* :class:`~repro.engine.builder.TransducerBuilder` -- a fluent DSL replacing
  hand-assembly of :class:`~repro.core.transducer.PublishingTransducer`;
* :class:`~repro.engine.plan.Engine` / :func:`~repro.engine.plan.compile_plan`
  -- compile a transducer once into a :class:`~repro.engine.plan.PublishingPlan`;
* :meth:`~repro.engine.plan.PublishingPlan.publish`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_events`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_full`,
  :meth:`~repro.engine.plan.PublishingPlan.republish` -- the core drivers:
  materialised, streaming, interpreter-compatible and delta-incremental
  evaluation over one compiled plan, with memoised ``(state, tag,
  register)`` expansions and explicit cache statistics.

The engine is the *kernel* of the stack; the recommended serving surface on
top of it is :class:`repro.serve.ViewServer`, which routes output format,
execution backend and maintenance strategy in a single ``publish`` call.
The batch / serialisation conveniences (``publish_many`` / ``publish_iter``
/ ``publish_xml``) are deprecated shims delegating to :mod:`repro.serve`,
and the classic :func:`repro.core.runtime.publish` entry points remain thin
wrappers over this engine.
"""

from repro.engine.builder import (
    BuilderError,
    RuleBuilder,
    StateScope,
    TransducerBuilder,
    transducer,
)
from repro.engine.plan import (
    CacheStats,
    Engine,
    PublishingPlan,
    RepublishResult,
    compile_plan,
)

__all__ = [
    "BuilderError",
    "CacheStats",
    "Engine",
    "PublishingPlan",
    "RepublishResult",
    "RuleBuilder",
    "StateScope",
    "TransducerBuilder",
    "compile_plan",
    "transducer",
]
