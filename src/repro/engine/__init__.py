"""``repro.engine`` -- the compiled, streaming, batch-first publishing API.

This subsystem is the primary public surface for *evaluating* publishing
transducers.  It separates specification from evaluation, in the spirit of
streaming tree transducers:

* :class:`~repro.engine.builder.TransducerBuilder` -- a fluent DSL replacing
  hand-assembly of :class:`~repro.core.transducer.PublishingTransducer`;
* :class:`~repro.engine.plan.Engine` / :func:`~repro.engine.plan.compile_plan`
  -- compile a transducer once into a :class:`~repro.engine.plan.PublishingPlan`;
* :meth:`~repro.engine.plan.PublishingPlan.publish`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_many`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_iter`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_events`,
  :meth:`~repro.engine.plan.PublishingPlan.publish_xml` -- materialised,
  batched and streaming evaluation over one compiled plan, with memoised
  ``(state, tag, register)`` expansions and explicit cache statistics;
* :meth:`~repro.engine.plan.PublishingPlan.republish` -- delta-driven
  incremental maintenance of a published view (see :mod:`repro.incremental`
  for the end-to-end pipeline).

The classic :func:`repro.core.runtime.publish` entry points remain available
and are thin wrappers over this engine.
"""

from repro.engine.builder import (
    BuilderError,
    RuleBuilder,
    StateScope,
    TransducerBuilder,
    transducer,
)
from repro.engine.plan import (
    CacheStats,
    Engine,
    PublishingPlan,
    RepublishResult,
    compile_plan,
)

__all__ = [
    "BuilderError",
    "CacheStats",
    "Engine",
    "PublishingPlan",
    "RepublishResult",
    "RuleBuilder",
    "StateScope",
    "TransducerBuilder",
    "compile_plan",
    "transducer",
]
