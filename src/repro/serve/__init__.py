"""``repro.serve`` -- the unified serving layer: one API over the whole stack.

A :class:`ViewServer` holds *named, long-lived views* (compiled once, from
any front-end of the code base) over *versioned sources* (MVCC-style
snapshot chains advanced by :class:`~repro.relational.delta.Delta` commits),
and exposes exactly three verbs:

* :meth:`~repro.serve.server.ViewServer.publish` -- evaluate a view, with
  ``output=tree|events|bytes|compact``, ``backend=auto|row|columnar`` and
  ``maintenance=auto|full|incremental`` routed in one call;
* :meth:`~repro.serve.server.ViewServer.subscribe` -- one
  :class:`~repro.xmltree.diff.EditScript` per source commit, maintained
  incrementally;
* :meth:`~repro.serve.server.ViewServer.stats` /
  :meth:`~repro.serve.server.ViewServer.explain` -- the aggregated
  observability that previously had to be collected from three objects.

    >>> from repro.serve import ViewServer
    >>> from repro.workloads import tau1_prerequisite_hierarchy
    >>> server = ViewServer()                                   # doctest: +SKIP
    >>> server.register_view("hierarchy", tau1_prerequisite_hierarchy)
    ...                                                         # doctest: +SKIP
    >>> handle = server.attach(instance)                        # doctest: +SKIP
    >>> xml = server.publish("hierarchy", output="bytes")       # doctest: +SKIP

The legacy entry points (``publish_many`` / ``publish_iter`` /
``publish_xml`` on :class:`~repro.engine.plan.PublishingPlan`, and
:class:`~repro.incremental.IncrementalPublisher`) delegate here and are kept
as deprecated shims.
"""

from repro.serve.oneshot import (
    compact_tree,
    publish_document,
    publish_stream,
    serialize_events,
    serialize_tree,
)
from repro.serve.server import (
    BACKENDS,
    MAINTENANCE,
    OUTPUTS,
    TYPECHECK_MODES,
    PruneResult,
    RegisteredView,
    ServeError,
    SourceHandle,
    SourceVersion,
    Subscription,
    SubscriptionEvent,
    ViewRejected,
    ViewServer,
)
from repro.serve.stats import (
    ClusterStats,
    ExplainReport,
    RuleExplain,
    ServerStats,
    ShardStats,
    SourceStats,
    ViewStats,
    merge_cluster_stats,
)

__all__ = [
    "BACKENDS",
    "MAINTENANCE",
    "OUTPUTS",
    "ClusterStats",
    "ExplainReport",
    "PruneResult",
    "RegisteredView",
    "RuleExplain",
    "ServeError",
    "ServerStats",
    "ShardStats",
    "SourceHandle",
    "SourceStats",
    "SourceVersion",
    "Subscription",
    "SubscriptionEvent",
    "TYPECHECK_MODES",
    "ViewRejected",
    "ViewServer",
    "ViewStats",
    "compact_tree",
    "merge_cluster_stats",
    "publish_document",
    "publish_stream",
    "serialize_events",
    "serialize_tree",
]
