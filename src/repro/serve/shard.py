"""``repro.serve.shard`` -- the sharded multi-process serving cluster.

A convenience alias: the implementation lives in
:mod:`repro.serve.net.shard` (it is built from the network tier's protocol,
server and WAL layers).  See that module's docstring for the topology --
one :class:`ShardRouter` front door, N :class:`ShardWorkerServer`
processes, crc32 namespace routing and WAL-replay handoff.
"""

from repro.serve.net.shard import (
    DEFAULT_CATALOG_REF,
    ShardCluster,
    ShardError,
    ShardRouter,
    ShardWorkerServer,
    resolve_catalog,
    shard_for,
)

__all__ = [
    "DEFAULT_CATALOG_REF",
    "ShardCluster",
    "ShardError",
    "ShardRouter",
    "ShardWorkerServer",
    "resolve_catalog",
    "shard_for",
]
