"""Clients for the network tier: a blocking REST client and WS subscribers.

:class:`NetClient` wraps ``http.client`` for the request/response routes;
:meth:`NetClient.subscribe` opens a blocking WebSocket subscription that
yields one decoded message per server push.  For load generation there is
also :func:`open_subscriber`, an asyncio variant the fan-out benchmark uses
to hold a thousand concurrent sockets on one event loop.

Everything speaks the canonical wire formats of
:mod:`repro.relational.wire`: deltas are sent with ``Delta.to_wire()``, edit
scripts come back as ``EditScript.from_wire`` payloads, so a client can
replay the server's document locally, edit by edit.
"""

from __future__ import annotations

import asyncio
import base64
import http.client
import json
import os
import socket
import threading
from typing import Any, Iterator, Mapping

from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.relational.wire import canonical_json, instance_to_wire
from repro.serve.net import protocol
from repro.serve.net.protocol import OP_CLOSE, OP_PING, OP_PONG, OP_TEXT, ProtocolError
from repro.xmltree.diff import EditScript


class NetClientError(RuntimeError):
    """Raised when the server answers a request with an error status.

    ``payload`` is the parsed JSON error body (when the server sent one):
    a 422 view rejection carries the full typecheck verdict there, including
    a ``witness`` source instance that replays the refutation client-side.
    """

    def __init__(self, status: int, message: str, payload: Any = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class NetClient:
    """A blocking client for one server, pinned to one namespace.

    Requests reuse one keep-alive ``http.client.HTTPConnection``; a stale
    socket (server restart, idle timeout) is detected on the next exchange
    and retried once on a fresh connection.  The client is a context manager
    -- :meth:`close` drops the cached connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        namespace: str = "default",
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.namespace = namespace
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None
        self._connection_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange; returns ``(status, headers, body)``."""
        payload = None
        sent = dict(headers or {})
        if body is not None:
            payload = canonical_json(body).encode("utf-8")
            sent.setdefault("Content-Type", "application/json")
        with self._connection_lock:
            for attempt in (1, 2):
                connection = self._connection
                fresh = connection is None
                if fresh:
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    connection.request(method, path, body=payload, headers=sent)
                    response = connection.getresponse()
                    data = response.read()
                except (http.client.HTTPException, ConnectionError, OSError):
                    # A reused socket can be stale (server restarted, idle
                    # close); retry once on a fresh connection.  A failure on
                    # a fresh connection is real and propagates.
                    connection.close()
                    self._connection = None
                    if fresh or attempt == 2:
                        raise
                    continue
                if response.will_close:
                    connection.close()
                    self._connection = None
                else:
                    self._connection = connection
                return (
                    response.status,
                    {name.lower(): value for name, value in response.getheaders()},
                    data,
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Drop the cached keep-alive connection (requests reopen lazily)."""
        with self._connection_lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Mapping[str, str] | None = None,
    ) -> Any:
        status, _, data = self.request(method, path, body, headers)
        parsed = json.loads(data) if data else None
        if status >= 400:
            message = parsed.get("error", "") if isinstance(parsed, dict) else data.decode()
            raise NetClientError(status, message, payload=parsed)
        return parsed

    def _ns(self, suffix: str) -> str:
        return f"/v1/ns/{self.namespace}/{suffix}"

    # -- the API -------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def register_view(
        self,
        name: str,
        view: str | None = None,
        params: tuple = (),
        *,
        output_dtd=None,
        typecheck: str | None = None,
    ) -> dict:
        """Register catalog entry ``view`` (default: ``name``) as a view.

        ``output_dtd`` (a :class:`~repro.xmltree.dtd.DTD` or an
        already-encoded wire dict) ships the target schema as pure data; the
        server typechecks the view against it under ``typecheck`` mode
        (``static``/``runtime``/``off``).  A refuted view answers 422 --
        raised here as :class:`NetClientError` whose ``payload`` carries the
        verdict and the replayable counterexample ``witness``.
        """
        body: dict[str, Any] = {"name": name, "view": view or name, "params": list(params)}
        if output_dtd is not None:
            from repro.xmltree.dtd import DTD, dtd_to_wire

            body["output_dtd"] = (
                dtd_to_wire(output_dtd) if isinstance(output_dtd, DTD) else output_dtd
            )
        if typecheck is not None:
            body["typecheck"] = typecheck
        return self._json("POST", self._ns("views"), body)

    def views(self) -> list:
        return self._json("GET", self._ns("views"))

    def attach(
        self,
        instance: Instance,
        *,
        name: str | None = None,
        encoded: bool = False,
        durable: bool | None = None,
    ) -> dict:
        body: dict[str, Any] = {"instance": instance_to_wire(instance), "encoded": encoded}
        if name is not None:
            body["name"] = name
        if durable is not None:
            body["durable"] = durable
        return self._json("POST", self._ns("sources"), body)

    def sources(self) -> list:
        return self._json("GET", self._ns("sources"))

    def source(self, name: str) -> dict:
        return self._json("GET", self._ns(f"sources/{name}"))

    def commit(self, source: str, delta: Delta) -> dict:
        return self._json("POST", self._ns(f"sources/{source}/commit"), delta.to_wire())

    def prune(self, source: str, keep_last: int = 1) -> dict:
        return self._json("POST", self._ns(f"sources/{source}/prune"), {"keep_last": keep_last})

    def stats(self) -> dict:
        return self._json("GET", self._ns("stats"))

    def cluster_stats(self) -> dict:
        """Cluster-wide stats (only answered by a shard router front door)."""
        return self._json("GET", "/v1/cluster/stats")

    def rebalance(self, namespace: str | None = None, shard: int = 0) -> dict:
        """Migrate a namespace (default: this client's) to ``shard``."""
        body = {"namespace": namespace or self.namespace, "shard": shard}
        return self._json("POST", "/v1/cluster/rebalance", body)

    def explain(self, view: str, params: Mapping[str, Any] | None = None) -> dict:
        return self._json("GET", self._ns(f"views/{view}/explain") + _query(params=params))

    def publish(
        self,
        view: str,
        *,
        source: str | None = None,
        version: int | None = None,
        params: Mapping[str, Any] | None = None,
        output: str = "bytes",
        backend: str = "auto",
        indent: int | None = 2,
        etag: str | None = None,
    ) -> "PublishResult":
        """Fetch a document; pass the previous ``etag`` to get cheap 304s."""
        query = _query(
            source=source,
            version=version,
            params=params,
            output=output,
            backend=backend,
            indent="none" if indent is None else indent,
        )
        headers = {"If-None-Match": etag} if etag else None
        status, response_headers, data = self.request(
            "GET", self._ns(f"views/{view}/publish") + query, headers=headers
        )
        if status not in (200, 304):
            parsed = json.loads(data) if data else {}
            raise NetClientError(status, parsed.get("error", ""), payload=parsed)
        return PublishResult(
            status=status,
            document=data.decode("utf-8") if status == 200 else None,
            etag=response_headers.get("etag"),
            version=int(response_headers.get("x-source-version", -1)),
        )

    def subscribe(
        self,
        view: str,
        *,
        source: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> "WsSubscription":
        """Open a blocking WebSocket subscription (a context manager)."""
        path = self._ns(f"views/{view}/subscribe") + _query(source=source, params=params)
        return WsSubscription(self.host, self.port, path, timeout=self.timeout)


class PublishResult:
    """One publish exchange: status 200 with a document, or a 304."""

    __slots__ = ("status", "document", "etag", "version")

    def __init__(self, status: int, document: str | None, etag: str | None, version: int) -> None:
        self.status = status
        self.document = document
        self.etag = etag
        self.version = version

    @property
    def not_modified(self) -> bool:
        return self.status == 304

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PublishResult(status={self.status}, version={self.version})"


def _query(**axes: Any) -> str:
    from urllib.parse import quote

    parts = []
    for name, value in axes.items():
        if value is None:
            continue
        if name == "params":
            value = canonical_json(value)
        parts.append(f"{name}={quote(str(value), safe='')}")
    return ("?" + "&".join(parts)) if parts else ""


# ---------------------------------------------------------------------------
# Blocking WebSocket subscriber.
# ---------------------------------------------------------------------------


class WsSubscription:
    """A blocking WebSocket subscription over a plain socket.

    Iterate (or call :meth:`recv`) to receive decoded JSON messages; the
    first is always the ``init`` document, each subsequent one carries the
    wire :class:`~repro.xmltree.diff.EditScript` of one commit (decode with
    :func:`edits_of`).
    """

    def __init__(self, host: str, port: int, path: str, timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        self._socket.sendall(request.encode("latin-1"))
        status_line, headers = self._read_http_head()
        if " 101 " not in status_line:
            body = self._read_error_body(headers)
            self.close()
            raise NetClientError(
                int(status_line.split(" ")[1]), body or status_line.strip()
            )
        expected = protocol.ws_accept_key(key)
        if headers.get("sec-websocket-accept") != expected:
            self.close()
            raise ProtocolError("server returned a bad Sec-WebSocket-Accept")

    def _read_exactly(self, size: int) -> bytes:
        while len(self._buffer) < size:
            chunk = self._socket.recv(65536)
            if not chunk:
                raise ConnectionError("subscription socket closed")
            self._buffer += chunk
        data, self._buffer = self._buffer[:size], self._buffer[size:]
        return data

    def _read_http_head(self) -> tuple[str, dict[str, str]]:
        while b"\r\n\r\n" not in self._buffer:
            chunk = self._socket.recv(65536)
            if not chunk:
                raise ConnectionError("connection closed during handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(b"\r\n\r\n", 1)
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        headers = {}
        for line in header_lines:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status_line, headers

    def _read_error_body(self, headers: dict[str, str]) -> str:
        length = int(headers.get("content-length", "0") or 0)
        if not length:
            return ""
        try:
            payload = json.loads(self._read_exactly(length))
            return payload.get("error", "") if isinstance(payload, dict) else ""
        except (ValueError, ConnectionError):
            return ""

    def recv(self) -> dict:
        """The next pushed JSON message (blocking; answers pings en route)."""
        while True:
            head = self._read_exactly(2)
            fin, opcode = bool(head[0] & 0x80), head[0] & 0x0F
            masked, length = bool(head[1] & 0x80), head[1] & 0x7F
            if length == 126:
                length = int.from_bytes(self._read_exactly(2), "big")
            elif length == 127:
                length = int.from_bytes(self._read_exactly(8), "big")
            key = self._read_exactly(4) if masked else None
            payload = self._read_exactly(length) if length else b""
            if key:
                payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
            if opcode == OP_CLOSE:
                raise ConnectionError("server closed the subscription")
            if opcode == OP_PING:
                self._socket.sendall(protocol.ws_frame(payload, OP_PONG, mask=True))
                continue
            if opcode == OP_PONG or not fin:
                continue  # unsolicited pong / fragmented control: skip
            if opcode == OP_TEXT:
                return json.loads(payload)

    def __iter__(self) -> Iterator[dict]:
        while True:
            try:
                yield self.recv()
            except ConnectionError:
                return

    def close(self) -> None:
        try:
            self._socket.sendall(protocol.ws_frame(b"", OP_CLOSE, mask=True))
        except OSError:
            pass
        self._socket.close()

    def __enter__(self) -> "WsSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def edits_of(message: Mapping[str, Any]) -> EditScript:
    """Decode the edit script carried by one pushed ``edits`` message."""
    return EditScript.from_wire(message["edits"])


# ---------------------------------------------------------------------------
# Asyncio subscriber (for holding many sockets concurrently).
# ---------------------------------------------------------------------------


class AsyncSubscriber:
    """One WebSocket subscription on an asyncio loop (benchmark workhorse)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.received = 0

    @classmethod
    async def open(cls, host: str, port: int, path: str) -> "AsyncSubscriber":
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0]
        if b" 101 " not in status_line:
            raise ProtocolError(f"upgrade refused: {status_line!r}")
        return cls(reader, writer)

    async def recv(self) -> dict:
        """The next pushed JSON text message (pings answered inline)."""
        while True:
            opcode, payload = await protocol.read_ws_message(self.reader)
            if opcode == OP_CLOSE:
                raise ConnectionError("server closed the subscription")
            if opcode == OP_PING:
                self.writer.write(protocol.ws_frame(payload, OP_PONG, mask=True))
                await self.writer.drain()
                continue
            if opcode == OP_TEXT:
                self.received += 1
                return json.loads(payload)

    def close(self) -> None:
        self.writer.close()
