"""Durability beneath :class:`~repro.serve.server.SourceHandle`: a delta WAL.

A :class:`DeltaLog` is an append-only write-ahead log of wire-encoded
:class:`~repro.relational.delta.Delta` records plus periodic full-instance
snapshots, stored in one directory per source::

    <dir>/
      snapshot-00000000000.json     # instance at version 0 (atomic rename)
      wal-00000000001.log           # deltas for versions 1, 2, ... (segment)
      wal-00000000257.log           # next segment after rotation

* **Write-ahead ordering.**  :func:`attach_durable` arms the handle so
  :meth:`SourceHandle.commit` appends (and flushes) the normalized delta
  *before* the new version becomes visible; a failed append aborts the
  commit with the in-memory chain untouched.
* **Records are self-verifying.**  Each log line is ``<crc32> <canonical
  JSON>``; the checksum is over exactly the bytes the network tier would
  stream for the same delta.  A torn final record -- the half-written line of
  a crash mid-commit -- is detected and discarded on recovery; corruption
  anywhere *else* raises :class:`WalError` rather than silently truncating
  history.
* **Snapshot compaction interoperates with ``prune()``.**  A checkpoint
  snapshots the handle's *oldest retained* version and drops only the log
  segments lying entirely at or below it, so every version the handle still
  promises to serve (and the current version) remains replayable.  Until
  :meth:`~repro.serve.server.SourceHandle.prune` advances the retained base,
  compaction therefore drops nothing -- the log keeps the full history the
  handle does.
* **Recovery is exact.**  :func:`recover_source` rebuilds the newest
  snapshot, replays every durable delta in order through the normal commit
  path (version numbers continue via ``attach(base_version=...)``), re-arms
  the log and returns a handle whose current version and ``publish()`` bytes
  are identical to the uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.relational.wire import (
    WIRE_FORMAT,
    WireError,
    canonical_json,
    delta_from_wire,
    instance_from_wire,
    instance_to_wire,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.server import SourceHandle, ViewServer

_SNAPSHOT_PREFIX = "snapshot-"
_SEGMENT_PREFIX = "wal-"
_WIDTH = 11  # zero-padded version numbers keep lexicographic == numeric order


class WalError(RuntimeError):
    """Raised when the write-ahead log is corrupt or used inconsistently."""


def _segment_path(directory: Path, first_version: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_version:0{_WIDTH}d}.log"


def _snapshot_path(directory: Path, version: int) -> Path:
    return directory / f"{_SNAPSHOT_PREFIX}{version:0{_WIDTH}d}.json"


def _indexed(paths: list[Path], prefix: str, suffix: str) -> list[tuple[int, Path]]:
    """Parse ``<prefix><version><suffix>`` names into (version, path) pairs."""
    found = []
    for path in paths:
        middle = path.name[len(prefix) : len(path.name) - len(suffix)]
        if path.name.startswith(prefix) and path.name.endswith(suffix) and middle.isdigit():
            found.append((int(middle), path))
    found.sort()
    return found


def _record_line(version: int, delta: Delta) -> bytes:
    body = canonical_json({"v": version, "delta": delta.to_wire()}).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(body), body)


def _parse_record(line: bytes, where: str) -> tuple[int, Delta]:
    """Decode one complete record line; raises :class:`WalError` on damage."""
    try:
        crc_text, body = line.split(b" ", 1)
        crc = int(crc_text, 16)
    except ValueError:
        raise WalError(f"{where}: malformed record framing") from None
    if zlib.crc32(body) != crc:
        raise WalError(f"{where}: checksum mismatch")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:  # crc passed but JSON bad: real damage
        raise WalError(f"{where}: unreadable record ({error})") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("v"), int):
        raise WalError(f"{where}: record missing its version")
    try:
        delta = delta_from_wire(payload.get("delta"))
    except WireError as error:
        raise WalError(f"{where}: {error}") from None
    return payload["v"], delta


@dataclass
class RecoveredState:
    """What :meth:`DeltaLog.recover` found on disk.

    ``instance`` is the newest snapshot (decoded, row representation);
    ``encoded`` records whether the source ran on the columnar backend;
    ``deltas`` are the durable post-snapshot records in version order;
    ``torn`` flags a discarded half-written final record.
    """

    base_version: int
    instance: Instance
    encoded: bool
    deltas: list[tuple[int, Delta]]
    torn: bool

    @property
    def current_version(self) -> int:
        """The version the source reaches after replaying every delta."""
        return self.deltas[-1][0] if self.deltas else self.base_version


class _GroupFlusher:
    """The process-wide group-commit flusher: one daemon thread, lazy-started.

    ``fsync=True`` appends flush their record, enqueue their open segment file
    here, and block until a flush cycle covers them.  Each cycle drains the
    whole queue and issues one :func:`os.fsync` per *distinct* file, so
    concurrent committers -- whether they share a log or merely a cycle --
    pool their syncs instead of paying one each.  Committers still block
    until their own record is durable; an fsync failure propagates to every
    committer it covered.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queue: list[tuple["DeltaLog", object, dict]] = []
        self._thread: threading.Thread | None = None

    def wait_durable(self, log: "DeltaLog", file) -> None:
        """Enqueue ``file`` and block until a cycle has fsynced it."""
        ticket = {"done": False, "error": None}
        with self._cond:
            self._queue.append((log, file, ticket))
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="wal-group-commit", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
            while not ticket["done"]:
                self._cond.wait()
        if ticket["error"] is not None:
            raise ticket["error"]

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    self._cond.wait()
                batch, self._queue = self._queue, []
            groups: dict[int, tuple[object, list[tuple["DeltaLog", dict]]]] = {}
            for log, file, ticket in batch:
                groups.setdefault(id(file), (file, []))[1].append((log, ticket))
            for file, entries in groups.values():
                error: BaseException | None = None
                try:
                    os.fsync(file.fileno())
                except (OSError, ValueError) as exc:
                    error = exc
                covered: dict[int, tuple["DeltaLog", int]] = {}
                for log, _ in entries:
                    count = covered.get(id(log), (log, 0))[1]
                    covered[id(log)] = (log, count + 1)
                for log, count in covered.values():
                    log._fsyncs += 1
                    if len(entries) > 1:
                        log._fsync_batched += count
                with self._cond:
                    for _, ticket in entries:
                        ticket["done"] = True
                        ticket["error"] = error
                    self._cond.notify_all()


_FLUSHER = _GroupFlusher()


def _reset_flusher_after_fork() -> None:  # pragma: no cover - exercised by shard workers
    """Give a forked child a pristine flusher (threads do not survive fork)."""
    global _FLUSHER
    _FLUSHER = _GroupFlusher()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_flusher_after_fork)


class DeltaLog:
    """One source's write-ahead log directory (see the module docstring).

    ``fsync=True`` additionally fsyncs every appended record (and snapshot)
    before the commit proceeds -- full crash durability at the price of one
    disk sync per commit.  Concurrent fsync appends are group-committed: each
    blocks until its record is durable, but records pending together share
    one :func:`os.fsync` (see :class:`_GroupFlusher` and :meth:`stats`).  The
    default flushes to the OS, which survives process crashes (the failure
    mode the tests exercise) but not power loss.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: bool = False,
        segment_records: int = 256,
    ) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self.segment_records = max(1, segment_records)
        self._file = None  # the open current segment, append mode
        self._segment_count = 0  # records in the current segment
        self._since_checkpoint = 0  # records since the last snapshot
        self._last_version: int | None = None
        self._fsyncs = 0  # append-path os.fsync calls issued for this log
        self._fsync_batched = 0  # records made durable by a shared fsync

    # -- inspection ----------------------------------------------------------

    def segments(self) -> list[tuple[int, Path]]:
        """The (first_version, path) of every log segment, oldest first."""
        if not self.directory.is_dir():
            return []
        return _indexed(list(self.directory.iterdir()), _SEGMENT_PREFIX, ".log")

    def snapshots(self) -> list[tuple[int, Path]]:
        """The (version, path) of every snapshot file, oldest first."""
        if not self.directory.is_dir():
            return []
        return _indexed(list(self.directory.iterdir()), _SNAPSHOT_PREFIX, ".json")

    @property
    def records_since_checkpoint(self) -> int:
        """Appended records since the last snapshot (drives auto-compaction)."""
        return self._since_checkpoint

    @property
    def last_version(self) -> int | None:
        """The version of the most recently appended record, if any."""
        return self._last_version

    def stats(self) -> dict[str, int]:
        """Append-path durability counters.

        ``fsyncs`` counts the :func:`os.fsync` calls issued on this log's
        behalf; ``fsync_batched`` counts the appended records whose sync was
        shared with at least one other pending record (so one fsync covering
        k >= 2 records adds k).  Snapshot fsyncs are not counted -- they are
        rare and never batched.
        """
        return {"fsyncs": self._fsyncs, "fsync_batched": self._fsync_batched}

    # -- writing -------------------------------------------------------------

    def begin(self, version: int, instance: Instance, encoded: bool = False) -> None:
        """Start a fresh log with a snapshot of the initial version.

        Refuses a directory that already holds log state -- recovery, not
        ``begin``, is the entry point for existing logs.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.snapshots() or self.segments():
            raise WalError(
                f"{self.directory} already holds a log; recover it instead of beginning anew"
            )
        self._write_snapshot(version, instance, encoded)
        self._last_version = version
        self._since_checkpoint = 0

    def append(self, version: int, delta: Delta) -> None:
        """Append one commit record (called by the armed handle, pre-visibility)."""
        if self._last_version is not None and version != self._last_version + 1:
            raise WalError(
                f"out-of-order append: version {version} after {self._last_version}"
            )
        if self._file is None or self._segment_count >= self.segment_records:
            self._roll_segment(version)
        self._file.write(_record_line(version, delta))
        self._file.flush()
        if self.fsync:
            _FLUSHER.wait_durable(self, self._file)
        self._segment_count += 1
        self._since_checkpoint += 1
        self._last_version = version

    def _roll_segment(self, first_version: int) -> None:
        if self._file is not None:
            self._file.close()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = _segment_path(self.directory, first_version)
        self._file = open(path, "ab")
        self._segment_count = 0

    def _write_snapshot(self, version: int, instance: Instance, encoded: bool) -> None:
        payload = {
            "format": WIRE_FORMAT,
            "kind": "wal-snapshot",
            "version": version,
            "encoded": bool(encoded),
            "instance": instance_to_wire(instance),
        }
        path = _snapshot_path(self.directory, version)
        temp = path.with_suffix(".json.tmp")
        data = canonical_json(payload).encode("utf-8")
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(temp, path)  # atomic: a crash leaves old or new, never half

    def checkpoint(self, version: int, instance: Instance, encoded: bool = False) -> list[Path]:
        """Snapshot ``version`` and drop every segment it makes redundant.

        A segment is dropped only when *all* of its records are at or below
        the snapshot version -- segments still needed to replay any newer
        (retained or current) version survive, which is the contract that
        lets compaction interoperate with :meth:`SourceHandle.prune`.
        Older snapshot files are removed as well.  Returns the deleted paths.
        """
        self._write_snapshot(version, instance, encoded)
        self._since_checkpoint = 0
        removed: list[Path] = []
        segments = self.segments()
        # Never unlink the segment currently open for append -- its future
        # records would land in an unlinked file and vanish.
        current = Path(self._file.name) if self._file is not None else None
        for position, (first, path) in enumerate(segments):
            last = (
                segments[position + 1][0] - 1
                if position + 1 < len(segments)
                else (self._last_version if self._last_version is not None else version)
            )
            if last <= version and (current is None or path != current):
                path.unlink()
                removed.append(path)
        for snap_version, path in self.snapshots():
            if snap_version < version:
                path.unlink()
                removed.append(path)
        return removed

    def close(self) -> None:
        """Close the open segment file (appends reopen it transparently)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- recovery ------------------------------------------------------------

    def recover(self, repair: bool = True) -> RecoveredState | None:
        """Read the durable state back: newest snapshot plus replayable deltas.

        Returns ``None`` for a directory with no snapshot (nothing was ever
        logged).  A torn *final* record -- the signature of a crash mid-append
        -- is discarded, and with ``repair=True`` (the default) the segment
        file is truncated back to its durable prefix so future appends start
        clean.  Damage anywhere else raises :class:`WalError`.
        """
        snapshots = self.snapshots()
        if not snapshots:
            return None
        base_version, snapshot_path = snapshots[-1]
        try:
            payload = json.loads(snapshot_path.read_bytes())
        except json.JSONDecodeError as error:
            raise WalError(f"{snapshot_path.name}: unreadable snapshot ({error})") from None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != WIRE_FORMAT
            or payload.get("kind") != "wal-snapshot"
            or payload.get("version") != base_version
        ):
            raise WalError(f"{snapshot_path.name}: malformed snapshot envelope")
        try:
            instance = instance_from_wire(payload.get("instance"))
        except WireError as error:
            raise WalError(f"{snapshot_path.name}: {error}") from None

        deltas: list[tuple[int, Delta]] = []
        torn = False
        segments = self.segments()
        expected = base_version + 1
        for position, (first, path) in enumerate(segments):
            data = path.read_bytes()
            lines = data.split(b"\n")
            complete, tail = lines[:-1], lines[-1]
            durable_bytes = len(data) - len(tail)
            is_last_segment = position == len(segments) - 1
            if tail:
                if not is_last_segment:
                    raise WalError(f"{path.name}: truncated record inside the log")
                torn = True
            for line_number, line in enumerate(complete):
                where = f"{path.name}:{line_number + 1}"
                is_final_record = (
                    is_last_segment and not tail and line_number == len(complete) - 1
                )
                try:
                    version, delta = _parse_record(line, where)
                except WalError:
                    if is_final_record:
                        # A crash can also tear a record that got its newline
                        # out before its payload bytes settled; only the very
                        # last record of the log is forgivable.
                        torn = True
                        durable_bytes = sum(len(other) + 1 for other in complete[:line_number])
                        break
                    raise
                if version <= base_version:
                    continue  # pre-snapshot history kept for older segments
                if version != expected:
                    raise WalError(
                        f"{where}: version {version} breaks the chain (expected {expected})"
                    )
                deltas.append((version, delta))
                expected = version + 1
            if torn and repair and durable_bytes < len(data):
                with open(path, "ab") as handle:
                    handle.truncate(durable_bytes)
        self._last_version = deltas[-1][0] if deltas else base_version
        self._since_checkpoint = len(deltas)
        return RecoveredState(base_version, instance, bool(payload.get("encoded")), deltas, torn)


# ---------------------------------------------------------------------------
# Arming handles.
# ---------------------------------------------------------------------------


class DurableSource:
    """The hook arming one :class:`SourceHandle` with a :class:`DeltaLog`.

    Installed as the handle's write-ahead sink: :meth:`append` runs inside
    the handle's commit critical section, *before* the new version becomes
    visible.  Every ``snapshot_every`` records it also checkpoints at the
    handle's oldest retained version -- the compaction cadence; pass
    ``snapshot_every=0`` to compact only explicitly via :meth:`compact`.
    """

    def __init__(self, log: DeltaLog, handle: "SourceHandle", snapshot_every: int = 256) -> None:
        self.log = log
        self.handle = handle
        self.snapshot_every = snapshot_every

    def append(self, version: int, delta: Delta) -> None:
        self.log.append(version, delta)
        if self.snapshot_every and self.log.records_since_checkpoint >= self.snapshot_every:
            # Called under the handle's lock: read the retained base directly.
            base = self.handle._versions[0]
            self.log.checkpoint(base.index, base.instance, base.instance.is_encoded)

    def compact(self) -> list[Path]:
        """Checkpoint now, at the handle's oldest retained version.

        The natural companion of :meth:`SourceHandle.prune`: after pruning,
        the retained base has advanced and every segment below it becomes
        droppable.  Returns the deleted files.
        """
        with self.handle._lock:
            base = self.handle._versions[0]
        return self.log.checkpoint(base.index, base.instance, base.instance.is_encoded)


def attach_durable(
    server: "ViewServer",
    instance: Instance,
    log: DeltaLog | str | os.PathLike,
    *,
    name: str | None = None,
    encoded: bool = False,
    snapshot_every: int = 256,
) -> "SourceHandle":
    """Attach a source whose commits are write-ahead logged to ``log``.

    The log directory must be fresh (use :func:`recover_source` to resume an
    existing one).  The initial instance is snapshotted immediately, so a
    crash before the first commit already recovers to version 0.
    """
    if not isinstance(log, DeltaLog):
        log = DeltaLog(log)
    handle = server.attach(instance, name=name, encoded=encoded)
    log.begin(handle.version, handle.instance, handle.instance.is_encoded)
    handle._wal = DurableSource(log, handle, snapshot_every)
    return handle


def rehome_source(
    handle: "SourceHandle",
    directory: str | os.PathLike,
    *,
    fsync: bool = False,
    snapshot_every: int = 256,
) -> DeltaLog:
    """Move a durable handle's log into a fresh directory (shard handoff).

    The new log begins with a snapshot at the handle's *current* version, so
    the new directory is immediately self-sufficient -- the old shard's
    directory can be removed once the caller no longer needs its history.
    Future commits append to the new log; replaying it reproduces the
    handle's publishes byte-identically from the snapshot forward.
    """
    old = handle._wal
    log = DeltaLog(directory, fsync=fsync)
    with handle._lock:
        current = handle._versions[-1]
        log.begin(current.index, current.instance, current.instance.is_encoded)
        handle._wal = DurableSource(log, handle, snapshot_every)
    if old is not None:
        old.log.close()
    return log


def recover_source(
    server: "ViewServer",
    log: DeltaLog | str | os.PathLike,
    *,
    name: str | None = None,
    snapshot_every: int = 256,
) -> "SourceHandle":
    """Replay a log into ``server`` and return the re-armed, caught-up handle.

    The handle resumes the pre-crash version numbering (the snapshot version
    seeds ``attach(base_version=...)``) and its ``publish()`` output is
    byte-identical to the uninterrupted run at the recovered version, on
    whichever backend the source originally ran.
    """
    if not isinstance(log, DeltaLog):
        log = DeltaLog(log)
    state = log.recover()
    if state is None:
        raise WalError(f"{log.directory} holds no snapshot; nothing to recover")
    instance = state.instance
    if state.encoded:
        from repro.relational.columnar import ensure_encoded

        ensure_encoded(instance)
    handle = server.attach(instance, name=name, base_version=state.base_version)
    for version, delta in state.deltas:
        committed = handle.commit(delta)
        if committed.index != version:  # pragma: no cover - defensive
            raise WalError(
                f"replay drifted: log record {version} landed at {committed.index}"
            )
    handle._wal = DurableSource(log, handle, snapshot_every)
    return handle
