"""``NetServer``: the asyncio HTTP/WebSocket front door over ViewServers.

One process serves any number of *namespaces* (tenants), each backed by its
own :class:`~repro.serve.server.ViewServer`, over a small REST surface plus
streaming WebSocket subscriptions::

    GET   /healthz
    GET   /v1/ns/{ns}/views                      list registered views
    POST  /v1/ns/{ns}/views                      register a catalog view
    GET   /v1/ns/{ns}/views/{v}/publish          the document (ETag / 304)
    GET   /v1/ns/{ns}/views/{v}/explain          per-rule plan report
    WS    /v1/ns/{ns}/views/{v}/subscribe        one EditScript per commit
    GET   /v1/ns/{ns}/sources                    list attached sources
    POST  /v1/ns/{ns}/sources                    attach (optionally durable)
    POST  /v1/ns/{ns}/sources/{s}/commit         commit a wire Delta
    POST  /v1/ns/{ns}/sources/{s}/prune          prune + compact the WAL
    GET   /v1/ns/{ns}/stats                      ViewServer + net counters

Design notes:

* **ETags are MVCC versions.**  A publish response carries a strong ETag
  derived from the source's version number and the request's routing axes;
  ``If-None-Match`` short-circuits to ``304 Not Modified`` *before any
  evaluation* -- an unchanged publish costs a dictionary lookup, not a query.
  Clients that do not revalidate still hit an ETag-keyed LRU of encoded
  response bodies, so a cache-warm ``200`` is a buffer handoff too.
* **Fan-out is one republish + one encode per commit.**  All WebSocket
  subscribers of a (view, source, binding) share one
  :meth:`ViewServer.subscribe` chain, and each pushed
  :class:`~repro.xmltree.diff.EditScript` is wire-encoded and framed
  **once**; every additional subscriber costs exactly one socket write.
  Slow consumers whose kernel buffers back up past
  :attr:`NetServer.max_buffered_bytes` are evicted, mirroring the
  ``Subscription.dropped`` overflow contract.
* **Durability is opt-out.**  With a ``wal_dir``, attached sources are
  write-ahead logged (:mod:`repro.serve.net.wal`) and :meth:`NetServer.start`
  replays any logs it finds, so a restarted server resumes every source at
  its pre-crash version with byte-identical documents.
* **Views travel as code, not pickles.**  ``POST /views`` instantiates
  entries of the server's *catalog* (name -> front-end or factory); views are
  re-registered after a restart by the client, exactly like stored
  procedures.  Nothing executable is ever read from the wire.

The server is single-loop asyncio: evaluation runs inline on the event loop
(the engine is CPU-bound and the GIL would serialize it anyway).  The
multi-core story is ``NetServer(pool=...)`` -- a
:class:`repro.parallel.WorkerPool` shards per-commit subscriber encoding by
``(namespace, view, source, binding)`` group across worker *processes*
(see :meth:`NetServer._encode_groups`), with the WAL still available for
sharding whole sources across server processes.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.relational.errors import RelationalError
from repro.relational.wire import (
    WireError,
    canonical_json,
    delta_from_wire,
    instance_from_wire,
    instance_to_wire,
)
from repro.serve.net import protocol
from repro.serve.net.protocol import (
    OP_CLOSE,
    OP_PING,
    ProtocolError,
    Request,
    json_response,
    render_response,
)
from repro.serve.net.wal import DeltaLog, WalError, attach_durable, recover_source
from repro.serve.server import (
    ServeError,
    SourceHandle,
    Subscription,
    ViewRejected,
    ViewServer,
)
from repro.typecheck import OutputValidationError
from repro.xmltree.dtd import dtd_from_wire

#: Routing axes a publish request may pin (mirrors ViewServer.publish).
_PUBLISH_OUTPUTS = ("bytes", "compact")


class _HttpError(Exception):
    """An error with a definite HTTP status, raised inside handlers."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _int_query(text: str, axis: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise _HttpError(400, f"malformed {axis} {text!r}") from None


def default_catalog() -> dict[str, Callable]:
    """The built-in view catalog: the paper's registrar views, by name."""
    from repro.workloads.registrar import (
        tau1_prerequisite_hierarchy,
        tau2_prerequisite_closure,
        tau3_courses_without_db_prereq,
    )

    return {
        "tau1": tau1_prerequisite_hierarchy,
        "tau2": tau2_prerequisite_closure,
        "tau3": tau3_courses_without_db_prereq,
    }


class _Broadcast:
    """One shared subscription chain plus its WebSocket writers."""

    __slots__ = ("namespace", "view", "source", "subscription", "writers")

    def __init__(
        self, namespace: str, view: str, source: str, subscription: Subscription
    ) -> None:
        self.namespace = namespace
        self.view = view
        self.source = source
        self.subscription = subscription
        self.writers: list[asyncio.StreamWriter] = []


class NetServer:
    """Serve ViewServers over HTTP/1.1 and WebSockets (see module docstring)."""

    #: Eviction threshold for slow subscribers (bytes buffered in our send
    #: queue before the kernel accepts them).
    max_buffered_bytes = 8 * 1024 * 1024

    #: Longest a slow subscriber may stall one fan-out's drain before being
    #: evicted.  The buffer threshold above catches consumers that back up
    #: within one burst; this catches the ones that pin the transport's
    #: high-water mark across commits without ever reading.
    drain_timeout = 5.0

    #: Retained entries in the ETag-keyed response-body cache.
    max_cached_responses = 128

    def __init__(
        self,
        server: ViewServer | None = None,
        *,
        catalog: Mapping[str, Callable] | None = None,
        wal_dir: str | Path | None = None,
        snapshot_every: int = 256,
        fsync: bool = False,
        pool=None,
    ) -> None:
        # Caller-owned repro.parallel.WorkerPool (may be shared with the
        # ViewServer it wraps); None keeps every fan-out on the event loop.
        self._pool = pool
        self._namespaces: dict[str, ViewServer] = {"default": server or ViewServer()}
        self._catalog = dict(catalog) if catalog is not None else default_catalog()
        self._wal_dir = Path(wal_dir) if wal_dir is not None else None
        self._snapshot_every = snapshot_every
        self._fsync = fsync
        self._groups: dict[tuple, _Broadcast] = {}
        #: Encoded publish bodies keyed by ETag (LRU, newest last).  The ETag
        #: already pins every axis that can change the bytes -- source version,
        #: binding, output form, backend, indent -- so a hit skips evaluation
        #: *and* encoding; stale versions age out as new ETags displace them.
        self._response_cache: dict[str, bytes] = {}
        self._asyncio_server: asyncio.base_events.Server | None = None
        self._ws_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self.address: tuple[str, int] | None = None
        self.counters = {
            "requests": 0,
            "commits": 0,
            "publishes": 0,
            "not_modified": 0,
            "response_cache_hits": 0,
            "ws_connections": 0,
            "ws_active": 0,
            "deliveries": 0,
            "evicted": 0,
            "recovered_sources": 0,
            "sharded_groups": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Recover any write-ahead logs, then start accepting connections."""
        if self._wal_dir is not None:
            self._recover_all()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host, port, limit=protocol.STREAM_LIMIT
        )
        sockname = self._asyncio_server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Stop accepting, drop every subscriber, close WAL segments."""
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for group in list(self._groups.values()):
            for writer in list(group.writers):
                self._drop_writer(group, writer)
            group.subscription.close()
        self._groups.clear()
        pending = list(self._ws_tasks) + [
            task for task in self._conn_tasks if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for vs in self._namespaces.values():
            vs.close()

    def namespace(self, name: str, create: bool = False) -> ViewServer:
        """The namespace's ViewServer (created on demand for writes)."""
        vs = self._namespaces.get(name)
        if vs is None:
            if not create:
                raise _HttpError(404, f"unknown namespace {name!r}")
            vs = self._namespaces[name] = ViewServer()
        return vs

    def drop_namespace(self, name: str) -> ViewServer:
        """Detach a namespace: drop its subscribers, close its WAL segments.

        The handoff half of shard rebalancing (:mod:`repro.serve.net.shard`):
        after the drop this server no longer owns the namespace, its log
        directories are closed for another process to recover, and its
        WebSocket subscribers are disconnected (they reconnect through the
        front door, which routes them to the new owner).  Returns the
        detached :class:`ViewServer`.
        """
        vs = self._namespaces.pop(name, None)
        if vs is None:
            raise _HttpError(404, f"unknown namespace {name!r}")
        for key, group in list(self._groups.items()):
            if group.namespace == name:
                for writer in list(group.writers):
                    self._drop_writer(group, writer)
                group.subscription.close()
                del self._groups[key]
        vs.close()
        # ETags embed the namespace, so entries for other namespaces would
        # survive -- but a drop is rare and a cold cache is merely slow.
        self._response_cache.clear()
        return vs

    def _recover_all(self) -> None:
        """Replay every per-source log under ``wal_dir`` (layout: ns/source)."""
        if not self._wal_dir.is_dir():
            return
        for ns_dir in sorted(path for path in self._wal_dir.iterdir() if path.is_dir()):
            vs = self.namespace(ns_dir.name, create=True)
            for source_dir in sorted(path for path in ns_dir.iterdir() if path.is_dir()):
                log = DeltaLog(
                    source_dir, fsync=self._fsync, segment_records=self._snapshot_every
                )
                if log.recover() is None:
                    continue
                recover_source(
                    vs, log, name=source_dir.name, snapshot_every=self._snapshot_every
                )
                self.counters["recovered_sources"] += 1

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except ProtocolError as error:
                    writer.write(json_response(400, {"error": str(error)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                if request.wants_upgrade:
                    await self._serve_websocket(request, reader, writer)
                    return  # the socket is a WebSocket until it dies
                try:
                    response = await self._dispatch(request)
                except _HttpError as error:
                    response = json_response(error.status, {"error": str(error)})
                except OutputValidationError as error:
                    # the published document broke the view's registered DTD:
                    # a server-side data problem, not a malformed request
                    response = json_response(
                        422,
                        {
                            "error": str(error),
                            "view": error.view,
                            "violation": error.violation.as_dict(),
                        },
                    )
                except (
                    ServeError,
                    WireError,
                    ProtocolError,
                    RelationalError,
                ) as error:
                    # a delta/instance that decodes but violates the schema
                    # (e.g. wrong arity) is the client's mistake, not ours
                    response = json_response(400, {"error": str(error)})
                except WalError as error:
                    response = json_response(409, {"error": str(error)})
                except Exception as error:  # pragma: no cover - last resort
                    response = json_response(
                        500, {"error": f"{type(error).__name__}: {error}"}
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:  # server shutdown
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy close
                pass

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, request: Request) -> bytes:
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"]:
            if request.method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return json_response(
                200, {"ok": True, "namespaces": sorted(self._namespaces)}
            )
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "ns":
            return await self._dispatch_namespace(request, parts[2], parts[3:])
        extra = await self._dispatch_extra(request, parts)
        if extra is not None:
            return extra
        raise _HttpError(404, f"no route for {request.method} {request.path}")

    async def _dispatch_extra(self, request: Request, parts: list[str]) -> bytes | None:
        """Subclass hook for additional routes (e.g. shard admin); None = 404."""
        return None

    async def _dispatch_namespace(
        self, request: Request, ns: str, rest: list[str]
    ) -> bytes:
        creates = request.method == "POST"
        vs = self.namespace(ns, create=creates)
        if rest == ["stats"] and request.method == "GET":
            return self._stats(ns, vs)
        if rest == ["views"]:
            if request.method == "GET":
                return self._list_views(vs)
            if request.method == "POST":
                return self._register_view(vs, request)
        if len(rest) == 3 and rest[0] == "views" and request.method == "GET":
            if rest[2] == "publish":
                return self._publish(ns, vs, rest[1], request)
            if rest[2] == "explain":
                return self._explain(vs, rest[1], request)
            if rest[2] == "subscribe":
                raise _HttpError(426, "subscribe requires a WebSocket upgrade")
        if rest == ["sources"]:
            if request.method == "GET":
                return self._list_sources(vs)
            if request.method == "POST":
                return self._attach(ns, vs, request)
        if len(rest) == 2 and rest[0] == "sources" and request.method == "GET":
            return self._source_info(vs, rest[1])
        if len(rest) == 3 and rest[0] == "sources" and request.method == "POST":
            if rest[2] == "commit":
                return await self._commit(ns, vs, rest[1], request)
            if rest[2] == "prune":
                return self._prune(vs, rest[1], request)
        raise _HttpError(404, f"no route for {request.method} {request.path}")

    # -- views ---------------------------------------------------------------

    def _list_views(self, vs: ViewServer) -> bytes:
        return json_response(
            200,
            [
                {
                    "name": view.name,
                    "language": view.language,
                    "params": list(view.params),
                    "publishes": view.publishes,
                }
                for view in vs.views
            ],
        )

    def _register_view(self, vs: ViewServer, request: Request) -> bytes:
        body = request.json() or {}
        name = body.get("name")
        key = body.get("view", name)
        if not isinstance(name, str) or not name:
            raise _HttpError(400, "register needs a view 'name'")
        if key not in self._catalog:
            raise _HttpError(
                404, f"unknown catalog view {key!r}; available: {sorted(self._catalog)}"
            )
        params = body.get("params", ())
        if not isinstance(params, (list, tuple)) or not all(
            isinstance(p, str) for p in params
        ):
            raise _HttpError(400, "'params' must be a list of parameter names")
        output_dtd = None
        if body.get("output_dtd") is not None:
            # The DTD travels as pure data (tag -> content-model expression
            # trees); nothing executable crosses the wire, so the catalog
            # discipline -- clients name code, they never ship it -- holds.
            try:
                output_dtd = dtd_from_wire(body["output_dtd"])
            except (ValueError, TypeError) as error:
                raise _HttpError(400, f"malformed output_dtd: {error}") from None
        typecheck = body.get("typecheck", "static")
        if not isinstance(typecheck, str):
            raise _HttpError(400, "'typecheck' must be a string mode")
        try:
            view = vs.register_view(
                name,
                self._catalog[key],
                params=params,
                output_dtd=output_dtd,
                typecheck=typecheck,
            )
        except ViewRejected as rejected:
            # 422: the request was well-formed, the *view* failed its output
            # typecheck.  Ship the whole verdict -- including the witness
            # source instance -- so the client can replay the refutation.
            payload: dict[str, Any] = {
                "error": str(rejected),
                "typecheck": rejected.result.as_dict(),
            }
            if rejected.result.witness is not None:
                payload["witness"] = instance_to_wire(rejected.result.witness)
            return json_response(422, payload)
        registered = {
            "name": view.name,
            "language": view.language,
            "params": list(view.params),
        }
        if output_dtd is not None:
            result = view.typecheck_result() if not params else None
            registered["typecheck"] = {
                "mode": view.typecheck_mode,
                "verdict": result.verdict.value if result is not None else None,
            }
        return json_response(201, registered)

    def _view_params(self, request: Request) -> dict[str, Any] | None:
        text = request.query.get("params")
        if not text:
            return None
        try:
            params = json.loads(text)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"malformed params JSON: {error}") from None
        if not isinstance(params, dict):
            raise _HttpError(400, "params must be a JSON object")
        return params

    def _publish(self, ns: str, vs: ViewServer, view_name: str, request: Request) -> bytes:
        view = vs.view(view_name)
        source_name = request.query.get("source")
        handle = vs.source(source_name) if source_name else self._sole_source(vs)
        version = request.query.get("version")
        try:
            snapshot = handle.snapshot(int(version) if version is not None else None)
        except ValueError:
            raise _HttpError(400, f"malformed version {version!r}") from None
        output = request.query.get("output", "bytes")
        if output not in _PUBLISH_OUTPUTS:
            raise _HttpError(
                400, f"output must be one of {_PUBLISH_OUTPUTS} over HTTP"
            )
        backend = request.query.get("backend", "auto")
        maintenance = request.query.get("maintenance", "auto")
        indent_text = request.query.get("indent", "2")
        indent = None if indent_text in ("none", "") else _int_query(indent_text, "indent")
        params = self._view_params(request)

        etag = self._etag(
            ns, view_name, handle.name, snapshot.index,
            (view.binding_key(params), output, backend, indent),
        )
        headers = {
            "ETag": etag,
            "X-Source-Version": str(snapshot.index),
            "Cache-Control": "private, must-revalidate",
        }
        candidates = request.headers.get("if-none-match", "")
        if candidates and (
            candidates.strip() == "*"
            or etag in (tag.strip() for tag in candidates.split(","))
        ):
            self.counters["not_modified"] += 1
            return render_response(304, b"", headers)
        body = self._response_cache.pop(etag, None)
        if body is not None:
            self._response_cache[etag] = body  # LRU touch: newest last
            self.counters["response_cache_hits"] += 1
            return render_response(200, body, headers, content_type="application/xml")
        document = vs.publish(
            view,
            source=snapshot,
            params=params,
            output=output,
            backend=backend,
            maintenance=maintenance,
            indent=indent,
        )
        self.counters["publishes"] += 1
        body = document.encode("utf-8")
        self._response_cache[etag] = body
        while len(self._response_cache) > self.max_cached_responses:
            self._response_cache.pop(next(iter(self._response_cache)))
        return render_response(200, body, headers, content_type="application/xml")

    def _explain(self, vs: ViewServer, view_name: str, request: Request) -> bytes:
        vs.view(view_name)  # reject unknown names before touching explain
        report = vs.explain(view_name, params=self._view_params(request))
        return json_response(200, report.as_dict())

    # -- sources -------------------------------------------------------------

    def _sole_source(self, vs: ViewServer) -> SourceHandle:
        handles = vs.handles
        if len(handles) == 1:
            return handles[0]
        raise _HttpError(
            400, f"namespace has {len(handles)} sources; pass ?source=<name>"
        )

    def _list_sources(self, vs: ViewServer) -> bytes:
        return json_response(
            200,
            [
                {
                    "name": handle.name,
                    "version": handle.version,
                    "commits": handle.commits,
                    "durable": handle._wal is not None,
                }
                for handle in vs.handles
            ],
        )

    def _source_info(self, vs: ViewServer, name: str) -> bytes:
        handle = vs.source(name)
        versions = handle.history()
        return json_response(
            200,
            {
                "name": handle.name,
                "version": handle.version,
                "commits": handle.commits,
                "durable": handle._wal is not None,
                "retained": [version.index for version in versions],
            },
        )

    def _attach(self, ns: str, vs: ViewServer, request: Request) -> bytes:
        body = request.json() or {}
        name = body.get("name")
        if name is not None and (not isinstance(name, str) or not name):
            raise _HttpError(400, "source 'name' must be a non-empty string")
        instance = instance_from_wire(body.get("instance"))
        encoded = bool(body.get("encoded", False))
        durable = bool(body.get("durable", self._wal_dir is not None))
        if durable:
            if self._wal_dir is None:
                raise _HttpError(400, "server has no wal_dir; attach with durable=false")
            if name is None:
                name = f"source{len(vs.handles)}"
            log = DeltaLog(
                self._wal_dir / ns / name,
                fsync=self._fsync,
                segment_records=self._snapshot_every,
            )
            handle = attach_durable(
                vs, instance, log, name=name, encoded=encoded,
                snapshot_every=self._snapshot_every,
            )
        else:
            handle = vs.attach(instance, name=name, encoded=encoded)
        return json_response(
            201, {"name": handle.name, "version": handle.version, "durable": durable}
        )

    async def _commit(
        self, ns: str, vs: ViewServer, name: str, request: Request
    ) -> bytes:
        handle = vs.source(name)
        delta = delta_from_wire(request.json())
        version = handle.commit(delta)
        self.counters["commits"] += 1
        delivered = await self._fan_out(ns, handle)
        return json_response(
            200,
            {
                "source": handle.name,
                "version": version.index,
                "changes": version.delta.change_count(),
                "delivered": delivered,
            },
        )

    def _prune(self, vs: ViewServer, name: str, request: Request) -> bytes:
        handle = vs.source(name)
        body = request.json() or {}
        keep_last = body.get("keep_last", 1)
        if not isinstance(keep_last, int) or keep_last < 1:
            raise _HttpError(400, "'keep_last' must be a positive integer")
        pruned = handle.prune(keep_last=keep_last)
        compacted: list = []
        if handle._wal is not None and pruned.count:
            compacted = [path.name for path in handle._wal.compact()]
        return json_response(
            200,
            {
                "count": pruned.count,
                "indices": list(pruned.indices),
                "compacted": compacted,
            },
        )

    # -- stats ---------------------------------------------------------------

    def _stats(self, ns: str, vs: ViewServer) -> bytes:
        return json_response(
            200,
            {
                "namespace": ns,
                "net": dict(self.counters),
                "groups": [
                    {
                        "view": group.view,
                        "source": group.source,
                        "subscribers": len(group.writers),
                        "version": group.subscription.version,
                    }
                    for group in self._groups.values()
                    if group.namespace == ns
                ],
                "server": vs.stats().as_dict(),
            },
        )

    @staticmethod
    def _etag(ns: str, view: str, source: str, version: int, extras: tuple) -> str:
        digest = hashlib.sha1(
            repr((ns, view, source, extras)).encode("utf-8")
        ).hexdigest()[:16]
        return f'"v{version}-{digest}"'

    # -- websocket subscriptions ---------------------------------------------

    async def _serve_websocket(
        self, request: Request, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            group, init = self._open_subscription(request)
        except _HttpError as error:
            writer.write(json_response(error.status, {"error": str(error)}))
            await writer.drain()
            writer.close()
            return
        except OutputValidationError as error:
            writer.write(
                json_response(
                    422,
                    {
                        "error": str(error),
                        "view": error.view,
                        "violation": error.violation.as_dict(),
                    },
                )
            )
            await writer.drain()
            writer.close()
            return
        except (ServeError, WireError, ProtocolError, RelationalError) as error:
            writer.write(json_response(400, {"error": str(error)}))
            await writer.drain()
            writer.close()
            return
        except Exception as error:
            # opening a subscription runs a full publish; anything it raises
            # (node budgets included) must answer over HTTP, not kill the
            # connection callback before the upgrade completes
            writer.write(
                json_response(500, {"error": f"{type(error).__name__}: {error}"})
            )
            await writer.drain()
            writer.close()
            return
        writer.write(protocol.ws_handshake_response(request))
        writer.write(protocol.ws_text_frame(canonical_json(init)))
        await writer.drain()
        group.writers.append(writer)
        self.counters["ws_connections"] += 1
        self.counters["ws_active"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._ws_tasks.add(task)
        try:
            while True:
                opcode, payload = await protocol.read_ws_message(reader)
                if opcode == OP_CLOSE:
                    break
                if opcode == OP_PING:
                    writer.write(protocol.ws_frame(payload, protocol.OP_PONG))
                    await writer.drain()
                # Data frames from subscribers are ignored: the channel is push-only.
        except (
            ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._ws_tasks.discard(task)
            self._drop_writer(group, writer)

    def _open_subscription(self, request: Request) -> tuple[_Broadcast, dict]:
        parts = [part for part in request.path.split("/") if part]
        if (
            len(parts) != 6
            or parts[:2] != ["v1", "ns"]
            or parts[3] != "views"
            or parts[5] != "subscribe"
        ):
            raise _HttpError(404, f"no WebSocket route for {request.path}")
        ns, view_name = parts[2], parts[4]
        vs = self.namespace(ns)
        view = vs.view(view_name)
        source_name = request.query.get("source")
        handle = vs.source(source_name) if source_name else self._sole_source(vs)
        params = self._view_params(request)
        binding = view.binding_key(params)
        key = (ns, view_name, handle.name, binding)
        group = self._groups.get(key)
        if group is None:
            subscription = vs.subscribe(view, handle, params=params)
            group = self._groups[key] = _Broadcast(
                ns, view_name, handle.name, subscription
            )
        from repro.xmltree.diff import tree_to_wire

        init = {
            "type": "init",
            "view": view_name,
            "source": handle.name,
            "version": group.subscription.version,
            "document": tree_to_wire(group.subscription.tree),
        }
        return group, init

    def _drop_writer(self, group: _Broadcast, writer: asyncio.StreamWriter) -> None:
        try:
            group.writers.remove(writer)
            self.counters["ws_active"] -= 1
        except ValueError:
            pass
        writer.close()

    @staticmethod
    def _encode_frames(group: _Broadcast, events) -> list[bytes]:
        """Wire-encode one group's pending events (the serial reference)."""
        frames = []
        for event in events:
            payload = canonical_json(
                {
                    "type": "edits",
                    "view": group.view,
                    "source": group.source,
                    "version": event.version,
                    "empty": event.edits.is_empty(),
                    "edits": event.edits.to_wire(),
                }
            )
            frames.append(protocol.ws_text_frame(payload))
        return frames

    async def _encode_groups(
        self, pending: list[tuple[tuple, _Broadcast, list]]
    ) -> list[tuple[_Broadcast, list[bytes]]]:
        """Encode each group's events, sharded across the worker pool.

        The edit scripts of one commit can be large (a blow-up view's diff)
        and JSON canonicalisation is pure CPU, so with a pool attached each
        subscriber group's encoding runs on a worker -- sharded by
        ``(ns, view, source, binding)`` for stable affinity, so a group's
        repeat commits land on one worker while distinct groups spread out --
        and the event loop stays free to accept connections meanwhile.
        Encoding is deterministic, so pooled frames are byte-identical to
        inline ones; any pool failure (unpicklable edits, worker crash)
        falls back to inline encoding for that group.
        """
        pool = self._pool
        if pool is None or pool.broken or len(pending) < 2:
            return [
                (group, self._encode_frames(group, events))
                for _, group, events in pending
            ]
        from repro.parallel.pool import (
            NotShippable,
            PoolBroken,
            WorkerCrashed,
            WorkerTaskError,
        )

        futures: list = []
        for key, group, events in pending:
            wire_events = [
                (group.view, group.source, event.version, event.edits)
                for event in events
            ]
            try:
                futures.append(pool.submit("encode_events", wire_events, key=key))
            except (NotShippable, PoolBroken, WorkerCrashed):
                futures.append(None)
        out = []
        for (key, group, events), future in zip(pending, futures):
            frames = None
            if future is not None:
                try:
                    frames = await asyncio.wrap_future(future)
                except (PoolBroken, WorkerCrashed, WorkerTaskError):
                    frames = None
            if frames is None:
                frames = self._encode_frames(group, events)
            else:
                self.counters["sharded_groups"] += 1
            out.append((group, frames))
        return out

    async def _fan_out(self, ns: str, handle: SourceHandle) -> int:
        """Push pending subscription events to every group on ``handle``.

        Each event is wire-encoded and framed exactly once -- on a worker
        process when a pool is attached (see :meth:`_encode_groups`) -- and
        the per-writer cost is one buffered socket write.  Writers whose
        buffers exceed :attr:`max_buffered_bytes` (a consumer that stopped
        reading) are evicted rather than allowed to pin arbitrary memory.
        """
        delivered = 0
        pending: list[tuple[tuple, _Broadcast, list]] = []
        for key, group in self._groups.items():
            if group.namespace != ns or group.subscription.handle is not handle:
                continue
            events = list(group.subscription.drain())
            if events:
                pending.append((key, group, events))
        touched: dict[asyncio.StreamWriter, _Broadcast] = {}
        for group, frames in await self._encode_groups(pending):
            for frame in frames:
                for writer in list(group.writers):
                    if writer.transport.is_closing():
                        self._drop_writer(group, writer)
                        continue
                    if writer.transport.get_write_buffer_size() > self.max_buffered_bytes:
                        self.counters["evicted"] += 1
                        self._drop_writer(group, writer)
                        continue
                    writer.write(frame)
                    touched[writer] = group
                    delivered += 1
        self.counters["deliveries"] += delivered
        for writer, group in touched.items():
            try:
                await asyncio.wait_for(writer.drain(), self.drain_timeout)
            except asyncio.TimeoutError:
                # the consumer pinned the transport's high-water mark for a
                # whole drain window without reading anything: evict it
                # rather than let it stall every future commit
                self.counters["evicted"] += 1
                self._drop_writer(group, writer)
            except (ConnectionError, OSError):
                pass  # the reader task will reap the dead socket
        return delivered


# ---------------------------------------------------------------------------
# A thread harness for synchronous callers (tests, examples, benchmarks).
# ---------------------------------------------------------------------------


class NetServerThread:
    """Run a :class:`NetServer` on a dedicated event-loop thread.

    The synchronous mirror of ``async with``: :meth:`start` blocks until the
    port is bound and returns ``(host, port)``; :meth:`stop` shuts the server
    down and joins the thread.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        server_factory: Callable[..., NetServer] | None = None,
        **kwargs: Any,
    ) -> None:
        self._host = host
        self._port = port
        self._factory = server_factory or NetServer
        self._kwargs = kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._failure: BaseException | None = None
        self.server: NetServer | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-net")
        self._thread.start()
        self._started.wait()
        if self._failure is not None:
            raise self._failure
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = self._factory(**self._kwargs)

        async def _boot() -> None:
            # _failure must be recorded before _started is set, or start()
            # can observe the event before the exception reaches _run's
            # handler and report a failed boot as success
            try:
                self.address = await self.server.start(self._host, self._port)
            except BaseException as error:
                self._failure = error
                raise
            finally:
                self._started.set()

        try:
            loop.run_until_complete(_boot())
            loop.run_forever()
        except BaseException as error:  # pragma: no cover - boot failures
            self._failure = error
            self._started.set()
        finally:
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        async def _halt() -> None:
            await self.server.stop()
            loop.stop()

        asyncio.run_coroutine_threadsafe(_halt(), loop)
        thread.join(timeout=10)
        self._loop = self._thread = None

    def __enter__(self) -> "NetServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
