"""repro.serve.net -- the network tier and its durable write-ahead log.

Three layers, all standard-library only:

- :mod:`repro.serve.net.protocol` -- minimal HTTP/1.1 + WebSocket framing.
- :mod:`repro.serve.net.wal` -- append-only delta log with snapshot
  compaction and exact crash recovery beneath ``SourceHandle``.
- :mod:`repro.serve.net.app` -- :class:`NetServer`, the asyncio server
  exposing multi-tenant ViewServer namespaces over HTTP, with streaming
  WebSocket subscriptions that push one wire-encoded EditScript per commit.

:mod:`repro.serve.net.client` has the matching blocking client, and
:mod:`repro.serve.net.shard` scales the whole tier horizontally: a
:class:`ShardCluster` of worker processes behind one :class:`ShardRouter`
front door, with WAL-replay namespace handoff.
"""

from repro.serve.net.app import NetServer, NetServerThread, default_catalog
from repro.serve.net.client import AsyncSubscriber, NetClient, NetClientError, edits_of
from repro.serve.net.protocol import ProtocolError
from repro.serve.net.shard import (
    DEFAULT_CATALOG_REF,
    ShardCluster,
    ShardError,
    ShardRouter,
    ShardWorkerServer,
    resolve_catalog,
    shard_for,
)
from repro.serve.net.wal import (
    DeltaLog,
    DurableSource,
    RecoveredState,
    WalError,
    attach_durable,
    recover_source,
    rehome_source,
)

__all__ = [
    "AsyncSubscriber",
    "DEFAULT_CATALOG_REF",
    "DeltaLog",
    "DurableSource",
    "NetClient",
    "NetClientError",
    "NetServer",
    "NetServerThread",
    "ProtocolError",
    "RecoveredState",
    "ShardCluster",
    "ShardError",
    "ShardRouter",
    "ShardWorkerServer",
    "WalError",
    "attach_durable",
    "default_catalog",
    "edits_of",
    "recover_source",
    "rehome_source",
    "resolve_catalog",
    "shard_for",
]
