"""A minimal HTTP/1.1 + WebSocket (RFC 6455) layer on asyncio streams.

Only what the network tier needs, built purely on the standard library:
request parsing with ``Content-Length`` bodies and keep-alive, response
rendering, the WebSocket upgrade handshake, and frame encode/decode with
fragmentation, masking and ping/pong/close control frames.

Server-to-client frames are deliberately built by a free function
(:func:`ws_text_frame`) so the broadcast path can encode a message **once**
and write the identical bytes to every subscriber -- the per-subscriber cost
of a fan-out is one socket write, nothing else.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Upper bound on a request body.
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Upper bound on a single WebSocket message (after reassembly).
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

#: The stream buffer limit servers should pass to ``asyncio.start_server``.
STREAM_LIMIT = max(MAX_HEAD_BYTES * 2, 1 << 20)

#: RFC 6455 magic GUID for the accept-key digest.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes.
OP_CONT, OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG = 0x0, 0x1, 0x2, 0x8, 0x9, 0xA

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    426: "Upgrade Required",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """Raised when a peer violates the HTTP or WebSocket framing rules."""


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "target", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.target = target
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.query: dict[str, str] = dict(parse_qsl(parts.query, keep_blank_values=True))
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The request body parsed as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"malformed JSON body: {error}") from None

    @property
    def wants_upgrade(self) -> bool:
        """True for a WebSocket upgrade request."""
        connection = self.headers.get("connection", "").lower()
        return (
            self.headers.get("upgrade", "").lower() == "websocket"
            and "upgrade" in connection
        )

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "").lower() != "close"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Request({self.method} {self.target})"


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read one request; ``None`` when the peer closed between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head exceeds the size limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head exceeds the size limit")
    try:
        request_line, *header_lines = head[:-4].decode("latin-1").split("\r\n")
        method, target, http_version = request_line.split(" ", 2)
    except ValueError:
        raise ProtocolError("malformed request line") from None
    if not http_version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {http_version!r}")
    headers: dict[str, str] = {}
    for line in header_lines:
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(f"malformed Content-Length {length!r}") from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length {size}")
        body = await reader.readexactly(size)
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked request bodies are not supported")
    return Request(method.upper(), target, headers, body)


def render_request(
    method: str,
    target: str,
    headers: Mapping[str, str] | None = None,
    body: bytes = b"",
    *,
    strip_connection: bool = True,
) -> bytes:
    """Render a complete HTTP/1.1 request (the shard router's proxy side).

    ``Content-Length`` is recomputed from ``body``.  ``strip_connection``
    drops the hop-by-hop ``Connection`` header so the router manages its own
    upstream keep-alive regardless of what the client asked for; WebSocket
    tunnels pass ``strip_connection=False`` to forward the upgrade intact.
    """
    lines = [f"{method} {target} HTTP/1.1"]
    fixed = {"content-length"}
    if strip_connection:
        fixed.add("connection")
    for name, value in (headers or {}).items():
        if name.lower() not in fixed:
            lines.append(f"{name}: {value}")
    if body:
        lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Read one HTTP/1.1 response: ``(status, lowercased headers, body)``.

    Only what the proxy needs: ``Content-Length`` bodies (our servers always
    send one) and empty 204/304 bodies.  Chunked responses are rejected.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        raise ProtocolError("upstream closed mid-response") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("response head exceeds the size limit") from None
    try:
        status_line, *header_lines = head[:-4].decode("latin-1").split("\r\n")
        version, status_text, _ = status_line.split(" ", 2)
        status = int(status_text)
    except ValueError:
        raise ProtocolError(f"malformed status line {head[:64]!r}") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in header_lines:
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise ProtocolError("chunked response bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(f"malformed Content-Length {length!r}") from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length {size}")
        body = await reader.readexactly(size)
    return status, headers, body


def render_response(
    status: int,
    body: bytes = b"",
    headers: Mapping[str, str] | None = None,
    *,
    content_type: str = "application/json",
) -> bytes:
    """Render a complete HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    fixed = {"content-length", "content-type"}
    for name, value in (headers or {}).items():
        if name.lower() not in fixed:
            lines.append(f"{name}: {value}")
    if body or status not in (204, 304):
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(status: int, payload: Any, headers: Mapping[str, str] | None = None) -> bytes:
    """Render a JSON response (canonical key order for cacheable bytes)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return render_response(status, body, headers)


# ---------------------------------------------------------------------------
# WebSocket framing.
# ---------------------------------------------------------------------------


def ws_accept_key(key: str) -> str:
    """The Sec-WebSocket-Accept digest for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_handshake_response(request: Request) -> bytes:
    """The 101 response completing a WebSocket upgrade."""
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise ProtocolError("upgrade request lacks Sec-WebSocket-Key")
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {ws_accept_key(key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def ws_frame(payload: bytes, opcode: int = OP_TEXT, *, mask: bool = False) -> bytes:
    """Encode one complete (FIN) WebSocket frame.

    Servers send unmasked frames; clients must mask (``mask=True`` draws a
    fresh masking key from ``os.urandom``).
    """
    length = len(payload)
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + key + masked


def ws_text_frame(text: str | bytes) -> bytes:
    """A FIN text frame, encoded once for broadcast to many subscribers."""
    payload = text.encode("utf-8") if isinstance(text, str) else text
    return ws_frame(payload, OP_TEXT)


async def read_ws_frame(reader: asyncio.StreamReader) -> tuple[bool, int, bytes]:
    """Read one raw frame: ``(fin, opcode, unmasked payload)``."""
    head = await reader.readexactly(2)
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the message limit")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return fin, opcode, payload


async def read_ws_message(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one complete message, reassembling continuation frames.

    Control frames (ping/pong/close) are returned as-is -- they may not be
    fragmented, and interleaving them inside a fragmented data message is
    the caller's (event loop's) business to answer.
    """
    opcode = None
    parts: list[bytes] = []
    total = 0
    while True:
        fin, frame_opcode, payload = await read_ws_frame(reader)
        if frame_opcode in (OP_CLOSE, OP_PING, OP_PONG):
            if not fin:
                raise ProtocolError("fragmented control frame")
            return frame_opcode, payload
        if frame_opcode != OP_CONT:
            opcode = frame_opcode
            parts = []
            total = 0
        elif opcode is None:
            raise ProtocolError("continuation frame without a start frame")
        parts.append(payload)
        total += len(payload)
        if total > MAX_MESSAGE_BYTES:
            raise ProtocolError("message exceeds the size limit")
        if fin:
            return opcode, b"".join(parts)
