"""``repro.serve.shard``: a sharded multi-process serving cluster.

One front-door :class:`ShardRouter` owns the client-facing socket and routes
every namespace to the shard worker process that owns it; each worker is a
:class:`ShardWorkerServer` -- a full :class:`~repro.serve.net.app.NetServer`
(its own event loop, ViewServer cores, WAL directory) plus the admin routes
that namespace handoff needs.  Clients keep speaking the unchanged HTTP/WS
protocol to one address: REST calls are proxied over pooled keep-alive
upstream connections, WebSocket subscriptions are tunneled byte-for-byte, so
one client socket can watch views living on any shard.

Routing is the crc32 sticky-sharding scheme of :mod:`repro.parallel.pool`:
``shard_for(namespace, shards)`` pins a namespace to a worker, and an
explicit router-table entry overrides it after a rebalance.  What crosses
the process boundary is data only -- wire-encoded instances and deltas on
the client path, catalog *references* on the control path (each worker
instantiates its own catalog from an importable ``module:attr`` string;
nothing executable is ever read from the wire, the same rule as ``POST
/views``).

**Handoff is WAL replay.**  Every worker writes its own WAL subtree
(``<wal_root>/shard-<i>/<ns>/<source>``).  A rebalance freezes the
namespace at the router, asks the old owner to *release* it (close logs,
drop subscribers, report the per-source log directories), asks the new
owner to *adopt* it (``recover_source`` replay, then re-home the log into
its own subtree), flips the routing table and replays the namespace's
recorded view registrations -- publishes are byte-identical before and
after the migration on both backends, because replay is the same code path
that crash recovery already proves exact.  A worker restart is the
degenerate case: the respawned process replays its own subtree and the
router just re-registers views and refreshes the address.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import shutil
import tempfile
import threading
from importlib import import_module
from pathlib import Path
from typing import Any, Mapping
from zlib import crc32

from repro.relational.wire import canonical_json
from repro.serve.net import protocol
from repro.serve.net.app import NetServer, _HttpError
from repro.serve.net.protocol import ProtocolError, Request, json_response, render_response
from repro.serve.net.wal import DeltaLog, recover_source, rehome_source
from repro.serve.stats import merge_cluster_stats

#: The default control-plane catalog reference shipped to workers.
DEFAULT_CATALOG_REF = "repro.serve.net.app:default_catalog"


class ShardError(RuntimeError):
    """Raised when the cluster harness cannot start or drive its workers."""


def shard_for(namespace: str, shards: int) -> int:
    """The default owner of ``namespace`` -- crc32 sticky sharding."""
    return crc32(repr(namespace).encode("utf-8", "backslashreplace")) % max(1, shards)


def resolve_catalog(ref: str) -> dict:
    """Resolve ``"pkg.module:attr"`` into a view catalog dict.

    ``attr`` may be the catalog itself or a zero-argument factory; only the
    *reference* crosses the process boundary, each worker imports and
    instantiates locally.
    """
    module_name, _, attr = ref.partition(":")
    try:
        obj = getattr(import_module(module_name), attr or "default_catalog")
    except (ImportError, AttributeError) as error:
        raise ShardError(f"bad catalog reference {ref!r}: {error}") from error
    catalog = obj() if callable(obj) else obj
    return dict(catalog)


# ---------------------------------------------------------------------------
# The shard worker: a NetServer plus handoff admin routes.
# ---------------------------------------------------------------------------


class ShardWorkerServer(NetServer):
    """One shard's server core: the public API plus ``/v1/admin`` routes.

    The admin surface is what the router's control plane speaks:

    * ``GET  /v1/admin/stats`` -- shard index, owned namespaces, counters;
    * ``POST /v1/admin/ns/{ns}/release`` -- drop the namespace, close its
      logs, report each durable source's log directory for the adopter;
    * ``POST /v1/admin/ns/{ns}/adopt`` -- replay the reported directories
      and re-home them into this worker's own WAL subtree.
    """

    def __init__(self, *args: Any, shard: int = 0, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.shard = shard

    async def _dispatch_extra(self, request: Request, parts: list[str]) -> bytes | None:
        if parts == ["v1", "admin", "stats"] and request.method == "GET":
            return json_response(
                200,
                {
                    "shard": self.shard,
                    "address": list(self.address) if self.address else None,
                    "namespaces": sorted(self._namespaces),
                    "net": dict(self.counters),
                },
            )
        if len(parts) == 5 and parts[:3] == ["v1", "admin", "ns"] and request.method == "POST":
            ns, action = parts[3], parts[4]
            if action == "release":
                return self._release(ns)
            if action == "adopt":
                return self._adopt(ns, request)
        return None

    def _release(self, ns: str) -> bytes:
        """Give up a namespace: report its logs, then drop every trace."""
        vs = self._namespaces.get(ns)
        if vs is None:
            raise _HttpError(404, f"unknown namespace {ns!r}")
        sources = []
        for handle in vs.handles:
            if handle._wal is None:
                raise _HttpError(
                    409, f"source {handle.name!r} is not durable; a handoff would lose it"
                )
            sources.append(
                {
                    "name": handle.name,
                    "version": handle.version,
                    "wal_dir": str(handle._wal.log.directory),
                }
            )
        self.drop_namespace(ns)
        return json_response(200, {"namespace": ns, "sources": sources})

    def _adopt(self, ns: str, request: Request) -> bytes:
        """Replay released log directories and re-home them under this shard."""
        if self._wal_dir is None:
            raise _HttpError(409, "this worker has no wal_dir; it cannot adopt namespaces")
        body = request.json() or {}
        specs = body.get("sources", [])
        if not isinstance(specs, list):
            raise _HttpError(400, "'sources' must be a list of released source specs")
        remove = bool(body.get("remove", True))
        vs = self.namespace(ns, create=True)
        existing = {handle.name for handle in vs.handles}
        adopted = []
        for spec in specs:
            if not isinstance(spec, dict) or not spec.get("wal_dir"):
                raise _HttpError(400, "each source spec needs a 'wal_dir'")
            source_dir = Path(spec["wal_dir"])
            name = spec.get("name") or source_dir.name
            if name in existing:
                continue  # already owned: a restarted worker replayed its own subtree
            log = DeltaLog(source_dir, fsync=self._fsync, segment_records=self._snapshot_every)
            handle = recover_source(vs, log, name=name, snapshot_every=self._snapshot_every)
            target = self._wal_dir / ns / name
            if source_dir.resolve() != target.resolve():
                if target.exists():
                    # Residue of a past ownership of this namespace, fully
                    # superseded by the history just replayed.
                    shutil.rmtree(target)
                rehome_source(
                    handle, target, fsync=self._fsync, snapshot_every=self._snapshot_every
                )
                if remove:
                    shutil.rmtree(source_dir, ignore_errors=True)
            self.counters["recovered_sources"] += 1
            adopted.append({"name": name, "version": handle.version})
        return json_response(200, {"namespace": ns, "sources": adopted})


def _worker_main(
    conn,
    shard_index: int,
    wal_dir: str,
    catalog_ref: str,
    fsync: bool,
    snapshot_every: int,
) -> None:
    """Entry point of one shard worker process.

    Boots a :class:`ShardWorkerServer` on a fresh event loop, reports
    ``("ready", address)`` (or ``("error", message)``) over the pipe, then
    serves until the parent sends anything -- or closes the pipe -- which a
    watcher thread turns into a clean loop stop.
    """
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    server = ShardWorkerServer(
        shard=shard_index,
        catalog=resolve_catalog(catalog_ref),
        wal_dir=wal_dir,
        fsync=fsync,
        snapshot_every=snapshot_every,
    )
    try:
        address = loop.run_until_complete(server.start("127.0.0.1", 0))
    except BaseException as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ready", address))

    def _watch() -> None:
        try:
            conn.recv()
        except (EOFError, OSError):
            pass
        loop.call_soon_threadsafe(loop.stop)

    threading.Thread(target=_watch, daemon=True, name="shard-shutdown").start()
    try:
        loop.run_forever()
        loop.run_until_complete(server.stop())
    finally:
        loop.close()


# ---------------------------------------------------------------------------
# The front door.
# ---------------------------------------------------------------------------


class ShardRouter:
    """The cluster's single client-facing server (see module docstring).

    Owns the routing table (crc32 default + explicit rebalance entries), a
    pool of keep-alive upstream connections per shard, and the recorded view
    registrations per namespace (pure catalog data, replayed onto whichever
    worker owns the namespace after a handoff or restart).
    """

    def __init__(self, shards: list[tuple[str, int]]) -> None:
        if not shards:
            raise ShardError("a router needs at least one shard address")
        self._shards = [tuple(address) for address in shards]
        self._table: dict[str, int] = {}
        self._moving: dict[str, asyncio.Event] = {}
        #: ns -> {view name -> registration body}; what a new owner replays.
        self._registrations: dict[str, dict[str, dict]] = {}
        self._free: dict[int, list] = {index: [] for index in range(len(self._shards))}
        self._asyncio_server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.address: tuple[str, int] | None = None
        self.counters = {
            "requests": 0,
            "proxied": 0,
            "tunnels": 0,
            "rebalances": 0,
            "retries": 0,
        }

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def owner(self, namespace: str) -> int:
        """The shard currently owning ``namespace``."""
        return self._table.get(namespace, shard_for(namespace, len(self._shards)))

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host, port, limit=protocol.STREAM_LIMIT
        )
        sockname = self._asyncio_server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        pending = [
            task for task in self._conn_tasks if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for pool in self._free.values():
            for _, writer in pool:
                writer.close()
            pool.clear()

    async def replace_shard(self, index: int, address: tuple[str, int]) -> None:
        """Point shard ``index`` at a restarted worker and restore its views.

        The new process already replayed its own WAL subtree on boot; what
        it cannot recover by itself are view registrations (views are code
        instantiated from the catalog, never persisted), so the router
        replays the recorded registrations of every namespace it owns.
        """
        self._shards[index] = tuple(address)
        for _, writer in self._free[index]:
            writer.close()
        self._free[index] = []
        for ns, registrations in self._registrations.items():
            if self.owner(ns) != index:
                continue
            for body in registrations.values():
                try:
                    await self._upstream(
                        index,
                        "POST",
                        f"/v1/ns/{ns}/views",
                        {"Content-Type": "application/json"},
                        canonical_json(body).encode("utf-8"),
                    )
                except _HttpError:  # pragma: no cover - best effort
                    pass

    # -- upstream plumbing ---------------------------------------------------

    async def _acquire(self, shard: int):
        """A pooled (reader, writer) to ``shard``; ``fresh`` tags new sockets."""
        pool = self._free[shard]
        while pool:
            connection = pool.pop()
            if not connection[1].is_closing():
                return connection, False
            connection[1].close()
        host, port = self._shards[shard]
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
        except OSError:
            raise _HttpError(502, f"shard {shard} at {host}:{port} is unreachable") from None
        return (reader, writer), True

    async def _upstream(
        self,
        shard: int,
        method: str,
        target: str,
        headers: Mapping[str, str] | None,
        body: bytes,
    ) -> tuple[int, dict[str, str], bytes]:
        """One proxied exchange with ``shard``, retried once on a stale socket."""
        data = protocol.render_request(method, target, headers, body)
        for attempt in (1, 2):
            connection, fresh = await self._acquire(shard)
            reader, writer = connection
            try:
                writer.write(data)
                await writer.drain()
                response = await protocol.read_response(reader)
            except (ConnectionError, OSError, ProtocolError, asyncio.IncompleteReadError):
                writer.close()
                if fresh or attempt == 2:
                    raise _HttpError(502, f"shard {shard} is unreachable") from None
                self.counters["retries"] += 1
                continue
            status, response_headers, response_body = response
            if response_headers.get("connection", "").lower() == "close":
                writer.close()
            else:
                self._free[shard].append(connection)
            return status, response_headers, response_body
        raise AssertionError("unreachable")  # pragma: no cover

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except ProtocolError as error:
                    writer.write(json_response(400, {"error": str(error)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                if request.wants_upgrade:
                    await self._tunnel(request, reader, writer)
                    return  # the socket is a tunnel until either side dies
                try:
                    response = await self._route(request)
                except _HttpError as error:
                    response = json_response(error.status, {"error": str(error)})
                except Exception as error:  # pragma: no cover - last resort
                    response = json_response(
                        502, {"error": f"{type(error).__name__}: {error}"}
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:  # router shutdown
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy close
                pass

    async def _route(self, request: Request) -> bytes:
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"]:
            if request.method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return json_response(
                200, {"ok": True, "router": True, "shards": len(self._shards)}
            )
        if len(parts) >= 2 and parts[:2] == ["v1", "cluster"]:
            if parts == ["v1", "cluster", "stats"] and request.method == "GET":
                return await self._cluster_stats()
            if parts == ["v1", "cluster", "rebalance"] and request.method == "POST":
                return await self._rebalance(request)
            raise _HttpError(404, f"no cluster route for {request.method} {request.path}")
        if len(parts) >= 3 and parts[:2] == ["v1", "ns"]:
            return await self._proxy_namespace(parts[2], request)
        raise _HttpError(404, f"no route for {request.method} {request.path}")

    async def _proxy_namespace(self, ns: str, request: Request) -> bytes:
        while True:
            moving = self._moving.get(ns)
            if moving is None:
                break
            await moving.wait()  # a migration is flipping this namespace
        shard = self.owner(ns)
        status, headers, body = await self._upstream(
            shard, request.method, request.target, request.headers, request.body
        )
        self.counters["proxied"] += 1
        if (
            status == 201
            and request.method == "POST"
            and request.path.rstrip("/").endswith(f"/ns/{ns}/views")
        ):
            # Remember the registration (pure catalog data) so a future
            # owner of this namespace can be given the same views.
            registration = request.json() or {}
            name = registration.get("name")
            if isinstance(name, str) and name:
                self._registrations.setdefault(ns, {})[name] = registration
        forward = {
            header: value for header, value in headers.items() if header != "connection"
        }
        return render_response(
            status,
            body,
            forward,
            content_type=headers.get("content-type", "application/json"),
        )

    async def _tunnel(
        self, request: Request, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Forward a WebSocket upgrade and pump bytes both ways until EOF."""
        parts = [part for part in request.path.split("/") if part]
        if len(parts) < 3 or parts[:2] != ["v1", "ns"]:
            writer.write(
                json_response(404, {"error": f"no WebSocket route for {request.path}"})
            )
            await writer.drain()
            return
        ns = parts[2]
        while True:
            moving = self._moving.get(ns)
            if moving is None:
                break
            await moving.wait()
        shard = self.owner(ns)
        host, port = self._shards[shard]
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
        except OSError:
            writer.write(json_response(502, {"error": f"shard {shard} is unreachable"}))
            await writer.drain()
            return
        upstream_writer.write(
            protocol.render_request(
                "GET", request.target, request.headers, request.body,
                strip_connection=False,
            )
        )
        await upstream_writer.drain()
        self.counters["tunnels"] += 1

        async def pump(source: asyncio.StreamReader, sink: asyncio.StreamWriter) -> None:
            try:
                while True:
                    chunk = await source.read(65536)
                    if not chunk:
                        break
                    sink.write(chunk)
                    await sink.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                sink.close()

        await asyncio.gather(
            pump(reader, upstream_writer),
            pump(upstream_reader, writer),
            return_exceptions=True,
        )

    # -- cluster control -----------------------------------------------------

    async def _cluster_stats(self) -> bytes:
        payloads = []
        for shard in range(len(self._shards)):
            try:
                status, _, body = await self._upstream(
                    shard, "GET", "/v1/admin/stats", None, b""
                )
            except _HttpError:
                continue  # an unreachable shard is simply absent from the report
            if status == 200:
                payloads.append(json.loads(body))
        known = set(self._table) | set(self._registrations)
        for payload in payloads:
            known.update(payload.get("namespaces") or ())
        table = {ns: self.owner(ns) for ns in sorted(known)}
        merged = merge_cluster_stats(payloads, table, dict(self.counters))
        return json_response(200, merged.as_dict())

    async def _rebalance(self, request: Request) -> bytes:
        body = request.json() or {}
        ns = body.get("namespace")
        if not isinstance(ns, str) or not ns:
            raise _HttpError(400, "rebalance needs a 'namespace'")
        target = body.get("shard")
        if not isinstance(target, int) or isinstance(target, bool) or not (
            0 <= target < len(self._shards)
        ):
            raise _HttpError(
                400, f"'shard' must be an integer in [0, {len(self._shards)})"
            )
        current = self.owner(ns)
        if current == target:
            return json_response(
                200, {"namespace": ns, "shard": target, "moved": False, "sources": []}
            )
        if ns in self._moving:
            raise _HttpError(409, f"namespace {ns!r} is already migrating")
        moving = asyncio.Event()
        self._moving[ns] = moving
        try:
            status, _, released = await self._upstream(
                current, "POST", f"/v1/admin/ns/{ns}/release", None, b""
            )
            if status == 404:
                sources: list = []  # never materialized on its old owner: just flip
            elif status != 200:
                raise _HttpError(
                    409 if status == 409 else 502,
                    f"shard {current} refused to release {ns!r}: "
                    f"{released.decode('utf-8', 'replace')}",
                )
            else:
                sources = json.loads(released).get("sources", [])
            payload = canonical_json({"sources": sources}).encode("utf-8")
            status, _, adopted = await self._upstream(
                target,
                "POST",
                f"/v1/admin/ns/{ns}/adopt",
                {"Content-Type": "application/json"},
                payload,
            )
            if status != 200:
                # Do not orphan the namespace: hand its logs back to the
                # old owner before reporting the failure.
                try:
                    await self._upstream(
                        current,
                        "POST",
                        f"/v1/admin/ns/{ns}/adopt",
                        {"Content-Type": "application/json"},
                        payload,
                    )
                except _HttpError:  # pragma: no cover - best effort
                    pass
                raise _HttpError(
                    502,
                    f"shard {target} failed to adopt {ns!r}: "
                    f"{adopted.decode('utf-8', 'replace')}",
                )
            self._table[ns] = target
            for registration in self._registrations.get(ns, {}).values():
                await self._upstream(
                    target,
                    "POST",
                    f"/v1/ns/{ns}/views",
                    {"Content-Type": "application/json"},
                    canonical_json(registration).encode("utf-8"),
                )
            self.counters["rebalances"] += 1
            return json_response(
                200,
                {
                    "namespace": ns,
                    "shard": target,
                    "moved": True,
                    "sources": json.loads(adopted).get("sources", []),
                },
            )
        finally:
            del self._moving[ns]
            moving.set()


# ---------------------------------------------------------------------------
# The synchronous cluster harness.
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """One spawned shard worker process and its control pipe."""

    __slots__ = ("index", "process", "conn", "address")

    def __init__(self, index: int, process, conn, address: tuple[str, int]) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.address = address


class ShardCluster:
    """Spawn N shard workers plus the front-door router; a context manager.

    The synchronous mirror of the whole topology, for tests, benchmarks and
    examples: :meth:`start` blocks until every worker reports ready and the
    router is bound, and returns the router's ``(host, port)`` -- point a
    plain :class:`~repro.serve.net.client.NetClient` at it and the cluster
    is indistinguishable from one server.  Without an explicit ``wal_root``
    a temporary directory is created and removed on :meth:`stop`.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        wal_root: str | Path | None = None,
        catalog_ref: str = DEFAULT_CATALOG_REF,
        fsync: bool = False,
        snapshot_every: int = 256,
        host: str = "127.0.0.1",
        port: int = 0,
        start_method: str | None = None,
    ) -> None:
        if shards < 1:
            raise ShardError("a cluster needs at least one shard")
        self.shard_count = shards
        self._host = host
        self._port = port
        self._catalog_ref = catalog_ref
        self._fsync = fsync
        self._snapshot_every = snapshot_every
        self._wal_root = Path(wal_root) if wal_root is not None else None
        self._own_wal_root = wal_root is None
        self._start_method = start_method
        self._workers: list[_WorkerHandle] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.router: ShardRouter | None = None
        self.address: tuple[str, int] | None = None

    @property
    def wal_root(self) -> Path | None:
        return self._wal_root

    def start(self) -> tuple[str, int]:
        if self._workers:
            raise ShardError("the cluster is already running")
        if self._wal_root is None:
            self._wal_root = Path(tempfile.mkdtemp(prefix="repro-shard-"))
        method = self._start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._context = mp.get_context(method)
        for index in range(self.shard_count):
            self._spawn(index)
        self.router = ShardRouter([worker.address for worker in self._workers])

        started = threading.Event()
        failures: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def _boot() -> None:
                try:
                    self.address = await self.router.start(self._host, self._port)
                finally:
                    started.set()

            try:
                loop.run_until_complete(_boot())
                loop.run_forever()
            except BaseException as error:  # pragma: no cover - boot failures
                failures.append(error)
                started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, daemon=True, name="repro-shard-router"
        )
        self._thread.start()
        started.wait()
        if failures:
            self.stop()
            raise failures[0]
        return self.address

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        wal_dir = self._wal_root / f"shard-{index}"
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                index,
                str(wal_dir),
                self._catalog_ref,
                self._fsync,
                self._snapshot_every,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(30):
            process.terminate()
            raise ShardError(f"shard worker {index} did not report within 30s")
        try:
            kind, payload = parent_conn.recv()
        except EOFError:
            raise ShardError(f"shard worker {index} died during startup") from None
        if kind != "ready":
            process.join(timeout=5)
            raise ShardError(f"shard worker {index} failed to start: {payload}")
        handle = _WorkerHandle(index, process, parent_conn, tuple(payload))
        if index < len(self._workers):
            self._workers[index] = handle
        else:
            self._workers.append(handle)

    def restart_worker(self, index: int, *, kill: bool = False) -> tuple[str, int]:
        """Stop worker ``index`` and respawn it over the same WAL subtree.

        ``kill=True`` terminates the process without a clean shutdown (the
        crash-recovery path); the respawned worker replays its own logs and
        the router re-registers its views and refreshes the address.
        """
        if not self._workers or self._loop is None:
            raise ShardError("the cluster is not running")
        worker = self._workers[index]
        if kill:
            worker.process.terminate()
        else:
            try:
                worker.conn.send("stop")
            except (BrokenPipeError, OSError):  # pragma: no cover - already dead
                pass
        worker.process.join(timeout=10)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=10)
        worker.conn.close()
        self._spawn(index)
        address = self._workers[index].address
        future = asyncio.run_coroutine_threadsafe(
            self.router.replace_shard(index, address), self._loop
        )
        future.result(timeout=30)
        return address

    def client(self, namespace: str = "default", **kwargs: Any):
        """A :class:`NetClient` speaking to the cluster's front door."""
        from repro.serve.net.client import NetClient

        if self.address is None:
            raise ShardError("the cluster is not running")
        return NetClient(*self.address, namespace=namespace, **kwargs)

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and self.router is not None:
            router = self.router

            async def _halt() -> None:
                await router.stop()
                loop.stop()

            try:
                asyncio.run_coroutine_threadsafe(_halt(), loop)
                thread.join(timeout=10)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._loop = self._thread = None
        for worker in self._workers:
            try:
                worker.conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=10)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.conn.close()
        self._workers = []
        if self._own_wal_root and self._wal_root is not None:
            shutil.rmtree(self._wal_root, ignore_errors=True)
            self._wal_root = None

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
