"""The :class:`ViewServer`: one front door to the whole publishing stack.

The paper's transducers are *views*: a relational source publishes an XML
tree, and every question the paper asks (membership, emptiness, equivalence)
is a question about named, long-lived views.  After PRs 1-4 the repo exposed
that idea through four divergent entry-point families -- the
``publish``/``publish_many``/``publish_events``/``publish_xml`` method zoo,
``PublishingPlan.republish``, ``IncrementalPublisher`` and the per-language
front-ends -- with mode flags scattered across constructors.  This module
replaces them with a persistent serving surface, in the spirit of streaming
tree transducers (a machine consuming source updates and emitting output
streams, not a one-shot function call):

* :meth:`ViewServer.register_view` accepts any front-end -- a
  :class:`~repro.core.transducer.PublishingTransducer`, a
  :class:`~repro.engine.builder.TransducerBuilder`, a compiled
  :class:`~repro.engine.plan.PublishingPlan`, any language view of
  :mod:`repro.languages` (ATG, DAD, FOR XML, DBMS_XMLGEN, TreeQL, XPERANTO,
  ...), or a factory callable for parameterized views -- and compiles it
  once into the server's shared plan cache;
* :meth:`ViewServer.attach` returns a versioned :class:`SourceHandle` with
  MVCC-style snapshots: :meth:`SourceHandle.commit` produces a new immutable
  :class:`SourceVersion` (backed by the identity-sharing
  :meth:`~repro.relational.instance.Instance.apply_delta` and the cached
  columnar encodings) while older versions stay readable, so concurrent
  readers always see a consistent snapshot;
* :meth:`ViewServer.publish` is the single evaluation call, routing
  ``output=tree|events|bytes|compact``, ``backend=auto|row|columnar`` and
  ``maintenance=auto|full|incremental`` onto the engine's core drivers
  (``publish`` / ``publish_events`` / ``republish`` / encoded execution);
* :meth:`ViewServer.subscribe` yields one
  :class:`~repro.xmltree.diff.EditScript` per commit, maintained
  incrementally instead of re-published and diffed;
* views may declare bind parameters; a binding compiles the view with the
  parameters substituted as query constants, which the shared planner pushes
  into its indexed scans (prepared-statement style).

Every output mode is byte-identical to the legacy paths: ``output="bytes"``
matches ``publish_xml``, ``output="tree"`` matches ``publish``, maintained
trees always equal a from-scratch publish of the same version.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.runtime import DEFAULT_MAX_NODES
from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.engine.plan import Engine, PublishingPlan, RepublishResult
from repro.relational.delta import Delta
from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.serve.oneshot import compact_tree, serialize_tree
from repro.xmltree.diff import EditScript, diff_trees
from repro.xmltree.events import tree_to_events
from repro.xmltree.tree import TreeNode

#: Recognised values of the ``output=`` routing axis ("xml" aliases "bytes").
OUTPUTS = ("tree", "events", "bytes", "compact")

#: The internally accepted output values (the alias included).
_OUTPUTS_WITH_ALIAS = OUTPUTS + ("xml",)

#: Recognised values of the ``backend=`` routing axis.
BACKENDS = ("auto", "row", "columnar")

#: Recognised values of the ``maintenance=`` routing axis.
MAINTENANCE = ("auto", "full", "incremental")

#: Recognised values of the ``typecheck=`` registration axis.
TYPECHECK_MODES = ("static", "runtime", "off")

#: A parameter binding frozen into a cache key.
BindingKey = tuple[tuple[str, DataValue], ...]


class ServeError(ValueError):
    """Raised when the serving API is used inconsistently."""


class ViewRejected(ServeError):
    """Registration refused: the static typecheck *refuted* the view.

    Raised by :meth:`ViewServer.register_view` (or by the first compile of a
    parameterized binding) when ``output_dtd`` was given, ``typecheck`` is
    ``"static"`` and :func:`repro.typecheck.typecheck_plan` found a concrete
    counterexample.  ``result`` is the full
    :class:`~repro.typecheck.TypecheckResult`; its ``witness`` is a source
    instance that *replays*: publishing it through the rejected view
    produces a document violating the DTD at ``result.violation``.
    """

    def __init__(self, name: str, result) -> None:
        self.view = name
        self.result = result
        super().__init__(f"view {name!r} rejected: {result.describe()}")


def _checked(value: str, allowed: tuple[str, ...], axis: str) -> str:
    if value not in allowed:
        raise ServeError(f"unknown {axis} {value!r}; expected one of {allowed}")
    return value


# ---------------------------------------------------------------------------
# Versioned sources.
# ---------------------------------------------------------------------------


class PruneResult(tuple):
    """The version indices dropped by :meth:`SourceHandle.prune`, oldest first.

    A tuple of the pruned indices, so the write-ahead-log compactor and
    lagging subscribers can react to exactly the versions that went away.
    For the callers that only ever wanted the count, it still compares equal
    to that integer and converts via ``int()`` / :attr:`count`.
    """

    __slots__ = ()

    @property
    def indices(self) -> tuple[int, ...]:
        """The pruned version indices as a plain tuple."""
        return tuple(self)

    @property
    def count(self) -> int:
        """How many versions were pruned (the legacy return value)."""
        return len(self)

    def __int__(self) -> int:
        return len(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, bool):  # bool before int: True must not mean 1
            return NotImplemented
        if isinstance(other, int):
            return len(self) == other
        return tuple.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # Tuple hashing is kept (equal-to-int is a legacy-compat affordance, not
    # an identity: prune results are not meant to be dict keys next to ints).
    __hash__ = tuple.__hash__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PruneResult(count={len(self)}, indices={tuple(self)!r})"


class SourceVersion:
    """One immutable version of an attached source (an MVCC snapshot).

    ``instance`` is the canonical instance of the version; ``delta`` is the
    normalized delta from the parent version (empty for version 0).  Because
    instances are immutable and :meth:`Instance.apply_delta` shares every
    untouched relation object by identity, holding many versions costs only
    the touched relations -- old versions stay readable forever, and a
    reader pinned to version ``N`` is provably unaffected by commit
    ``N + 1``.  Backend twins (the same data pinned to the row or columnar
    representation) are derived lazily per version and cached.
    """

    __slots__ = ("handle", "index", "instance", "delta", "_row", "_columnar")

    def __init__(
        self, handle: "SourceHandle", index: int, instance: Instance, delta: Delta
    ) -> None:
        self.handle = handle
        self.index = index
        self.instance = instance
        self.delta = delta
        self._row: Instance | None = None
        self._columnar: Instance | None = None

    def instance_for(self, backend: str = "auto") -> Instance:
        """The version's instance pinned to a backend (see :class:`SourceHandle`)."""
        return self.handle._instance_for(self, backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceVersion({self.handle.name!r}, v{self.index})"


class SourceHandle:
    """A versioned source: the write side of the MVCC snapshot chain.

    Obtained from :meth:`ViewServer.attach`.  :meth:`commit` normalizes a
    :class:`~repro.relational.delta.Delta` against the latest version and
    appends a new immutable :class:`SourceVersion`; every previously handed
    out version object keeps reading its own snapshot.  Subscriptions
    registered against this handle are delivered synchronously, in
    registration order, before :meth:`commit` returns.
    """

    def __init__(
        self,
        server: "ViewServer",
        name: str,
        instance: Instance,
        base_version: int = 0,
    ) -> None:
        self._server = server
        self._name = name
        self._versions: list[SourceVersion] = [
            SourceVersion(self, base_version, instance, Delta())
        ]
        self._subscriptions: list[Subscription] = []
        self._twin_encoder = None  # shared by the whole columnar-twin lineage
        self._lock = threading.Lock()
        self._commits = 0
        # Optional durability sink (repro.serve.net.wal): when armed, every
        # commit's normalized delta is appended -- and flushed -- *before*
        # the new version becomes visible (write-ahead ordering).
        self._wal = None

    # -- reading -------------------------------------------------------------

    @property
    def name(self) -> str:
        """The handle's name (unique within its server)."""
        return self._name

    @property
    def version(self) -> int:
        """The index of the latest committed version."""
        return self._versions[-1].index

    @property
    def latest(self) -> SourceVersion:
        """The latest committed version."""
        return self._versions[-1]

    @property
    def instance(self) -> Instance:
        """The latest version's instance."""
        return self._versions[-1].instance

    @property
    def commits(self) -> int:
        """How many deltas have been committed."""
        return self._commits

    def snapshot(self, version: int | None = None) -> SourceVersion:
        """A consistent read snapshot: the given (default: latest) version.

        Raises :class:`ServeError` for unknown or :meth:`prune`-d version
        numbers (version objects already handed out keep working either
        way -- they own their instance).
        """
        versions = self._versions
        if version is None:
            return versions[-1]
        base = versions[0].index
        if not base <= version <= versions[-1].index:
            pruned = " (older versions pruned)" if base else ""
            raise ServeError(
                f"source {self._name!r} has versions "
                f"{base}..{versions[-1].index}{pruned}, not {version}"
            )
        return versions[version - base]

    def history(self) -> tuple[SourceVersion, ...]:
        """All retained versions, oldest first."""
        return tuple(self._versions)

    def prune(self, keep_last: int = 1) -> PruneResult:
        """Drop all but the newest ``keep_last`` versions.

        Returns a :class:`PruneResult` naming exactly the dropped version
        indices (it still compares equal to the dropped *count*, the legacy
        return value), so the write-ahead-log compactor knows which log
        segments became droppable and subscribers know which snapshots they
        can no longer rewind to.

        The version chain otherwise grows by one snapshot per commit (cheap
        -- untouched relations are shared by identity -- but unbounded).
        Pruning bounds it for long-running delta streams that do not need
        time travel.  Contract: handed-out :class:`SourceVersion` objects
        keep reading their own snapshot; :meth:`snapshot` of a pruned
        number raises; a maintained chain or subscription lagging behind
        the pruned range transparently reseeds itself with one full publish
        (its subscribers receive the corresponding edit script).
        """
        with self._lock:
            keep = max(1, keep_last)
            excess = len(self._versions) - keep
            if excess <= 0:
                return PruneResult()
            dropped = PruneResult(version.index for version in self._versions[:excess])
            self._versions = self._versions[excess:]
            return dropped

    # -- writing -------------------------------------------------------------

    def commit(self, delta: Delta) -> SourceVersion:
        """Apply a delta, append a new version and deliver subscriptions.

        The delta is normalized against the latest version (insertions
        already present and deletions of absent tuples are dropped), so the
        version chain records exactly the effective changes.  Older versions
        are untouched and stay readable.
        """
        with self._lock:
            previous = self._versions[-1]
            delta = delta.normalized(previous.instance)
            if self._wal is not None:
                # Write-ahead: the normalized delta must be durable before
                # the version becomes visible.  A failed append aborts the
                # commit with the chain untouched.
                self._wal.append(previous.index + 1, delta)
            instance = previous.instance.apply_delta(delta)
            version = SourceVersion(self, previous.index + 1, instance, delta)
            self._versions.append(version)
            self._commits += 1
        # One advance per distinct maintained chain: subscriptions sharing a
        # chain are fanned out from inside its critical section.
        seen: set[int] = set()
        for subscription in tuple(self._subscriptions):
            chain = subscription._maintained
            if id(chain) not in seen:
                seen.add(id(chain))
                chain.advance(version)
        return version

    # -- backend twins -------------------------------------------------------

    def _instance_for(self, version: SourceVersion, backend: str) -> Instance:
        """The version's instance pinned to ``backend``.

        ``auto`` returns the canonical instance (columnar iff the source was
        attached encoded).  ``row`` / ``columnar`` return a value-equal twin
        on the requested representation, derived lazily: the twin of version
        ``k`` is the twin of version ``k - 1`` with the same delta applied,
        so twin lineages share untouched relation objects (and, on the
        columnar side, one append-only encoder) exactly like the canonical
        chain.
        """
        _checked(backend, BACKENDS, "backend")
        if backend == "auto":
            return version.instance
        if backend == "row":
            if not version.instance.is_encoded:
                return version.instance
            attr = "_row"
        else:
            if version.instance.is_encoded:
                return version.instance
            attr = "_columnar"
        cached = getattr(version, attr)
        if cached is not None:
            return cached
        # Walk back to the nearest version with a cached twin (or the oldest
        # reachable one), then replay the deltas forward, caching every step.
        # Under the handle lock: two concurrent derivations must not each
        # mint a fresh encoder for the columnar lineage -- twins of one
        # handle share one append-only dictionary, or encoded registers from
        # different versions stop being comparable.
        with self._lock:
            cached = getattr(version, attr)
            if cached is not None:
                return cached
            chain: list[SourceVersion] = []
            cursor = version
            while getattr(cursor, attr) is None:
                parent = self._parent_of(cursor)
                if parent is None:
                    break
                chain.append(cursor)
                cursor = parent
            twin = getattr(cursor, attr)
            if twin is None:  # the chain root (or a pruned-off snapshot)
                twin = self._fresh_twin(cursor.instance, backend)
                setattr(cursor, attr, twin)
            for step in reversed(chain):
                twin = twin.apply_delta(step.delta)
                setattr(step, attr, twin)
            return twin

    def _parent_of(self, version: SourceVersion) -> SourceVersion | None:
        """The retained predecessor of ``version``, or ``None`` if pruned."""
        versions = self._versions
        base = versions[0].index
        index = version.index - 1
        if index < base or index > versions[-1].index:
            return None
        return versions[index - base]

    def _fresh_twin(self, instance: Instance, backend: str) -> Instance:
        if backend == "row":
            return instance.without_encoding()
        from repro.relational.columnar import encoded_twin

        twin = encoded_twin(instance, self._twin_encoder)
        if self._twin_encoder is None:
            from repro.relational.columnar import encoding_of

            self._twin_encoder = encoding_of(twin)
        return twin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceHandle({self._name!r}, version={self.version})"


# ---------------------------------------------------------------------------
# Registered views.
# ---------------------------------------------------------------------------


class RegisteredView:
    """One named view: a front-end compiled (per parameter binding) once.

    Created by :meth:`ViewServer.register_view`.  ``params`` names the
    view's bind parameters; each distinct binding compiles the view with the
    bound constants substituted into its queries, which the shared planner
    then pushes into its indexed scans -- the prepared-statement discipline,
    with the compiled plan cached per binding.
    """

    def __init__(
        self,
        server: "ViewServer",
        name: str,
        source,
        language: str | None,
        params: tuple[str, ...],
        schema: RelationalSchema | None,
        max_nodes: int | None,
        output_dtd=None,
        typecheck: str = "static",
    ) -> None:
        self._server = server
        self._name = name
        self._source = source
        self._language = language
        self._params = params
        self._schema = schema
        self._max_nodes = max_nodes
        self._output_dtd = output_dtd
        self._typecheck = typecheck
        self._verdicts: dict[BindingKey, object] = {}
        # instance -> {plan -> {budgets}} of documents already validated, so
        # steady-state publishes of an unchanged version never re-validate.
        # Both layers are weak: entries die with the version or the plan.
        self._validated_docs = weakref.WeakKeyDictionary()
        self._validation_hot: tuple | None = None
        self._plans: dict[BindingKey, PublishingPlan] = {}
        self._plans_lock = threading.Lock()
        self.publishes = 0
        self.last_backend: str | None = None
        self.validated = 0
        self.violations = 0

    @property
    def name(self) -> str:
        """The view's name (unique within its server)."""
        return self._name

    @property
    def params(self) -> tuple[str, ...]:
        """The declared bind-parameter names (empty for plain views)."""
        return self._params

    @property
    def language(self) -> str | None:
        """The source language, detected from the front-end when possible."""
        return self._language

    @property
    def output_dtd(self):
        """The registered target DTD, or ``None`` (no output typechecking)."""
        return self._output_dtd

    @property
    def typecheck_mode(self) -> str:
        """The registered ``typecheck=`` mode (``static``/``runtime``/``off``)."""
        return self._typecheck

    def typecheck_result(self, params: Mapping[str, DataValue] | None = None):
        """The static :class:`~repro.typecheck.TypecheckResult` for a binding.

        ``None`` when no DTD is registered, the mode skips the static check,
        or the binding has not been compiled yet.
        """
        return self._verdicts.get(self.binding_key(params))

    def binding_key(self, params: Mapping[str, DataValue] | None) -> BindingKey:
        """Validate a parameter binding and freeze it into a cache key."""
        given = dict(params or {})
        declared = set(self._params)
        unknown = set(given) - declared
        if unknown:
            raise ServeError(
                f"view {self._name!r} does not declare parameter(s) "
                f"{sorted(unknown)}; declared: {sorted(declared) or 'none'}"
            )
        missing = declared - set(given)
        if missing:
            raise ServeError(
                f"view {self._name!r} needs parameter(s) {sorted(missing)}"
            )
        return tuple(sorted(given.items()))

    #: Cap on compiled plans cached per view, evicted least-recently-used,
    #: so high-cardinality bindings (a plan per user-supplied value) cannot
    #: grow the server without bound; evicted bindings recompile on demand.
    max_bindings = 64

    def plan_for(self, params: Mapping[str, DataValue] | None = None) -> PublishingPlan:
        """The compiled plan for a binding (compiled on first use, LRU-cached)."""
        return self.plan_for_key(self.binding_key(params))

    def plan_for_key(self, key: BindingKey) -> PublishingPlan:
        """:meth:`plan_for` for an already-validated :meth:`binding_key`."""
        with self._plans_lock:
            plan = self._plans.get(key)
            if plan is not None:
                # Reinsert so eviction is least-recently-used, not
                # first-compiled.
                del self._plans[key]
                self._plans[key] = plan
                return plan
        # Compile outside the lock (planning every rule query is the slow
        # part); a concurrent compile of the same binding wastes one plan
        # but cannot corrupt the cache.
        plan = self._compile(key)
        with self._plans_lock:
            winner = self._plans.setdefault(key, plan)
            while len(self._plans) > self.max_bindings:
                del self._plans[next(iter(self._plans))]
            return winner

    @property
    def plans(self) -> tuple[PublishingPlan, ...]:
        """Every plan compiled for this view so far (one per binding)."""
        return tuple(self._plans.values())

    def _compile(self, key: BindingKey) -> PublishingPlan:
        source = self._source
        produced = key or (callable(source) and not self._is_frontend(source))
        if produced:
            if not callable(source):
                raise ServeError(
                    f"view {self._name!r} declares parameters, so its source "
                    f"must be a factory callable, not {type(source).__name__}"
                )
            source = source(**dict(key))
        if isinstance(source, PublishingPlan):
            if self._schema is not None:
                problems = source.transducer.validate_against_schema(self._schema)
                if problems:
                    raise ServeError("; ".join(problems))
            if self._language is None:
                self._language = "compiled plan"
            return self._typechecked(key, source)
        from repro.languages.registry import compile_frontend, frontend_language

        if self._language is None:
            self._language = frontend_language(source)
        transducer = compile_frontend(source)
        # Factory-produced transducers are fresh objects per binding -- they
        # can never be shared across views, so the server-level plan cache
        # (which would pin them forever) is bypassed for them; this view's
        # own LRU-capped binding cache is their only home.
        plan = self._server._compile(
            transducer, self._schema, self._max_nodes, share=not produced
        )
        return self._typechecked(key, plan)

    # -- output typechecking -------------------------------------------------

    def _typechecked(self, key: BindingKey, plan: PublishingPlan) -> PublishingPlan:
        """Run the static output typecheck on a freshly compiled binding.

        ``typecheck="static"`` with a registered DTD classifies the binding
        (the verdict is kept for :meth:`stats`/:meth:`explain` and for the
        runtime-validation decision) and *rejects* refuted bindings: the
        raised :class:`ViewRejected` carries a replayable counterexample
        source.  ``"runtime"`` skips the deploy-time check entirely and
        ``"off"`` disables validation altogether.
        """
        if self._output_dtd is None or self._typecheck != "static":
            return plan
        from repro.typecheck import typecheck_plan

        result = typecheck_plan(plan, self._output_dtd)
        self._verdicts[key] = result
        if result.refuted:
            raise ViewRejected(self._name, result)
        return plan

    def _runtime_validation(self, key: BindingKey) -> bool:
        """Whether publishes of this binding must stream-validate.

        ``False`` for unchecked views and for bindings the static checker
        *proved* (their publishes carry zero validation cost); ``True`` for
        ``typecheck="runtime"`` and for ``UNDECIDED`` static verdicts.
        """
        if self._output_dtd is None or self._typecheck == "off":
            return False
        if self._typecheck == "runtime":
            return True
        result = self._verdicts.get(key)
        return result is None or not result.proved

    def _is_validated(self, plan: PublishingPlan, instance: Instance, budget) -> bool:
        # One-slot hot path: steady-state serving republishes the latest
        # version, so the last-validated triple answers almost every probe
        # without touching the weak memo.  Weak references keep the slot
        # from pinning retired versions in memory.
        hot = self._validation_hot
        if (
            hot is not None
            and hot[2] == budget
            and hot[1]() is instance
            and hot[0]() is plan
        ):
            return True
        plans = self._validated_docs.get(instance)
        if plans is None:
            return False
        budgets = plans.get(plan)
        return budgets is not None and budget in budgets

    def _mark_validated(self, plan: PublishingPlan, instance: Instance, budget) -> None:
        self.validated += 1
        try:
            plans = self._validated_docs.get(instance)
            if plans is None:
                plans = self._validated_docs[instance] = weakref.WeakKeyDictionary()
            plans.setdefault(plan, set()).add(budget)
            self._validation_hot = (weakref.ref(plan), weakref.ref(instance), budget)
        except TypeError:  # pragma: no cover - non-weakrefable artefacts
            pass

    def _ensure_validated(self, plan: PublishingPlan, instance: Instance, budget) -> None:
        """Validate the document of ``(plan, instance, budget)`` once.

        Streams ``publish_events`` through the O(depth) validator -- no tree
        is materialised -- then memoises per version, so repeated publishes
        of an unchanged snapshot (the steady-state serving pattern) skip
        straight to rendering.
        """
        if self._is_validated(plan, instance, budget):
            return
        from repro.typecheck import OutputValidationError, StreamingValidator

        validator = StreamingValidator(self._output_dtd, self._name)
        try:
            validator.validate(plan.publish_events(instance, budget))
        except OutputValidationError:
            self.violations += 1
            raise
        self._mark_validated(plan, instance, budget)

    def _ensure_validated_tree(
        self, plan: PublishingPlan, tree: TreeNode, instance: Instance, budget
    ) -> None:
        """:meth:`_ensure_validated` for a maintained tree (no re-publish).

        The maintained tree is byte-identical to a from-scratch publish of
        its version (the serving stack's core invariant), so validating its
        event replay validates the published document.
        """
        if self._is_validated(plan, instance, budget):
            return
        from repro.typecheck import OutputValidationError, validate_tree

        try:
            validate_tree(tree, self._output_dtd, view=self._name)
        except OutputValidationError:
            self.violations += 1
            raise
        self._mark_validated(plan, instance, budget)

    def _validated_events(self, plan: PublishingPlan, instance: Instance, budget):
        """A validating pass-through for ``output="events"`` publishes.

        Single-pass: the consumer drives the lazy engine driver exactly
        once, every event is checked before it is handed over, and the
        version is marked validated only after the final event passed.
        """
        from repro.typecheck import OutputValidationError, StreamingValidator

        validator = StreamingValidator(self._output_dtd, self._name)
        events = plan.publish_events(instance, budget)
        try:
            for event in events:
                validator.feed(event)
                yield event
            validator.finish()
        except OutputValidationError:
            self.violations += 1
            raise
        self._mark_validated(plan, instance, budget)

    @staticmethod
    def _is_frontend(source) -> bool:
        """Whether ``source`` is itself a view object rather than a factory."""
        return isinstance(
            source, (PublishingTransducer, PublishingPlan, TransducerBuilder)
        ) or hasattr(source, "compile")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegisteredView({self._name!r}, language={self._language!r}, "
            f"params={self._params!r}, bindings={len(self._plans)})"
        )


# ---------------------------------------------------------------------------
# Maintained views and subscriptions.
# ---------------------------------------------------------------------------


class _MaintainedView:
    """A view's (instance, tree) chain maintained along a handle's versions.

    The incremental unit shared by ``maintenance="incremental"`` publishes
    and by subscriptions: one :meth:`PublishingPlan.republish` per committed
    delta, with the per-rule memo invalidation and subtree reuse of the
    engine.  The maintained tree always equals -- tree- and byte-wise -- a
    from-scratch publish of the same version.  :meth:`advance` is serialized
    by a per-chain lock, so concurrent commits (or publishes racing a
    commit) cannot replay the same delta twice.

    One chain is shared per (view, binding, source, backend, budget) key:
    every subscription on the key attaches as a subscriber and receives each
    replayed step from inside the critical section, so a commit costs one
    republish regardless of subscriber count, delivered exactly once and in
    version order no matter who (commit delivery or a racing publish)
    advances the chain first.
    """

    __slots__ = (
        "plan",
        "handle",
        "backend",
        "max_nodes",
        "version",
        "instance",
        "tree",
        "subscribers",
        "_lock",
    )

    def __init__(
        self,
        plan: PublishingPlan,
        handle: SourceHandle,
        version: SourceVersion,
        backend: str,
        max_nodes: int | None,
    ) -> None:
        self.plan = plan
        self.handle = handle
        self.backend = backend
        self.max_nodes = max_nodes
        self.version = version.index
        self.instance = handle._instance_for(version, backend)
        self.tree = plan.publish(self.instance, max_nodes)
        self.subscribers: list[Subscription] = []
        self._lock = threading.Lock()

    def add_subscriber(self, subscription: "Subscription") -> None:
        with self._lock:
            self.subscribers.append(subscription)

    def remove_subscriber(self, subscription: "Subscription") -> None:
        with self._lock:
            try:
                self.subscribers.remove(subscription)
            except ValueError:  # pragma: no cover - already detached
                pass

    def advance(self, target: SourceVersion) -> TreeNode | None:
        """Republish up to ``target`` and return the tree at that version.

        Returns ``None`` when the chain has already moved *past* the
        requested version (a concurrent publish of a newer snapshot) -- the
        caller must then serve the pinned version with a full publish, never
        with this chain's newer tree.  When an intermediate delta has been
        :meth:`SourceHandle.prune`-d away, the chain reseeds itself with one
        full publish of ``target`` and delivers the corresponding document
        diff instead of per-delta scripts.
        """
        with self._lock:
            if self.version > target.index:
                return None
            while self.version < target.index:
                try:
                    step = self.handle.snapshot(self.version + 1)
                except ServeError:
                    # The needed delta was pruned: reseed at the target.
                    previous_instance, previous_tree = self.instance, self.tree
                    self.instance = self.handle._instance_for(target, self.backend)
                    self.tree = self.plan.publish(self.instance, self.max_nodes)
                    self.version = target.index
                    self._fan_out(
                        RepublishResult(
                            self.instance,
                            self.tree,
                            diff_trees(previous_tree, self.tree),
                            previous_instance.diff(self.instance),
                        )
                    )
                    break
                result = self.plan.republish(
                    self.instance,
                    step.delta,
                    prev_tree=self.tree,
                    max_nodes=self.max_nodes,
                )
                self.instance = result.instance
                self.tree = result.tree
                self.version = step.index
                self._fan_out(result)
            return self.tree

    def _fan_out(self, result: RepublishResult) -> None:
        for subscription in self.subscribers:
            subscription._record(result, self.version)


@dataclass(frozen=True)
class SubscriptionEvent:
    """One delivered commit: the version it produced and the document diff.

    ``edits`` replays the subscriber's previous tree into the new one
    (``edits.apply(prev_tree) == tree``); ``result`` carries the underlying
    :class:`~repro.engine.plan.RepublishResult` (delta, invalidation
    counters, the new tree) for consumers that want more than the diff.
    """

    version: int
    edits: EditScript
    result: RepublishResult

    @property
    def tree(self) -> TreeNode:
        """The maintained tree after this commit."""
        return self.result.tree


class Subscription:
    """A push channel delivering one edit script per source commit.

    Created by :meth:`ViewServer.subscribe`.  The subscription maintains its
    own incrementally republished copy of the view; each
    :meth:`SourceHandle.commit` synchronously appends one
    :class:`SubscriptionEvent` (possibly with an empty edit script, when the
    commit provably does not affect the view).  Consume with :meth:`pop`,
    :meth:`drain` or iteration; :meth:`close` detaches from the handle.

    The queue holds at most ``max_pending`` events (each pins a full tree
    and instance version): when a stalled consumer falls further behind, the
    *oldest* events are dropped and counted in :attr:`dropped`.  Because
    edit scripts compose sequentially, a consumer observing ``dropped > 0``
    can no longer replay its local copy and must resynchronise from
    :attr:`tree` (always the complete, current document).
    """

    #: Default bound on unconsumed events per subscription.
    max_pending = 4096

    def __init__(
        self,
        server: "ViewServer",
        view: RegisteredView,
        handle: SourceHandle,
        maintained: _MaintainedView,
        max_pending: int | None = None,
    ) -> None:
        self._server = server
        self._view = view
        self._handle = handle
        self._maintained = maintained
        if max_pending is not None:
            self.max_pending = max(1, max_pending)
        self._events: deque[SubscriptionEvent] = deque()
        # Guards the event queue: _record runs on the committing thread
        # (inside the chain lock) while pop/drain run on the consumer's.
        self._queue_lock = threading.Lock()
        self.deliveries = 0
        self.dropped = 0
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def view(self) -> RegisteredView:
        """The subscribed view."""
        return self._view

    @property
    def handle(self) -> SourceHandle:
        """The handle whose commits are delivered."""
        return self._handle

    @property
    def version(self) -> int:
        """The version the maintained tree currently reflects."""
        return self._maintained.version

    @property
    def tree(self) -> TreeNode:
        """The maintained tree (equal to a full publish of :attr:`version`)."""
        return self._maintained.tree

    @property
    def instance(self) -> Instance:
        """The maintained instance at :attr:`version` (backend-pinned)."""
        return self._maintained.instance

    @property
    def pending(self) -> int:
        """How many delivered events have not been consumed yet."""
        return len(self._events)

    # -- consuming -----------------------------------------------------------

    def pop(self) -> SubscriptionEvent:
        """The oldest unconsumed event (raises :class:`LookupError` when none)."""
        with self._queue_lock:
            if not self._events:
                raise LookupError("no pending subscription events")
            return self._events.popleft()

    def drain(self) -> list[SubscriptionEvent]:
        """All unconsumed events, oldest first."""
        with self._queue_lock:
            events = list(self._events)
            self._events.clear()
        return events

    def __iter__(self) -> Iterator[SubscriptionEvent]:
        while True:
            with self._queue_lock:
                if not self._events:
                    return
                event = self._events.popleft()
            yield event

    def close(self) -> None:
        """Stop receiving commits (pending events stay consumable).

        Detaches from the shared chain's fan-out list, the handle's delivery
        list and the server's registry, so :meth:`ViewServer.stats` counts
        live subscribers only.
        """
        if not self._closed:
            self._closed = True
            self._maintained.remove_subscriber(self)
            for registry in (self._handle._subscriptions, self._server._subscriptions):
                try:
                    registry.remove(self)
                except ValueError:  # pragma: no cover - already detached
                    pass

    # -- delivery ------------------------------------------------------------

    def _record(self, result: RepublishResult, at_version: int) -> None:
        """Receive one replayed step (called from inside the chain's lock)."""
        with self._queue_lock:
            self._events.append(SubscriptionEvent(at_version, result.edits, result))
            while len(self._events) > self.max_pending:
                self._events.popleft()
                self.dropped += 1
        self.deliveries += 1
        self._server._deliveries += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subscription(view={self._view.name!r}, source={self._handle.name!r}, "
            f"version={self.version}, pending={self.pending})"
        )


# ---------------------------------------------------------------------------
# The server.
# ---------------------------------------------------------------------------


class ViewServer:
    """Serve named XML views over versioned relational sources.

    The one front door of the reproduction::

        server = ViewServer()
        server.register_view("hierarchy", tau1_prerequisite_hierarchy)
        handle = server.attach(instance)

        xml = server.publish("hierarchy", output="bytes")       # full document
        sub = server.subscribe("hierarchy")                      # live diffs
        handle.commit(Delta.insert("prereq", ("cs500", "cs240")))
        print(sub.pop().edits.describe())

    ``register_view`` accepts every front-end of the code base;
    ``publish`` routes output format, execution backend and maintenance
    strategy in one call; ``stats()`` / ``explain()`` aggregate the
    observability counters that previously had to be collected from the
    plan, the relations and the query plans separately.
    """

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        cache_instances: int = 8,
        maintained_views: int = 32,
        pool=None,
    ) -> None:
        self._engine = Engine(max_nodes=max_nodes, cache_instances=cache_instances)
        self._max_nodes = max_nodes
        # Optional repro.parallel.WorkerPool: publish_batch fans serialised
        # publishes of different views/versions across it, and stats()
        # folds the fleet's merged cache counters into the report.  The
        # pool is owned by the caller (one pool may serve many servers and
        # the network tier at once); None keeps every path serial.
        self._pool = pool
        self._max_maintained = max(1, maintained_views)
        self._views: dict[str, RegisteredView] = {}
        self._handles: dict[str, SourceHandle] = {}
        self._plan_cache: dict[tuple[int, int | None], PublishingPlan] = {}
        # Maintained (view, binding, source, backend, budget) chains in LRU
        # order; subscriptions hold their own chains outside this cap.
        self._maintained: dict[tuple, _MaintainedView] = {}
        # Encoded twins of raw (unattached) instances published with
        # backend="columnar", so repeated one-shot publishes do not re-intern
        # the world; entries die with the caller's instance.
        self._raw_twins = weakref.WeakKeyDictionary()
        self._subscriptions: list[Subscription] = []
        self._deliveries = 0
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def register_view(
        self,
        name: str,
        source,
        *,
        language: str | None = None,
        params: Iterable[str] = (),
        schema: RelationalSchema | None = None,
        max_nodes: int | None = None,
        output_dtd=None,
        typecheck: str = "static",
    ) -> RegisteredView:
        """Register a named view and compile its default binding eagerly.

        ``source`` may be a :class:`PublishingTransducer`, a
        :class:`TransducerBuilder`, a compiled :class:`PublishingPlan`, any
        language front-end exposing ``.compile()`` (ATG, DAD, FOR XML,
        DBMS_XMLGEN, TreeQL, XPERANTO, annotated XSD, SQL/XML), or -- when
        ``params`` are declared or the source is a plain callable -- a
        factory invoked with the bound parameters and returning any of the
        above.  ``schema``, when given, validates the compiled transducer
        against the source schema at registration time.

        ``output_dtd`` declares the target :class:`~repro.xmltree.dtd.DTD`
        every published document must conform to, gated by ``typecheck``:

        * ``"static"`` (the default) runs the deploy-time checker of
          :mod:`repro.typecheck` -- a *refuted* view raises
          :class:`ViewRejected` here (with a replayable counterexample
          source), a *proved* view publishes forever after with zero
          validation cost, and an *undecided* view falls back to the
          streaming runtime validator;
        * ``"runtime"`` skips the static check and always stream-validates;
        * ``"off"`` records the DTD without enforcing it.

        Runtime validation folds ``publish_events`` through an O(depth)
        automaton, memoised per source version; violations raise
        :class:`~repro.typecheck.OutputValidationError` and are counted in
        :meth:`stats`.  Subscription deltas are not re-validated (the
        maintained tree is validated when published, not when diffed).
        """
        params = tuple(params)
        if params and not callable(source):
            raise ServeError(
                f"view {name!r} declares parameters {params}, so its source "
                f"must be a factory callable, not {type(source).__name__}"
            )
        _checked(typecheck, TYPECHECK_MODES, "typecheck")
        if output_dtd is None and typecheck != "static":
            raise ServeError(
                f"typecheck={typecheck!r} needs an output_dtd to check against"
            )
        with self._lock:
            if name in self._views:
                raise ServeError(f"view {name!r} is already registered")
            view = RegisteredView(
                self, name, source, language, params, schema, max_nodes,
                output_dtd, typecheck,
            )
            self._views[name] = view
        if not params:
            try:
                view.plan_for(None)  # compile (and validate) eagerly
            except Exception:
                # A failed registration must not squat on the name: drop the
                # half-registered view so a corrected retry can reuse it.
                with self._lock:
                    if self._views.get(name) is view:
                        del self._views[name]
                raise
        return view

    def attach(
        self,
        instance: Instance,
        *,
        name: str | None = None,
        encoded: bool = False,
        base_version: int = 0,
    ) -> SourceHandle:
        """Attach a source instance and return its versioned handle.

        With ``encoded=True`` the instance is dictionary-encoded in place
        (:func:`repro.relational.columnar.ensure_encoded`), so the whole
        version lineage runs on the columnar backend under
        ``backend="auto"``.  The encoding is only applied once the handle is
        actually created -- a failed attach never mutates the instance.

        ``base_version`` numbers the attached snapshot (default ``0``); the
        recovery path of :mod:`repro.serve.net.wal` uses it so a source
        restored from a compacted log resumes its pre-crash version
        numbering instead of restarting at zero.
        """
        with self._lock:
            if name is None:
                counter = len(self._handles)
                name = f"source{counter}"
                while name in self._handles:
                    counter += 1
                    name = f"source{counter}"
            if name in self._handles:
                raise ServeError(f"source {name!r} is already attached")
            if encoded:
                from repro.relational.columnar import ensure_encoded

                ensure_encoded(instance)
            handle = SourceHandle(self, name, instance, base_version)
            self._handles[name] = handle
        return handle

    @property
    def views(self) -> tuple[RegisteredView, ...]:
        """Every registered view, in registration order."""
        return tuple(self._views.values())

    @property
    def handles(self) -> tuple[SourceHandle, ...]:
        """Every attached source handle, in attachment order."""
        return tuple(self._handles.values())

    def view(self, name: str) -> RegisteredView:
        """The registered view called ``name``."""
        try:
            return self._views[name]
        except KeyError:
            raise ServeError(
                f"unknown view {name!r}; registered: {sorted(self._views) or 'none'}"
            ) from None

    def source(self, name: str) -> SourceHandle:
        """The attached source handle called ``name``."""
        try:
            return self._handles[name]
        except KeyError:
            raise ServeError(
                f"unknown source {name!r}; attached: {sorted(self._handles) or 'none'}"
            ) from None

    # -- the single evaluation call ------------------------------------------

    def publish(
        self,
        view: str | RegisteredView,
        *,
        source: "SourceHandle | SourceVersion | Instance | None" = None,
        version: int | None = None,
        params: Mapping[str, DataValue] | None = None,
        output: str = "tree",
        backend: str = "auto",
        maintenance: str = "auto",
        indent: int | None = 2,
        write=None,
        max_nodes: int | None = None,
    ):
        """Evaluate a registered view -- the one call replacing the method zoo.

        ``source`` is a :class:`SourceHandle` (optionally with ``version=``),
        a :class:`SourceVersion` snapshot, a raw
        :class:`~repro.relational.instance.Instance` (one-shot, unversioned)
        or ``None`` when exactly one source is attached.  ``output`` selects
        the result form: the materialised Σ-tree (``"tree"``), a lazy
        SAX-style event stream (``"events"``), the serialised document
        (``"bytes"``, byte-identical to the legacy ``publish_xml``; honours
        ``indent`` / ``write``) or the single-line form (``"compact"``).
        ``backend`` pins execution to the row or columnar kernel (``"auto"``
        follows the source's encoding).  ``maintenance`` chooses between a
        from-scratch publish (``"full"``), delta-driven republish along the
        handle's version chain (``"incremental"``) or picking whichever is
        available (``"auto"``); every combination returns byte-identical
        output.
        """
        registered = view if isinstance(view, RegisteredView) else self.view(view)
        _checked(output, _OUTPUTS_WITH_ALIAS, "output")
        _checked(backend, BACKENDS, "backend")
        _checked(maintenance, MAINTENANCE, "maintenance")
        binding = registered.binding_key(params)
        plan = registered.plan_for_key(binding)
        handle, snapshot = self._resolve_source(source, version)
        budget = max_nodes if max_nodes is not None else registered._max_nodes
        # The runtime-validation gate: None for unchecked or statically
        # proved bindings (zero per-publish cost), the view itself when the
        # rendered document must stream through the DTD validator first.
        guard = registered if registered._runtime_validation(binding) else None

        if handle is None:
            if maintenance == "incremental":
                raise ServeError(
                    "maintenance='incremental' needs an attached source "
                    "(a SourceHandle or SourceVersion), not a raw instance"
                )
            instance = self._route_raw(snapshot, backend)
            registered.publishes += 1
            registered.last_backend = (
                "columnar" if instance.is_encoded else "row"
            )
            return self._render_full(
                plan, instance, output, indent, write, budget, validate=guard
            )

        registered.publishes += 1
        if backend == "auto":
            registered.last_backend = (
                "columnar" if snapshot.instance.is_encoded else "row"
            )
        else:
            registered.last_backend = backend

        if maintenance == "full":
            instance = handle._instance_for(snapshot, backend)
            return self._render_full(
                plan, instance, output, indent, write, budget, validate=guard
            )
        # Keyed by the handle object (identity), not its name: names are
        # only unique within one server, and a chain must never be shared
        # across handles.  Handles are retained by the server, so the key
        # stays valid.
        key = (registered.name, binding, handle, backend, budget)
        maintained = self._maintained_chain(key)
        if maintained is None:
            if maintenance == "auto" and output != "tree":
                # Keep the streaming forms lazy: events/bytes/compact under
                # "auto" serve straight from the lazy engine drivers (no
                # whole tree materialised, no chain pinned) unless a chain
                # already exists.  Tree requests and explicit
                # maintenance="incremental" seed the chain.
                instance = handle._instance_for(snapshot, backend)
                return self._render_full(
                    plan, instance, output, indent, write, budget, validate=guard
                )
            # Seed the maintained chain so subsequent publishes of this key
            # go incremental.  Built outside the server lock (it runs a
            # full publish); a concurrent seeder may win the install.
            maintained = self._install_maintained(
                key, _MaintainedView(plan, handle, snapshot, backend, budget)
            )
        tree = maintained.advance(snapshot)
        if tree is None:
            # The chain has moved past the requested snapshot: a pinned
            # reader must never see the newer tree, and must not rewind the
            # chain -- serve a from-scratch publish of that version.
            instance = handle._instance_for(snapshot, backend)
            return self._render_full(
                plan, instance, output, indent, write, budget, validate=guard
            )
        if output in ("bytes", "xml", "compact"):
            # Serialised forms of a maintained chain render through the
            # bytes-native driver rather than re-walking the maintained
            # tree: the republish that advanced the chain migrated the
            # rendered-span cache, so only invalidated spans re-render and
            # an unchanged document is a buffer handoff.  The instance is
            # the chain's own snapshot object (``_instance_for`` is cached
            # per version), so the plan's per-instance caches are shared.
            instance = handle._instance_for(snapshot, backend)
            return self._render_full(
                plan, instance, output, indent, write, budget, validate=guard
            )
        if guard is not None:
            # Maintained tree: validate its event replay (byte-identical to
            # a from-scratch publish of the version) instead of re-running
            # the engine; memoised under the version's snapshot instance.
            instance = handle._instance_for(snapshot, backend)
            guard._ensure_validated_tree(plan, tree, instance, budget)
        return self._render_tree(tree, output, indent, write)

    @property
    def pool(self):
        """The attached :class:`repro.parallel.WorkerPool`, or ``None``."""
        return self._pool

    def publish_batch(self, requests: "Iterable[Mapping]", *, pool=None) -> list:
        """Evaluate many :meth:`publish` requests, in parallel when possible.

        ``requests`` is an iterable of keyword-argument mappings for
        :meth:`publish` (``view`` plus any of ``source``, ``version``,
        ``params``, ``output``, ``backend``, ``maintenance``, ``indent``,
        ``max_nodes``).  Results come back in request order and are
        byte-identical to calling :meth:`publish` serially.

        With a worker pool (``pool=`` here or ``ViewServer(pool=...)``),
        serialised outputs (``bytes`` / ``xml`` / ``compact``) of different
        views and versions run concurrently across worker processes: the
        compiled plan and the version's snapshot ship once per worker
        (instances are immutable MVCC snapshots, so a worker's copy is a
        consistent read regardless of concurrent commits), and requests
        shard by ``(view, binding)`` so repeated publishes of one view hit
        that worker's warm caches.  Requests the pool cannot take -- tree
        and event outputs, unpicklable artefacts, a crashed fleet -- run
        serially in-process; a mid-flight worker death re-runs only the
        orphaned requests.
        """
        pool = pool if pool is not None else self._pool
        requests = [dict(request) for request in requests]
        results: list = [None] * len(requests)
        pending: list[tuple[int, object, object]] = []  # (index, future, retry)
        for index, request in enumerate(requests):
            dispatched = False
            if pool is not None and not pool.broken:
                dispatched = self._dispatch_publish(pool, request, pending, index)
            if not dispatched:
                results[index] = self.publish(**request)
        for index, future, request in pending:
            from repro.parallel.pool import PoolBroken, WorkerCrashed, WorkerTaskError

            try:
                results[index] = future.result()
            except (PoolBroken, WorkerCrashed, WorkerTaskError):
                # The worker (or its reply) is gone -- not a publish error,
                # those propagate as their own types.  Serve serially.
                results[index] = self.publish(**request)
        return results

    def _dispatch_publish(self, pool, request: dict, pending: list, index: int) -> bool:
        """Try to run one publish request on the pool; False -> serial.

        Mirrors :meth:`publish`'s resolution exactly -- view, binding,
        snapshot, backend twin, budget -- then ships a worker-side
        ``publish_bytes``.  Serialised outputs only: the streaming/tree
        forms return live objects that must not cross a process boundary.
        """
        output = request.get("output", "tree")
        if output not in ("bytes", "xml", "compact") or request.get("write") is not None:
            return False
        from repro.parallel.pool import NotShippable, PoolBroken, WorkerCrashed

        view = request["view"]
        registered = view if isinstance(view, RegisteredView) else self.view(view)
        _checked(request.get("backend", "auto"), BACKENDS, "backend")
        _checked(request.get("maintenance", "auto"), MAINTENANCE, "maintenance")
        binding = registered.binding_key(request.get("params"))
        plan = registered.plan_for_key(binding)
        handle, snapshot = self._resolve_source(
            request.get("source"), request.get("version")
        )
        backend = request.get("backend", "auto")
        budget = request.get("max_nodes")
        if budget is None:
            budget = registered._max_nodes
        if handle is None:
            if request.get("maintenance") == "incremental":
                return False  # let publish() raise the canonical error
            instance = self._route_raw(snapshot, backend)
        else:
            instance = handle._instance_for(snapshot, backend)
        if registered._runtime_validation(binding) and not registered._is_validated(
            plan, instance, budget
        ):
            # Not-yet-validated documents stay in-process: the serial path
            # validates (and memoises), after which this version ships to
            # the pool freely.
            return False
        indent = None if output == "compact" else request.get("indent", 2)
        try:
            plan_token = pool.install(plan)
            instance_token = pool.install(instance)
            future = pool.submit(
                "publish_bytes",
                plan_token,
                instance_token,
                indent=indent,
                max_nodes=budget,
                key=(registered.name, binding),
                tokens=(plan_token, instance_token),
            )
        except (NotShippable, PoolBroken, WorkerCrashed):
            return False
        registered.publishes += 1
        registered.last_backend = (
            ("columnar" if instance.is_encoded else "row")
            if backend == "auto"
            else backend
        )
        pending.append((index, future, request))
        return True

    def subscribe(
        self,
        view: str | RegisteredView,
        source: "SourceHandle | None" = None,
        *,
        params: Mapping[str, DataValue] | None = None,
        backend: str = "auto",
        max_nodes: int | None = None,
        max_pending: int | None = None,
    ) -> Subscription:
        """Subscribe to a view: one :class:`EditScript` per source commit.

        The subscription brings the key's *shared* maintained chain to the
        handle's current version (its tree is the subscriber's base
        document) and attaches to its fan-out: each commit costs one
        :meth:`~repro.engine.plan.PublishingPlan.republish` for *all*
        subscribers of the key, not one per subscriber, and never a publish
        plus a tree diff.  ``max_pending`` bounds the unconsumed-event queue
        (default :attr:`Subscription.max_pending`); see :class:`Subscription`
        for the overflow contract.
        """
        registered = view if isinstance(view, RegisteredView) else self.view(view)
        _checked(backend, BACKENDS, "backend")
        handle = source if source is not None else self._sole_handle()
        if not isinstance(handle, SourceHandle):
            raise ServeError(
                f"subscribe needs a SourceHandle, not {type(handle).__name__}"
            )
        self._check_ownership(handle)
        binding = registered.binding_key(params)
        plan = registered.plan_for_key(binding)
        budget = max_nodes if max_nodes is not None else registered._max_nodes
        key = (registered.name, binding, handle, backend, budget)
        maintained = self._maintained_chain(key)
        if maintained is None:
            maintained = self._install_maintained(
                key, _MaintainedView(plan, handle, handle.latest, backend, budget)
            )
        # Catch the shared chain up before attaching, so the subscriber's
        # base tree is the current version and no pre-subscribe commit is
        # ever delivered as an event.
        maintained.advance(handle.latest)
        subscription = Subscription(
            self, registered, handle, maintained, max_pending=max_pending
        )
        maintained.add_subscriber(subscription)
        handle._subscriptions.append(subscription)
        self._subscriptions.append(subscription)
        return subscription

    # -- observability --------------------------------------------------------

    def stats(self):
        """Aggregate counters across views, sources and subscriptions.

        One call replacing the former tour of ``plan.cache_stats``,
        per-relation ``index_stats()`` and per-query-plan ``last_backend``:
        returns a :class:`~repro.serve.stats.ServerStats` with per-view and
        per-source breakdowns plus ``as_dict()`` / ``describe()``.
        """
        from repro.serve.stats import collect_stats

        return collect_stats(self)

    def explain(
        self,
        view: str | RegisteredView,
        *,
        params: Mapping[str, DataValue] | None = None,
    ):
        """The :class:`~repro.serve.stats.ExplainReport` for one view binding.

        Aggregates, per compiled rule query: the join order, the columnar /
        row backend last used, the incremental-maintenance strategy, and the
        plan-level expansion-cache and invalidation counters.
        """
        from repro.serve.stats import explain_view

        registered = view if isinstance(view, RegisteredView) else self.view(view)
        return explain_view(registered, params, pool=self._pool)

    @property
    def subscriptions(self) -> tuple[Subscription, ...]:
        """Every subscription created by this server."""
        return tuple(self._subscriptions)

    def close(self) -> None:
        """Close every subscription and every handle's write-ahead log.

        The teardown half of the network tier's lifecycle: a closed server
        keeps its in-memory state (views, sources, versions) but stops
        maintaining subscription chains and releases the WAL segment files,
        so another process may recover and adopt the log directories.
        """
        for subscription in tuple(self._subscriptions):
            subscription.close()
        for handle in self.handles:
            if handle._wal is not None:
                handle._wal.log.close()

    # -- internals ------------------------------------------------------------

    def _compile(
        self,
        transducer: PublishingTransducer,
        schema: RelationalSchema | None,
        max_nodes: int | None,
        share: bool = True,
    ) -> PublishingPlan:
        """The shared plan cache: one compiled plan per transducer object.

        ``share=False`` compiles without touching the cache (used for
        factory-produced transducers, which are unique per binding and
        cached by their view's LRU-capped binding cache instead).
        """
        if not share:
            return self._engine.compile(transducer, schema=schema, max_nodes=max_nodes)
        key = (id(transducer), max_nodes)
        with self._lock:
            plan = self._plan_cache.get(key)
        if plan is None:
            # The cached plan holds a strong reference to the transducer, so
            # the id key cannot be recycled while the entry is alive.
            # Compiled outside the lock (planning is the slow part); a
            # concurrent compile of the same transducer wastes one plan but
            # setdefault keeps exactly one as the shared winner.
            plan = self._engine.compile(transducer, schema=schema, max_nodes=max_nodes)
            with self._lock:
                plan = self._plan_cache.setdefault(key, plan)
        elif schema is not None:
            problems = transducer.validate_against_schema(schema)
            if problems:
                raise ServeError("; ".join(problems))
        return plan

    def _maintained_chain(self, key: tuple) -> _MaintainedView | None:
        """The maintained chain for ``key``, touched for LRU recency."""
        with self._lock:
            chain = self._maintained.get(key)
            if chain is not None:
                del self._maintained[key]
                self._maintained[key] = chain
            return chain

    def _install_maintained(self, key: tuple, chain: _MaintainedView) -> _MaintainedView:
        """Install a freshly seeded chain (or adopt a concurrent winner).

        At most ``maintained_views`` chains are kept, evicted
        least-recently-used -- the serving-layer mirror of the engine's
        ``cache_instances`` bound, so long-running servers with many
        distinct (view, binding, source, backend) shapes stay bounded in
        memory.  Subscriptions own their chains and are not subject to the
        cap.
        """
        with self._lock:
            winner = self._maintained.get(key)
            if winner is not None:
                del self._maintained[key]
                self._maintained[key] = winner
                return winner
            self._maintained[key] = chain
            while len(self._maintained) > self._max_maintained:
                del self._maintained[next(iter(self._maintained))]
            return chain

    def _sole_handle(self) -> SourceHandle:
        if len(self._handles) == 1:
            return next(iter(self._handles.values()))
        raise ServeError(
            f"server has {len(self._handles)} attached sources; pass source="
        )

    def _check_ownership(self, handle: SourceHandle) -> None:
        if handle._server is not self:
            raise ServeError(
                f"source {handle.name!r} is attached to a different server"
            )

    def _resolve_source(
        self,
        source: "SourceHandle | SourceVersion | Instance | None",
        version: int | None,
    ) -> "tuple[SourceHandle | None, SourceVersion | Instance]":
        if source is None:
            source = self._sole_handle()
        if isinstance(source, SourceVersion):
            if version is not None and version != source.index:
                raise ServeError(
                    f"version={version} conflicts with the snapshot's "
                    f"version {source.index}"
                )
            self._check_ownership(source.handle)
            return source.handle, source
        if isinstance(source, SourceHandle):
            self._check_ownership(source)
            return source, source.snapshot(version)
        if isinstance(source, Instance):
            if version is not None:
                raise ServeError("version= needs an attached source, not an instance")
            return None, source
        raise ServeError(
            f"source must be a SourceHandle, SourceVersion or Instance, "
            f"not {type(source).__name__}"
        )

    def _route_raw(self, instance: Instance, backend: str) -> Instance:
        """Pin a one-shot (unversioned) instance to the requested backend.

        Columnar twins of raw instances are cached (weakly, keyed by the
        caller's instance) so repeated one-shot publishes intern the data
        once; attached handles remain the supported hot path.
        """
        if backend == "row":
            return instance.without_encoding()
        if backend == "columnar" and not instance.is_encoded:
            twin = self._raw_twins.get(instance)
            if twin is None:
                from repro.relational.columnar import encoded_twin

                twin = encoded_twin(instance)
                self._raw_twins[instance] = twin
            return twin
        return instance

    def _render_full(
        self,
        plan: PublishingPlan,
        instance: Instance,
        output: str,
        indent: int | None,
        write,
        max_nodes: int | None,
        validate: RegisteredView | None = None,
    ):
        """A from-scratch publish on the fastest driver for the output form.

        The serialised forms run on the bytes-native driver
        (:meth:`~repro.engine.plan.PublishingPlan.publish_bytes`): no tree is
        materialised, character data comes from interned fragments, and
        rendered subtree spans are cached per configuration -- so repeated
        and incrementally maintained publishes are mostly buffer reuse.
        ``output="events"`` remains the bounded-memory streaming path.

        ``validate`` (a :class:`RegisteredView` with a registered DTD) gates
        the result through the streaming validator first: event outputs get
        a single-pass validating pass-through, every other form runs one
        memoised ``publish_events`` validation before rendering untouched --
        so validated output stays byte-identical to unvalidated output.
        """
        if validate is not None:
            if output == "events":
                if not validate._is_validated(plan, instance, max_nodes):
                    return validate._validated_events(plan, instance, max_nodes)
            else:
                validate._ensure_validated(plan, instance, max_nodes)
        if output == "tree":
            return plan.publish(instance, max_nodes)
        if output == "events":
            return plan.publish_events(instance, max_nodes)
        if output in ("bytes", "xml"):
            return plan.publish_bytes(
                instance, indent=indent, write=write, max_nodes=max_nodes
            )
        return plan.publish_bytes(instance, indent=None, max_nodes=max_nodes)

    def _render_tree(
        self, tree: TreeNode, output: str, indent: int | None, write
    ):
        """Render an (incrementally) maintained tree in the requested form."""
        if output == "tree":
            return tree
        if output == "events":
            return tree_to_events(tree)
        if output in ("bytes", "xml"):
            return serialize_tree(tree, indent=indent, write=write)
        return compact_tree(tree)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewServer(views={sorted(self._views)}, "
            f"sources={sorted(self._handles)}, "
            f"subscriptions={len(self._subscriptions)})"
        )
