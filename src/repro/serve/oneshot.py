"""One-shot publishing helpers shared by the server and the legacy shims.

These free functions are the single implementation behind both
:meth:`repro.serve.server.ViewServer.publish` output modes and the deprecated
convenience variants on :class:`~repro.engine.plan.PublishingPlan`
(``publish_many`` / ``publish_iter`` / ``publish_xml``), so the streaming and
serialisation semantics cannot drift between the old and the new surface.
They build only on the engine's core drivers (``publish`` /
``publish_events``), never on the deprecated variants.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.relational.instance import Instance
from repro.xmltree.events import XmlEvent, tree_to_events
from repro.xmltree.serialize import IncrementalXmlSerializer, compact_xml_from_events
from repro.xmltree.tree import TreeNode


def publish_stream(
    plan, instances: Iterable[Instance], max_nodes: int | None = None
) -> Iterator[TreeNode]:
    """Lazily publish a stream of instances over one compiled plan.

    One tree per input instance, in order, built only when the consumer asks
    for it; all instances share the plan's per-instance caches (the
    shared-cache semantics previously documented on ``publish_many``).
    """
    for instance in instances:
        yield plan.publish(instance, max_nodes)


def publish_document(
    plan,
    instance: Instance,
    indent: int | None = 2,
    write=None,
    max_nodes: int | None = None,
) -> str:
    """Stream a publish directly into XML text (the legacy ``publish_xml``).

    With ``write`` (a callable receiving string chunks) the document is
    pushed incrementally and an empty string is returned; without it the
    serialised document is returned whole.  Byte-identical to serialising
    the materialised tree.
    """
    return serialize_events(
        plan.publish_events(instance, max_nodes), indent=indent, write=write
    )


def serialize_events(
    events: Iterable[XmlEvent], indent: int | None = 2, write=None
) -> str:
    """Serialise an event stream to an (optionally indented) XML document."""
    serializer = IncrementalXmlSerializer(write=write, indent=indent)
    return serializer.feed_all(events).finish()


def serialize_tree(tree: TreeNode, indent: int | None = 2, write=None) -> str:
    """Serialise a materialised tree, byte-identical to the streaming path."""
    return serialize_events(tree_to_events(tree), indent=indent, write=write)


def compact_tree(tree: TreeNode) -> str:
    """The single-line compact XML form of a materialised tree."""
    return compact_xml_from_events(tree_to_events(tree))
