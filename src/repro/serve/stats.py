"""Unified observability for the serving layer.

Before the server existed, understanding a running view meant touring three
objects: ``PublishingPlan.cache_stats`` (expansion memo and republish
invalidation counters), per-relation ``index_stats()`` (hash-index cache
behaviour, row and columnar), and per-rule ``QueryPlan`` introspection
(``last_backend``, ``delta_strategy()``, join order).  This module folds that
tour into two value objects:

* :func:`collect_stats` -> :class:`ServerStats` -- one aggregate across every
  registered view, attached source and subscription of a
  :class:`~repro.serve.server.ViewServer`;
* :func:`explain_view` -> :class:`ExplainReport` -- the per-rule story of one
  view binding, including the republish strategy line.

Both are plain frozen dataclasses with ``as_dict()`` (for JSON benchmarks)
and ``describe()`` (for humans).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Mapping

from repro.relational.domain import DataValue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import RegisteredView, ViewServer


def _typecheck_stats(view: "RegisteredView") -> dict | None:
    """The typecheck section of a view's stats (``None`` without a DTD)."""
    if view.output_dtd is None:
        return None
    return {
        "mode": view.typecheck_mode,
        "verdicts": {
            ", ".join(f"{name}={value!r}" for name, value in key): result.verdict.value
            for key, result in view._verdicts.items()
        },
        "validated": view.validated,
        "violations": view.violations,
    }


def _sum_index_stats(stats_dicts) -> dict[str, int]:
    total = {"cached": 0, "built": 0, "evicted": 0, "capacity": 0}
    for stats in stats_dicts:
        for key in total:
            total[key] += stats.get(key, 0)
    return total


# ---------------------------------------------------------------------------
# Server-wide aggregation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewStats:
    """Counters of one registered view, aggregated over its bindings."""

    name: str
    language: str | None
    params: tuple[str, ...]
    bindings: int
    publishes: int
    last_backend: str | None
    cache: dict
    #: Output-typechecking state (``mode``, per-binding ``verdicts``, the
    #: ``validated`` / ``violations`` counters), or ``None`` when the view
    #: was registered without an ``output_dtd``.
    typecheck: dict | None = None


@dataclass(frozen=True)
class SourceStats:
    """Counters of one attached source handle."""

    name: str
    version: int
    commits: int
    encoded: bool
    subscriptions: int
    total_tuples: int
    row_indexes: dict
    columnar_indexes: dict


@dataclass(frozen=True)
class ServerStats:
    """The one-call aggregate over a whole :class:`ViewServer`."""

    views: tuple[ViewStats, ...]
    sources: tuple[SourceStats, ...]
    subscriptions: int
    deliveries: int
    maintained_views: int
    #: ``WorkerPool.stats()`` of the attached pool (worker count, per-worker
    #: task tallies, merged worker-side cache counters, span merges), or
    #: ``None`` when the server runs serial.
    pool: dict | None = None

    def as_dict(self) -> dict:
        """The whole aggregate as plain dicts (JSON-friendly)."""
        return asdict(self)

    def describe(self) -> str:
        """A compact human-readable rendering, one line per view and source."""
        lines = [
            f"ViewServer: {len(self.views)} view(s), {len(self.sources)} "
            f"source(s), {self.subscriptions} subscription(s) "
            f"({self.deliveries} deliveries), "
            f"{self.maintained_views} maintained chain(s)"
        ]
        if self.pool is not None:
            worker_cache = self.pool.get("worker_cache", {})
            lines.append(
                f"  pool: {self.pool.get('workers', 0)} worker(s) "
                f"({self.pool.get('alive', 0)} alive), "
                f"{self.pool.get('tasks_dispatched', 0)} task(s) dispatched, "
                f"{self.pool.get('span_merges', 0)} span(s) merged back, "
                f"worker caches {worker_cache.get('hits', 0)} hits / "
                f"{worker_cache.get('misses', 0)} misses"
            )
        for view in self.views:
            cache = view.cache
            lines.append(
                f"  view {view.name!r} [{view.language or 'unknown'}]: "
                f"{view.bindings} binding(s), {view.publishes} publish(es), "
                f"backend={view.last_backend or 'none yet'}, "
                f"memo hit rate {cache.get('hit_rate', 0.0):.1%} "
                f"({cache.get('invalidated', 0)} invalidated / "
                f"{cache.get('retained', 0)} retained across republishes, "
                f"rendered spans {cache.get('rendered_hits', 0)} reused / "
                f"{cache.get('rendered_misses', 0)} rendered)"
            )
            if view.typecheck is not None:
                verdicts = ", ".join(
                    f"{binding or 'default'}: {verdict}"
                    for binding, verdict in sorted(view.typecheck["verdicts"].items())
                ) or "no binding compiled yet"
                lines.append(
                    f"    typecheck [{view.typecheck['mode']}]: {verdicts}; "
                    f"{view.typecheck['validated']} document(s) validated, "
                    f"{view.typecheck['violations']} violation(s)"
                )
        for source in self.sources:
            lines.append(
                f"  source {source.name!r}: version {source.version} "
                f"({source.commits} commit(s)), {source.total_tuples} tuple(s), "
                f"{'columnar' if source.encoded else 'row'} lineage, "
                f"{source.subscriptions} subscription(s), "
                f"indexes row {source.row_indexes['built']} built / "
                f"{source.row_indexes['evicted']} evicted, "
                f"columnar {source.columnar_indexes['built']} built"
            )
        return "\n".join(lines)


def collect_stats(server: "ViewServer") -> ServerStats:
    """Aggregate every observability counter of ``server`` into one value."""
    from repro.relational.columnar import cached_columnar

    views = []
    for view in server.views:
        cache = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "instances": 0,
            "invalidated": 0,
            "retained": 0,
            "rendered_hits": 0,
            "rendered_misses": 0,
        }
        for plan in view.plans:
            for key, value in plan.cache_stats.as_dict().items():
                if key != "hit_rate":
                    cache[key] += value
        total = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / total if total else 0.0
        views.append(
            ViewStats(
                name=view.name,
                language=view.language,
                params=view.params,
                bindings=len(view.plans),
                publishes=view.publishes,
                last_backend=view.last_backend,
                cache=cache,
                typecheck=_typecheck_stats(view),
            )
        )
    sources = []
    for handle in server.handles:
        instance = handle.instance
        relations = list(instance.values())
        columnar_forms = [
            form
            for form in (cached_columnar(rel) for rel in relations)
            if form is not None  # empty relations still carry index counters
        ]
        sources.append(
            SourceStats(
                name=handle.name,
                version=handle.version,
                commits=handle.commits,
                encoded=instance.is_encoded,
                subscriptions=len(handle._subscriptions),
                total_tuples=instance.total_size(),
                row_indexes=_sum_index_stats(r.index_stats() for r in relations),
                columnar_indexes=_sum_index_stats(
                    form.index_stats() for form in columnar_forms
                ),
            )
        )
    pool = getattr(server, "_pool", None)
    return ServerStats(
        views=tuple(views),
        sources=tuple(sources),
        subscriptions=len(server.subscriptions),
        deliveries=server._deliveries,
        maintained_views=len(server._maintained),
        pool=pool.stats() if pool is not None else None,
    )


# ---------------------------------------------------------------------------
# Cluster-wide aggregation (the sharded topology's front door).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStats:
    """One shard worker's slice of the cluster: what it owns and has served."""

    shard: int
    address: tuple[str, int] | None
    namespaces: tuple[str, ...]
    #: The worker's ``NetServer.counters`` snapshot.
    net: dict


@dataclass(frozen=True)
class ClusterStats:
    """The router's one-call aggregate over every shard worker.

    ``totals`` sums each numeric counter of every shard's ``net`` section,
    so aggregate commit/publish/delivery throughput reads off one dict;
    ``table`` is the routing table (namespace -> owning shard) including
    explicit entries created by rebalances.
    """

    shards: tuple[ShardStats, ...]
    table: dict
    router: dict
    totals: dict

    def as_dict(self) -> dict:
        """The whole aggregate as plain dicts (JSON-friendly)."""
        return asdict(self)

    def describe(self) -> str:
        """A compact human-readable rendering, one line per shard."""
        lines = [
            f"Cluster: {len(self.shards)} shard(s), "
            f"{len(self.table)} routed namespace(s); totals: "
            f"{self.totals.get('commits', 0)} commit(s), "
            f"{self.totals.get('publishes', 0)} publish(es), "
            f"{self.totals.get('deliveries', 0)} delivery(ies), "
            f"{self.totals.get('evicted', 0)} evicted"
        ]
        lines.append(
            f"  router: {self.router.get('requests', 0)} request(s) proxied, "
            f"{self.router.get('tunnels', 0)} WS tunnel(s), "
            f"{self.router.get('rebalances', 0)} rebalance(s), "
            f"{self.router.get('retries', 0)} retry(ies)"
        )
        for shard in self.shards:
            owned = ", ".join(shard.namespaces) or "(none)"
            where = f"{shard.address[0]}:{shard.address[1]}" if shard.address else "?"
            lines.append(
                f"  shard {shard.shard} @ {where}: owns {owned}; "
                f"{shard.net.get('commits', 0)} commit(s), "
                f"{shard.net.get('publishes', 0)} publish(es), "
                f"{shard.net.get('ws_active', 0)} live socket(s)"
            )
        return "\n".join(lines)


def merge_cluster_stats(
    shard_payloads: list[dict],
    table: Mapping[str, int],
    router: Mapping[str, int] | None = None,
) -> ClusterStats:
    """Fold per-worker admin stats payloads into one :class:`ClusterStats`.

    Each payload is a worker's ``/v1/admin/stats`` body: ``shard`` index,
    ``address`` pair, owned ``namespaces`` and its ``net`` counters dict.
    Numeric counters are summed into ``totals``.
    """
    shards = []
    totals: dict[str, int] = {}
    for payload in shard_payloads:
        net = dict(payload.get("net") or {})
        for key, value in net.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[key] = totals.get(key, 0) + value
        address = payload.get("address")
        shards.append(
            ShardStats(
                shard=int(payload.get("shard", len(shards))),
                address=tuple(address) if address else None,
                namespaces=tuple(payload.get("namespaces") or ()),
                net=net,
            )
        )
    shards.sort(key=lambda s: s.shard)
    return ClusterStats(
        shards=tuple(shards),
        table=dict(table),
        router=dict(router or {}),
        totals=totals,
    )


# ---------------------------------------------------------------------------
# Per-view explain.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuleExplain:
    """One compiled rule item: where it scans, how it executes and maintains."""

    state: str
    tag: str
    item: int
    join_order: tuple[str, ...]
    delta_strategy: str
    last_backend: str | None
    executions: int
    vectorized: bool


@dataclass(frozen=True)
class ExplainReport:
    """The per-rule execution and maintenance story of one view binding."""

    view: str
    language: str | None
    binding: tuple[tuple[str, DataValue], ...]
    rules: tuple[RuleExplain, ...]
    cache: dict
    maintenance: str
    #: Pool snapshot (``WorkerPool.stats()``) when the server publishes
    #: through a worker pool; the cache counters above are parent-process
    #: only, so this is where worker-side hits/misses surface.
    pool: dict | None = None
    #: The binding's :meth:`TypecheckResult.as_dict` plus the view's
    #: ``mode``/``validated``/``violations`` counters, or ``None`` when the
    #: view carries no ``output_dtd``.
    typecheck: dict | None = None

    def as_dict(self) -> dict:
        """The report as plain dicts (JSON-friendly)."""
        return asdict(self)

    def describe(self) -> str:
        """The report as an ``explain()``-style text block."""
        binding = (
            ", ".join(f"{name}={value!r}" for name, value in self.binding) or "none"
        )
        lines = [
            f"view {self.view!r} [{self.language or 'unknown'}] binding: {binding}",
            f"  {self.maintenance}",
            f"  expansion cache: {self.cache.get('hits', 0)} hits / "
            f"{self.cache.get('misses', 0)} misses "
            f"(hit rate {self.cache.get('hit_rate', 0.0):.1%})",
            f"  render cache: {self.cache.get('rendered_hits', 0)} spans reused / "
            f"{self.cache.get('rendered_misses', 0)} rendered",
        ]
        if self.typecheck is not None:
            result = self.typecheck.get("result")
            verdict = result["verdict"] if result else "not checked"
            lines.append(
                f"  typecheck [{self.typecheck['mode']}]: {verdict}; "
                f"{self.typecheck['validated']} document(s) validated, "
                f"{self.typecheck['violations']} violation(s)"
            )
        if self.pool is not None:
            worker_cache = self.pool.get("worker_cache", {})
            lines.append(
                f"  pool: {self.pool.get('workers', 0)} worker(s), "
                f"{self.pool.get('tasks_dispatched', 0)} task(s) dispatched, "
                f"{self.pool.get('span_merges', 0)} merge(s); worker caches "
                f"{worker_cache.get('hits', 0)} hits / "
                f"{worker_cache.get('misses', 0)} misses"
            )
        for rule in self.rules:
            order = " >< ".join(rule.join_order) or "(no scans)"
            backend = rule.last_backend or "none yet"
            lines.append(
                f"  ({rule.state}, {rule.tag})[{rule.item}]: {order}; "
                f"backend={backend} ({rule.executions} execution(s), "
                f"{'vectorizable' if rule.vectorized else 'row-only'}); "
                f"delta: {rule.delta_strategy}"
            )
        return "\n".join(lines)


def explain_view(
    view: "RegisteredView",
    params: Mapping[str, DataValue] | None = None,
    pool=None,
) -> ExplainReport:
    """Build the :class:`ExplainReport` for one binding of ``view``.

    ``pool`` is the server's :class:`~repro.parallel.WorkerPool` (if any);
    its merged worker-side counters ride along so the report covers every
    process that published this view, not just the parent.
    """
    plan = view.plan_for(params)
    rules = []
    semi_naive = recompute = unplanned = 0
    for state, tag, item, query_plan in plan.rule_plans():
        if query_plan is None:
            unplanned += 1
            rules.append(
                RuleExplain(
                    state=state,
                    tag=tag,
                    item=item,
                    join_order=(),
                    delta_strategy="naive evaluator (unplanned query)",
                    last_backend=None,
                    executions=0,
                    vectorized=False,
                )
            )
            continue
        stats = query_plan.stats()
        if stats["delta_strategy"].startswith("per-occurrence"):
            semi_naive += 1
        else:
            recompute += 1
        rules.append(
            RuleExplain(
                state=state,
                tag=tag,
                item=item,
                join_order=tuple(stats["join_order"]),
                delta_strategy=stats["delta_strategy"],
                last_backend=stats["last_backend"],
                executions=stats["executions"],
                vectorized=stats["vectorized"],
            )
        )
    cache = plan.cache_stats.as_dict()
    maintenance = (
        f"republish: {cache.get('invalidated', 0)} invalidated / "
        f"{cache.get('retained', 0)} retained; rules: {semi_naive} semi-naive, "
        f"{recompute} recompute-fallback, {unplanned} unplanned"
    )
    typecheck = None
    if view.output_dtd is not None:
        result = view.typecheck_result(params)
        typecheck = {
            "mode": view.typecheck_mode,
            "result": result.as_dict() if result is not None else None,
            "validated": view.validated,
            "violations": view.violations,
        }
    return ExplainReport(
        view=view.name,
        language=view.language,
        binding=view.binding_key(params),
        rules=tuple(rules),
        cache=cache,
        maintenance=maintenance,
        pool=pool.stats() if pool is not None else None,
        typecheck=typecheck,
    )
