"""The output-size blow-up families of Proposition 1(3) and 1(4).

* :func:`chain_of_diamonds_transducer` together with
  :func:`chain_of_diamonds_instance` realises Proposition 1(3): a
  ``PT(CQ, tuple, normal)`` transducer that unfolds a "chain of diamonds"
  graph ``I_n`` of size ``O(n)`` into a tree of size at least ``2^n``.

* :func:`binary_counter_transducer` together with
  :func:`binary_counter_instance` realises Proposition 1(4): a
  ``PT(CQ, relation, normal)`` transducer that simulates an ``n``-bit binary
  counter while duplicating the chain at every step, so the output tree of the
  instance ``J_n`` (of size ``O(n)``) has at least ``2^(2^n)`` nodes.
"""

from __future__ import annotations

from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.logic.cq import ConjunctiveQuery, RelationAtom
from repro.logic.terms import Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema

#: Schema of the graph instances used by Proposition 1(3): a binary edge relation.
GRAPH_SCHEMA = RelationalSchema.from_attributes({"R": ("src", "dst")})

#: Schema of the counter instances used by Proposition 1(4).
COUNTER_SCHEMA = RelationalSchema.from_attributes(
    {
        "counter": ("k", "d", "c"),
        "add": ("d1", "d2", "d3", "d", "c"),
        "next": ("k", "kp"),
    }
)


def chain_of_diamonds_transducer() -> PublishingTransducer:
    """The graph-unfolding transducer ``tau1`` from the proof of Proposition 1(3)."""
    x, y = Variable("x"), Variable("y")
    phi_start = ConjunctiveQuery((x,), (RelationAtom("R", (x, y)),))
    phi_step = ConjunctiveQuery(
        (x,),
        (RelationAtom("Reg_a", (y,)), RelationAtom("R", (y, x))),
    )
    builder = TransducerBuilder("chain-of-diamonds", root="r", start="q0")
    builder.start().emit("q", "a", phi_start)
    builder.state("q").on("a").emit("q", "a", phi_step)
    return builder.build()


def chain_of_diamonds_instance(n: int, encoded: bool = False) -> Instance:
    """The instance ``I_n``: a chain of ``n`` diamonds (``4n`` edges, ``O(n)`` size).

    Unfolding the chain from its source doubles the number of paths at every
    diamond, so the transducer's output has at least ``2^n`` leaves.  With
    ``encoded=True`` the instance carries a dictionary encoding, so the
    exponential unfolding keeps its registers and memo keys in integer
    space.
    """
    edges: list[tuple[str, str]] = []
    for index in range(n):
        a, a_next = f"a{index}", f"a{index + 1}"
        b1, b2 = f"b{index}_1", f"b{index}_2"
        edges.extend([(a, b1), (a, b2), (b1, a_next), (b2, a_next)])
    instance = Instance(GRAPH_SCHEMA, {"R": edges})
    if encoded:
        from repro.relational.columnar import ensure_encoded

        ensure_encoded(instance)
    return instance


def binary_counter_transducer() -> PublishingTransducer:
    """The relation-register counter transducer ``tau2`` of Proposition 1(4).

    Every ``a``-node carries the full counter state (a relation of ``n``
    digits) in its register; each rule application increments the counter and
    spawns *two* children with the new state, so the tree both deepens ``2^n``
    times and branches at every level.
    """
    k, d, c = Variable("k"), Variable("d"), Variable("c")
    d1, c1 = Variable("d1"), Variable("c1")
    kp, d2, c2 = Variable("kp"), Variable("d2"), Variable("c2")
    d3, c3 = Variable("d3"), Variable("c3")

    phi_init = ConjunctiveQuery((k, d, c), (RelationAtom("counter", (k, d, c)),))
    # The step query reads the parent register under the generic name ``Reg``
    # because both ``a``- and ``b``-labelled parents use the same rule body.
    phi_step = ConjunctiveQuery(
        (k, d, c),
        (
            RelationAtom("Reg", (k, d1, c1)),
            RelationAtom("Reg", (kp, d2, c2)),
            RelationAtom("next", (kp, k)),
            RelationAtom("counter", (k, d3, c3)),
            RelationAtom("add", (d1, c2, c3, d, c)),
        ),
    )
    builder = TransducerBuilder("binary-counter", root="r", start="q0")
    builder.register_arity("a", 3).register_arity("b", 3)
    builder.start().emit("q", "a", phi_init, group=0).emit("q", "b", phi_init, group=0)
    (
        builder.state("q")
        .on("a")
        .emit("q", "a", phi_step, group=0)
        .emit("q", "b", phi_step, group=0)
    )
    (
        builder.state("q")
        .on("b")
        .emit("q", "a", phi_step, group=0)
        .emit("q", "b", phi_step, group=0)
    )
    return builder.build()


def binary_counter_instance(n: int, encoded: bool = False) -> Instance:
    """The instance ``J_n``: an ``n``-bit counter, a full adder and a successor ring."""
    counter = [(0, 0, 1)] + [(k, 0, 0) for k in range(1, n)]
    add = [
        (0, 0, 0, 0, 0),
        (0, 0, 1, 1, 0),
        (0, 1, 0, 1, 0),
        (0, 1, 1, 0, 1),
        (1, 0, 0, 1, 0),
        (1, 0, 1, 0, 1),
        (1, 1, 0, 0, 1),
        (1, 1, 1, 1, 1),
    ]
    nxt = [(k, k + 1) for k in range(n - 1)] + [(n - 1, 0)]
    instance = Instance(COUNTER_SCHEMA, {"counter": counter, "add": add, "next": nxt})
    if encoded:
        from repro.relational.columnar import ensure_encoded

        ensure_encoded(instance)
    return instance


def expected_minimum_output_size_exponential(n: int) -> int:
    """Lower bound ``2^n`` claimed by Proposition 1(3) for ``I_n``."""
    return 2**n


def expected_minimum_output_size_doubly_exponential(n: int) -> int:
    """Lower bound ``2^(2^n)`` claimed by Proposition 1(4) for ``J_n``."""
    return 2 ** (2**n)
