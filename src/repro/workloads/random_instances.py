"""Random instances for the expressiveness and decision-problem benchmarks."""

from __future__ import annotations

import random
from typing import Sequence

from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema

#: A single binary edge relation (graphs).
EDGE_SCHEMA = RelationalSchema.from_attributes({"E": ("src", "dst")})


def random_graph_instance(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    relation: str = "E",
) -> Instance:
    """A random directed graph with ``num_nodes`` nodes and ``num_edges`` edges."""
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges: set[tuple[str, str]] = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 20 * num_edges + 100:
        edges.add((rng.choice(nodes), rng.choice(nodes)))
        attempts += 1
    schema = RelationalSchema.from_attributes({relation: ("src", "dst")})
    return Instance(schema, {relation: sorted(edges)})


def layered_dag_instance(
    layers: int,
    width: int,
    seed: int = 0,
    relation: str = "E",
    encoded: bool = False,
) -> Instance:
    """A layered DAG: every node has an edge to each node of the next layer.

    With ``encoded=True`` the instance carries a dictionary encoding from
    construction, so recursive queries (e.g. the transitive-closure
    benchmarks) run their whole fixpoint on the columnar kernel.
    """
    rng = random.Random(seed)
    edges: list[tuple[str, str]] = []
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                if rng.random() < 0.8:
                    edges.append((f"v{layer}_{i}", f"v{layer + 1}_{j}"))
    schema = RelationalSchema.from_attributes({relation: ("src", "dst")})
    instance = Instance(schema, {relation: edges})
    if encoded:
        from repro.relational.columnar import ensure_encoded

        ensure_encoded(instance)
    return instance


def chain_instance(length: int, relation: str = "E") -> Instance:
    """A simple path ``n0 -> n1 -> ... -> n_length``."""
    edges = [(f"n{i}", f"n{i + 1}") for i in range(length)]
    schema = RelationalSchema.from_attributes({relation: ("src", "dst")})
    return Instance(schema, {relation: edges})


def random_unary_binary_instance(
    domain_size: int,
    unary_relations: Sequence[str] = ("P",),
    binary_relations: Sequence[str] = ("E",),
    density: float = 0.3,
    seed: int = 0,
) -> Instance:
    """A random instance over a mix of unary and binary relations.

    Used by the membership / equivalence benchmarks, which need instances over
    arbitrary small schemas.
    """
    rng = random.Random(seed)
    domain = [f"d{i}" for i in range(domain_size)]
    schema_spec: dict[str, int] = {}
    data: dict[str, list[tuple]] = {}
    for name in unary_relations:
        schema_spec[name] = 1
        data[name] = [(value,) for value in domain if rng.random() < density]
    for name in binary_relations:
        schema_spec[name] = 2
        data[name] = [
            (a, b) for a in domain for b in domain if rng.random() < density * 0.5
        ]
    schema = RelationalSchema.from_arities(schema_spec)
    return Instance(schema, data)
