"""The registrar database of Example 1.1 and the XML views of Figure 1.

The running example of the paper is a registrar database with

* ``course(cno, title, dept)`` -- the course catalogue, and
* ``prereq(cno1, cno2)`` -- ``cno2`` is an *immediate* prerequisite of
  ``cno1``,

together with three XML views:

* ``tau1`` (Example 3.1, Figure 1(a)): the recursive prerequisite hierarchy of
  every CS course, a ``PT(CQ, tuple, normal)`` transducer;
* ``tau2`` (Example 3.2, Figure 1(b)): a depth-three view listing, under each
  CS course, the *set* of all course numbers in its prerequisite hierarchy,
  a ``PT(FO, relation, virtual)`` transducer using a virtual tag to compute
  the closure;
* ``tau3`` (Figure 1(c), Figure 2): a depth-two view of the courses that do
  not have the DB course as an immediate prerequisite, a
  ``PTnr(FO, tuple, normal)`` transducer.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.transducer import PublishingTransducer
from repro.engine.builder import TransducerBuilder
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.fo import And, Eq, Exists, Forall, FormulaQuery, Not, Or, Rel
from repro.logic.terms import Constant, Variable

#: Relation layout of the registrar database.
REGISTRAR_SCHEMA_ATTRIBUTES = {
    "course": ("cno", "title", "dept"),
    "prereq": ("cno1", "cno2"),
}


def _registrar_schema():
    from repro.relational.schema import RelationalSchema

    return RelationalSchema.from_attributes(REGISTRAR_SCHEMA_ATTRIBUTES)


#: The relational schema R0 of Example 1.1.
REGISTRAR_SCHEMA = _registrar_schema()


def example_registrar_instance():
    """A small hand-written registrar instance used in tests and the quickstart.

    The CS prerequisite hierarchy is::

        cs452 (Distributed Systems) -> cs340 (Operating Systems) -> cs240 -> cs101
        cs450 (Databases)           -> cs240 (Data Structures)   -> cs101 (Intro)

    plus one Math course with no prerequisites and a deliberately cyclic pair
    (cs610 <-> cs620) exercising the stop condition.
    """
    from repro.relational.instance import Instance

    courses = [
        ("cs101", "Introduction to Programming", "CS"),
        ("cs240", "Data Structures", "CS"),
        ("cs340", "Operating Systems", "CS"),
        ("cs450", "Databases", "CS"),
        ("cs452", "Distributed Systems", "CS"),
        ("cs610", "Advanced Topics A", "CS"),
        ("cs620", "Advanced Topics B", "CS"),
        ("math101", "Calculus", "Math"),
    ]
    prereqs = [
        ("cs240", "cs101"),
        ("cs340", "cs240"),
        ("cs450", "cs240"),
        ("cs452", "cs340"),
        ("cs610", "cs620"),
        ("cs620", "cs610"),
    ]
    return Instance(REGISTRAR_SCHEMA, {"course": courses, "prereq": prereqs})


def generate_registrar_instance(
    num_courses: int,
    cs_fraction: float = 0.7,
    max_prereqs: int = 2,
    depth: int | None = None,
    cycle_fraction: float = 0.0,
    seed: int = 0,
    encoded: bool = False,
):
    """Generate a synthetic registrar database.

    Parameters
    ----------
    num_courses:
        Number of courses.
    cs_fraction:
        Fraction of courses assigned to the ``CS`` department (the views only
        export CS courses).
    max_prereqs:
        Maximum number of immediate prerequisites per course.
    depth:
        When given, courses are layered into ``depth`` levels and
        prerequisites only point to the next level down, producing hierarchies
        of bounded depth; otherwise prerequisites point to any earlier course
        (an acyclic hierarchy of unbounded depth).
    cycle_fraction:
        Fraction of courses that additionally get a back edge, introducing
        cycles that exercise the stop condition.
    seed:
        Random seed (generation is deterministic given the seed).
    encoded:
        Attach a dictionary encoding at construction time
        (:func:`repro.relational.columnar.ensure_encoded`), so queries and
        publishes over the instance run on the columnar kernel from the
        first execution.
    """
    from repro.relational.instance import Instance

    rng = random.Random(seed)
    courses = []
    prereqs: set[tuple[str, str]] = set()
    names = [f"cs{i:04d}" for i in range(num_courses)]
    for index, cno in enumerate(names):
        dept = "CS" if rng.random() < cs_fraction else rng.choice(["Math", "Physics", "EE"])
        courses.append((cno, f"Course {index}", dept))
    for index, cno in enumerate(names):
        if index == 0:
            continue
        if depth is not None:
            level = index * depth // num_courses
            candidates = [
                names[j]
                for j in range(num_courses)
                if j < index and (j * depth // num_courses) == level - 1
            ]
        else:
            candidates = names[:index]
        if not candidates:
            continue
        for _ in range(rng.randint(0, max_prereqs)):
            prereqs.add((cno, rng.choice(candidates)))
    for index, cno in enumerate(names):
        if rng.random() < cycle_fraction and index + 1 < num_courses:
            prereqs.add((cno, names[index + 1]))
            prereqs.add((names[index + 1], cno))
    instance = Instance(
        REGISTRAR_SCHEMA, {"course": courses, "prereq": sorted(prereqs)}
    )
    if encoded:
        from repro.relational.columnar import ensure_encoded

        ensure_encoded(instance)
    return instance


# ---------------------------------------------------------------------------
# tau1: the recursive prerequisite hierarchy (Example 3.1, Figure 1(a)).
# ---------------------------------------------------------------------------


def tau1_prerequisite_hierarchy(department: str = "CS") -> PublishingTransducer:
    """The transducer ``tau1`` of Example 3.1 (class ``PT(CQ, tuple, normal)``)."""
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, t, d, cp = Variable("c"), Variable("t"), Variable("d"), Variable("cp")

    phi1 = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant(department)),),
    )
    phi2_cno = ConjunctiveQuery((cno,), (RelationAtom("Reg_course", (cno, title)),))
    phi2_title = ConjunctiveQuery((title,), (RelationAtom("Reg_course", (cno, title)),))
    phi3 = ConjunctiveQuery(
        (c, t),
        (
            RelationAtom("Reg_prereq", (cp,)),
            RelationAtom("prereq", (cp, c)),
            RelationAtom("course", (c, t, d)),
        ),
    )
    phi4_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    phi4_title = ConjunctiveQuery((t,), (RelationAtom("Reg_title", (t,)),))

    builder = TransducerBuilder("tau1-prereq-hierarchy", root="db", start="q0")
    builder.start().emit("q", "course", phi1)
    (
        builder.state("q")
        .on("course")
        .emit("q", "cno", phi2_cno)
        .emit("q", "title", phi2_title)
        .emit("q", "prereq", phi2_cno)
    )
    builder.state("q").on("prereq").emit("q", "course", phi3)
    builder.state("q").on("cno").emit_text(phi4_cno)
    builder.state("q").on("title").emit_text(phi4_title)
    return builder.build()


# ---------------------------------------------------------------------------
# tau2: the flattened prerequisite closure (Example 3.2, Figure 1(b)).
# ---------------------------------------------------------------------------


def tau2_prerequisite_closure(department: str = "CS") -> PublishingTransducer:
    """The transducer ``tau2`` of Example 3.2 (class ``PT(FO, relation, virtual)``).

    The virtual tag ``l`` accumulates, step by step, the set of course numbers
    in the prerequisite hierarchy of a course; only when the set reaches its
    fixpoint does the query ``phi2`` fire and emit one ``cno`` child per
    element of the set.
    """
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, cp, c2 = Variable("c"), Variable("cp"), Variable("c2")

    phi1 = ConjunctiveQuery(
        (cno, title),
        (RelationAtom("course", (cno, title, dept)),),
        (equality(dept, Constant(department)),),
    )
    phi2_cno = ConjunctiveQuery((cno,), (RelationAtom("Reg_course", (cno, title)),))
    phi2_title = ConjunctiveQuery((title,), (RelationAtom("Reg_course", (cno, title)),))

    # varphi1(c): immediate prerequisites of the course stored in Reg_prereq.
    varphi1 = FormulaQuery(
        (c,),
        Exists((cp,), And((Rel("Reg_prereq", (cp,)), Rel("prereq", (cp, c))))),
    )

    # varphi1'(c): one inflationary step from the set stored in Reg_l.
    def closure_step(register: str):
        return Or(
            (
                Rel(register, (c,)),
                Exists((cp,), And((Rel(register, (cp,)), Rel("prereq", (cp, c))))),
            )
        )

    varphi1_prime = FormulaQuery((c,), closure_step("Reg_l"))

    # varphi2(c): c is in the set and the set is already a fixpoint.
    step_for_c2 = Or(
        (
            Rel("Reg_l", (c2,)),
            Exists((cp,), And((Rel("Reg_l", (cp,)), Rel("prereq", (cp, c2))))),
        )
    )
    fixpoint_reached = Forall(
        (c2,),
        Or(
            (
                And((Rel("Reg_l", (c2,)), step_for_c2)),
                And((Not(Rel("Reg_l", (c2,))), Not(step_for_c2))),
            )
        ),
    )
    varphi2 = FormulaQuery((c,), And((closure_step("Reg_l"), fixpoint_reached)))

    phi_text_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    phi_text_title = ConjunctiveQuery((c,), (RelationAtom("Reg_title", (c,)),))

    builder = TransducerBuilder("tau2-prereq-closure", root="db", start="q0")
    builder.virtual("l")
    builder.start().emit("q", "course", phi1)
    (
        builder.state("q")
        .on("course")
        .emit("q", "cno", phi2_cno)
        .emit("q", "title", phi2_title)
        .emit("q", "prereq", phi2_cno)
    )
    builder.state("q").on("prereq").emit("q", "l", varphi1, group=0)
    (
        builder.state("q")
        .on("l")
        .emit("q", "l", varphi1_prime, group=0)
        .emit("q", "cno", varphi2)
    )
    builder.state("q").on("cno").emit_text(phi_text_cno)
    builder.state("q").on("title").emit_text(phi_text_title)
    return builder.build()


# ---------------------------------------------------------------------------
# tau3: courses without DB as an immediate prerequisite (Figure 1(c), Figure 2).
# ---------------------------------------------------------------------------


def tau3_courses_without_db_prereq(banned_title: str = "Databases") -> PublishingTransducer:
    """The depth-two view of Figures 1(c) and 2 (class ``PTnr(FO, tuple, normal)``).

    It exports all courses that do *not* have a course titled ``banned_title``
    as an immediate prerequisite, matching the ``for-xml`` query of Figure 2
    (whose SQL uses ``NOT EXISTS``, i.e. genuine FO negation).
    """
    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c2, t2, d2 = Variable("c2"), Variable("t2"), Variable("d2")
    c = Variable("c")
    t = Variable("t")

    no_banned_prereq = Not(
        Exists(
            (c2, t2, d2),
            And(
                (
                    Rel("prereq", (cno, c2)),
                    Rel("course", (c2, t2, d2)),
                    Eq(t2, Constant(banned_title)),
                )
            ),
        )
    )
    psi = FormulaQuery(
        (cno, title),
        Exists((dept,), And((Rel("course", (cno, title, dept)), no_banned_prereq))),
    )
    phi_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_course", (c, t)),))
    phi_title = ConjunctiveQuery((t,), (RelationAtom("Reg_course", (c, t)),))
    phi_text_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    phi_text_title = ConjunctiveQuery((t,), (RelationAtom("Reg_title", (t,)),))

    builder = TransducerBuilder("tau3-no-db-prereq", root="db", start="q0")
    builder.start().emit("q", "course", psi)
    (
        builder.state("q")
        .on("course")
        .emit("q", "cno", phi_cno)
        .emit("q", "title", phi_title)
    )
    builder.state("q").on("cno").emit_text(phi_text_cno)
    builder.state("q").on("title").emit_text(phi_text_title)
    return builder.build()


def registrar_view_suite() -> dict[str, tuple]:
    """The Figure 1 views as parameterized serving-layer registrations.

    Maps a view name to ``(factory, params)`` suitable for
    ``ViewServer.register_view(name, factory, params=params)``: each factory
    takes its parameter as a keyword argument and bakes the binding into the
    view's queries as a constant, which the shared planner pushes into its
    indexed scans.  Used by the serving example and benchmark.
    """
    return {
        "hierarchy": (tau1_prerequisite_hierarchy, ("department",)),
        "closure": (tau2_prerequisite_closure, ("department",)),
        "no_db_prereq": (tau3_courses_without_db_prereq, ("banned_title",)),
    }


def cs_course_numbers(instance, department: str = "CS") -> Sequence[str]:
    """Course numbers of the given department, sorted (helper for assertions)."""
    return sorted(row[0] for row in instance["course"] if row[2] == department)
