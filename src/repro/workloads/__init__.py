"""Workload generators and the paper's worked examples.

* :mod:`repro.workloads.registrar` -- the registrar database of Example 1.1
  and the three XML views of Figure 1 (Examples 3.1 and 3.2);
* :mod:`repro.workloads.blowup` -- the exponential and doubly exponential
  blow-up families of Proposition 1(3, 4);
* :mod:`repro.workloads.random_instances` -- random graphs and generic
  instances for the expressiveness and decision-problem benchmarks;
* :mod:`repro.workloads.random_transducers` -- random non-recursive CQ
  transducers for the static-analysis benchmarks.
"""

from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    example_registrar_instance,
    generate_registrar_instance,
    registrar_view_suite,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)

__all__ = [
    "REGISTRAR_SCHEMA",
    "binary_counter_instance",
    "binary_counter_transducer",
    "chain_of_diamonds_instance",
    "chain_of_diamonds_transducer",
    "example_registrar_instance",
    "generate_registrar_instance",
    "registrar_view_suite",
    "tau1_prerequisite_hierarchy",
    "tau2_prerequisite_closure",
    "tau3_courses_without_db_prereq",
]
